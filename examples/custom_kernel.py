#!/usr/bin/env python3
"""Bring your own kernel: a FIR filter on the RSP template.

The paper's flow is domain-specific: you profile *your* applications,
express the critical loops as dataflow graphs and let the exploration pick
the sharing/pipelining parameters.  This example does that for a 16-tap FIR
filter (a loop the paper does not evaluate):

1. describe one loop iteration with :class:`repro.ir.DFGBuilder`,
2. wrap it in a :class:`repro.ir.Kernel`,
3. run the RSP flow for this single-kernel domain,
4. simulate the selected design and compare against a NumPy convolution.

Run with:  python examples/custom_kernel.py
"""

from __future__ import annotations

import numpy as np

from repro.flow import run_rsp_flow
from repro.ir import DFGBuilder, Kernel
from repro.sim import ArraySimulator, DataMemory
from repro.utils import format_table

TAPS = 16
OUTPUTS = 32


def fir_body(builder: DFGBuilder, iteration: int, state: dict) -> None:
    """One output sample: y[n] = sum_k h[k] * x[n + k] (correlation form)."""
    products = []
    for tap in range(TAPS):
        sample = builder.load("x", iteration + tap)
        coefficient = builder.load("h", tap)
        products.append(builder.mul(sample, coefficient))
    builder.store("y", iteration, builder.sum_tree(products))


def make_fir_kernel() -> Kernel:
    return Kernel(
        name="FIR16",
        body=fir_body,
        iterations=OUTPUTS,
        description="16-tap FIR filter, one output sample per iteration",
        source="custom",
    )


def main() -> None:
    kernel = make_fir_kernel()
    outcome = run_rsp_flow([kernel])

    print(
        format_table(
            outcome.exploration.summary_rows(),
            headers=["design", "kind", "area", "period", "cycles", "ET(ns)", "stalls",
                     "pareto", "selected"],
            title="RSP exploration for the FIR-filter domain",
        )
    )
    print(f"\nSelected design: {outcome.selected_name}")

    # Simulate the FIR filter on the selected design and verify against NumPy.
    target = outcome.selected_architecture or outcome.base_architecture
    mapping = (
        outcome.rsp_mappings.get(kernel.name)
        or outcome.base_mappings[kernel.name]
    )
    rng = np.random.default_rng(42)
    samples = rng.integers(-50, 50, size=OUTPUTS + TAPS)
    coefficients = rng.integers(-8, 8, size=TAPS)
    memory = DataMemory({"x": samples.tolist(), "h": coefficients.tolist()})
    simulation = ArraySimulator().run(mapping.schedule, mapping.dfg, memory)
    measured = np.array(simulation.memory.as_list("y", OUTPUTS))
    expected = np.array(
        [int(np.dot(samples[n : n + TAPS], coefficients)) for n in range(OUTPUTS)]
    )
    assert np.array_equal(measured, expected), "FIR simulation does not match NumPy"
    print(
        f"OK: {kernel.name} on {target.name} computes the reference result "
        f"in {mapping.cycles} cycles ({mapping.stall_cycles} stall cycles)."
    )


if __name__ == "__main__":
    main()
