#!/usr/bin/env python3
"""Quickstart: map a kernel onto the RSP architecture template.

This example walks through the library's core objects in a few lines:

1. pick a kernel (matrix-vector multiplication from the paper's Table 5),
2. pick architectures (the base design and the paper's RSP#2 design point),
3. map the kernel with the loop-pipelining mapper,
4. estimate area and clock period with the paper-calibrated models,
5. execute the mapped schedule on the functional simulator and check the
   numerical result against NumPy.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.arch import base_architecture, rsp_architecture
from repro.core import HardwareCostModel, TimingModel
from repro.kernels import matrix_vector_multiplication
from repro.mapping import RSPMapper
from repro.sim import ArraySimulator, DataMemory
from repro.utils import format_table


def main() -> None:
    kernel = matrix_vector_multiplication(iterations=64, vector_length=8)
    architectures = [base_architecture(), rsp_architecture(2)]

    mapper = RSPMapper()
    cost_model = HardwareCostModel()
    timing_model = TimingModel()

    rows = []
    for spec in architectures:
        result = mapper.map_kernel(kernel, spec)
        period = timing_model.critical_path_ns(spec)
        rows.append(
            [
                spec.name,
                round(cost_model.array_area(spec), 0),
                round(period, 2),
                result.cycles,
                result.stall_cycles,
                round(result.cycles * period, 1),
            ]
        )
    print(
        format_table(
            rows,
            headers=["architecture", "area (slices)", "period (ns)", "cycles", "stalls", "ET (ns)"],
            title=f"{kernel.name} on the RSP template",
        )
    )

    # Execute the RSP#2 mapping and verify the numbers it produces.
    rng = np.random.default_rng(7)
    matrix = rng.integers(-20, 20, size=(8, 8))
    vector = rng.integers(-20, 20, size=8)
    memory = DataMemory({"A": matrix.flatten().tolist(), "x": vector.tolist()})
    result = mapper.map_kernel(kernel, rsp_architecture(2))
    simulation = ArraySimulator().run(result.schedule, result.dfg, memory)
    measured = np.array(simulation.memory.as_list("y", 8))
    expected = matrix @ vector
    print("\nsimulated y :", measured.tolist())
    print("reference y :", expected.tolist())
    assert np.array_equal(measured, expected), "simulation does not match NumPy"
    print("\nOK: the RSP#2 mapping computes the same result as NumPy.")


if __name__ == "__main__":
    main()
