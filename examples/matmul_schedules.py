#!/usr/bin/env python3
"""Reproduce the paper's running example: matrix multiplication schedules.

Prints the loop-pipelined schedule of an order-4 matrix multiplication on a
4x4 array in three flavours:

* the base architecture (paper Figure 2): every PE has its own multiplier
  and at the peak the whole array multiplies simultaneously;
* an RS design with one shared multiplier per row: the same schedule now
  stalls when the four multipliers cannot serve all pending products;
* the RSP design (paper Figure 6): the shared multipliers are pipelined
  into two stages (``1*``/``2*`` in the rendering) and the schedule runs
  without stalls on only four multipliers.

Run with:  python examples/matmul_schedules.py
"""

from __future__ import annotations

from repro.arch import (
    ArchitectureSpec,
    ArraySpec,
    PipeliningSpec,
    RowBusSpec,
    SharingTopology,
)
from repro.eval.figures import render_schedule_figure, render_sharing_topology
from repro.kernels import matrix_multiplication_column
from repro.mapping import LoopPipeliningScheduler, evaluate_rearrangement

#: Generous row buses: the figure assumes operands are staged at the PEs.
_BUSES = RowBusSpec(read_buses=4, write_buses=1)
_ARRAY = ArraySpec(rows=4, cols=4, row_buses=_BUSES)


def architecture(name: str, rows_shared: int, stages: int) -> ArchitectureSpec:
    return ArchitectureSpec(
        name=name,
        array=_ARRAY,
        sharing=SharingTopology(rows_shared=rows_shared, cols_shared=0),
        pipelining=PipeliningSpec(stages=stages),
    )


def main() -> None:
    kernel = matrix_multiplication_column(order=4)
    dfg = kernel.build()

    base = ArchitectureSpec(name="Base 4x4", array=_ARRAY)
    rs1 = architecture("RS (1 multiplier/row)", rows_shared=1, stages=1)
    rsp1 = architecture("RSP (1 pipelined multiplier/row)", rows_shared=1, stages=2)

    base_schedule = LoopPipeliningScheduler(base).schedule(dfg, kernel_name=kernel.name)
    print(render_schedule_figure(base_schedule))
    print()

    for target in (rs1, rsp1):
        print(render_sharing_topology(target))
        summary = evaluate_rearrangement(base_schedule, dfg, target)
        print(
            f"  rearranged schedule: {summary.cycles} cycles "
            f"({summary.stall_cycles} stall cycles, "
            f"{summary.pipeline_overhead_cycles} pipeline-overhead cycles)"
        )
        rearranged = LoopPipeliningScheduler(target).schedule(dfg, kernel_name=kernel.name)
        print()
        print(render_schedule_figure(rearranged))
        print()

    print(
        "Figure 2 vs Figure 6: the combinational schedule peaks at "
        f"{base_schedule.max_multiplications_per_cycle()} simultaneous multiplications, "
        "while the pipelined design issues at most "
        f"{LoopPipeliningScheduler(rsp1).schedule(dfg).max_multiplication_issues_per_cycle()} "
        "new multiplications per cycle — four shared multipliers suffice."
    )


if __name__ == "__main__":
    main()
