#!/usr/bin/env python3
"""Domain-specific design-space exploration (paper Figure 7).

The application domain is the paper's nine-kernel suite (five Livermore
loops plus 2D-FDCT, SAD, MVM and the FFT multiplication loop).  The flow

1. maps every kernel onto the base 8x8 architecture (the "initial
   configuration contexts"),
2. sweeps the RSP parameter space (shared multipliers per row/column,
   pipeline stages),
3. estimates area with Eq. 2 and performance with the RS/RP stall upper
   bound,
4. keeps the Pareto-optimal designs and selects a knee point, and
5. re-maps the domain on the selected design.

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.eval.figures import render_exploration_flow, render_pareto_plot
from repro.flow import run_rsp_flow
from repro.kernels import paper_suite
from repro.utils import format_table


def main() -> None:
    print(render_exploration_flow())
    print()

    outcome = run_rsp_flow(paper_suite())

    print(
        format_table(
            outcome.exploration.summary_rows(),
            headers=["design", "kind", "area", "period", "cycles", "ET(ns)", "stalls",
                     "pareto", "selected"],
            title="RSP design-space exploration over the nine-kernel domain",
        )
    )
    print()
    print(render_pareto_plot(outcome.exploration.evaluated, outcome.exploration.pareto))
    print()

    print(f"Selected design point: {outcome.selected_name}")
    if outcome.selected_architecture is not None:
        rows = []
        for name, base_result in outcome.base_mappings.items():
            rsp_result = outcome.rsp_mappings[name]
            rows.append(
                [name, base_result.cycles, rsp_result.cycles, rsp_result.stall_cycles]
            )
        print(
            format_table(
                rows,
                headers=["kernel", "base cycles", f"{outcome.selected_name} cycles", "stalls"],
                title="Per-kernel mapping on the selected design",
            )
        )


if __name__ == "__main__":
    main()
