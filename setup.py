"""Setup shim enabling legacy editable installs on environments without the
``wheel`` package (the metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
