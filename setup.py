"""Setup shim enabling legacy editable installs on environments without the
``wheel`` package.  The library itself is stdlib-only; the ``fast`` extra
pulls in numpy for the vectorized evaluation path (``pip install
repro[fast]``), which the engine auto-detects and the scalar models back
up bit-for-bit when it is absent."""

from setuptools import setup

setup(
    extras_require={"fast": ["numpy"]},
)
