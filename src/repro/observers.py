"""The one campaign observer protocol every hook in the repo speaks.

Historically three ad-hoc observer shapes grew side by side:

* the engine's :class:`~repro.engine.executor.WaveObserver` (wave
  lifecycle + the up-front base evaluation),
* the tracer's ``TracingWaveObserver``/``MultiWaveObserver``/
  ``compose_observers`` trio in :mod:`repro.trace.collect`,
* the stream controller's per-suite journal observer.

They all answered the same question — "tell me when campaign work
happens" — with slightly different spellings.  This module unifies them:
:class:`CampaignObserver` is the single no-op base with every callback,
:class:`MultiObserver` fans callbacks out, and :func:`compose_observers`
collapses a mixed bag of observers/*None*s into the engine's (and the
mapping flow's) single observer slot.

Flow-graph nodes emit into the same protocol: the runtime in
:mod:`repro.flowgraph.core` calls :meth:`CampaignObserver.node_finished`
with a :class:`~repro.flowgraph.core.NodeEvent` after every node it
materialises, so one composed observer can watch waves *and* the
per-stage dataflow that produced each candidate.

Nothing here imports the engine, the tracer or the flow runtime — the
protocol is the leaf everything else depends on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.engine.executor import WaveOutcome
    from repro.flowgraph.core import NodeEvent


class CampaignObserver:
    """No-op base class for campaign observers (override what you need).

    Wave callbacks fire from the engine's executor: :meth:`wave_started`
    immediately before a wave dispatches, :meth:`wave_finished` after its
    results (including cache hits discovered while assembling it) are in,
    and :meth:`base_evaluated` once per exploration for the up-front
    base-point job, which never travels through a wave.

    :meth:`node_finished` fires from the flow-graph runtime after every
    node materialisation — store hits and fresh computes alike — carrying
    the node's output name, artifact key, timing and routing decision.
    """

    # -- wave lifecycle ------------------------------------------------
    def wave_started(self, wave_index: int, job_count: int) -> None:  # pragma: no cover
        pass

    def wave_finished(self, outcome: "WaveOutcome") -> None:  # pragma: no cover
        pass

    def base_evaluated(
        self, key: str, evaluation: Any, source: str, feasible: Optional[bool]
    ) -> None:  # pragma: no cover
        pass

    # -- flow-node lifecycle -------------------------------------------
    def node_finished(self, event: "NodeEvent") -> None:  # pragma: no cover
        pass


class MultiObserver(CampaignObserver):
    """Fans every callback out to several observers, in order.

    Members may implement any subset of the protocol (legacy wave-only
    observers included) — each callback is forwarded only to members that
    define it.
    """

    def __init__(self, observers) -> None:
        self.observers: Tuple[Any, ...] = tuple(observers)

    def _fan_out(self, method: str, *args: Any) -> None:
        for observer in self.observers:
            hook = getattr(observer, method, None)
            if hook is not None:
                hook(*args)

    def wave_started(self, wave_index: int, job_count: int) -> None:
        self._fan_out("wave_started", wave_index, job_count)

    def wave_finished(self, outcome: "WaveOutcome") -> None:
        self._fan_out("wave_finished", outcome)

    def base_evaluated(
        self, key: str, evaluation: Any, source: str, feasible: Optional[bool]
    ) -> None:
        self._fan_out("base_evaluated", key, evaluation, source, feasible)

    def node_finished(self, event: "NodeEvent") -> None:
        self._fan_out("node_finished", event)


def compose_observers(*observers: Optional[CampaignObserver]) -> Optional[CampaignObserver]:
    """One observer driving all non-``None`` arguments (``None`` when empty).

    This is how a traced *and* streamed campaign fits the engine's single
    observer slot — and how the same composite rides along on the mapping
    pipeline's ``observer`` attribute: each member sees every callback,
    without any knowing about the others.
    """
    active = [observer for observer in observers if observer is not None]
    if not active:
        return None
    if len(active) == 1:
        return active[0]
    return MultiObserver(active)


__all__ = ["CampaignObserver", "MultiObserver", "compose_observers"]
