"""Experiment report generation (paper-vs-measured for every table/figure).

:func:`build_report` runs the whole evaluation — Tables 1–5, the headline
claims and the design-space exploration — and returns a structured
:class:`ExperimentReport`.  :func:`report_to_markdown` renders it as the
markdown document stored in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.exploration import ExplorationResult, RSPDesignSpaceExplorer
from repro.core.timing_model import TimingModel
from repro.eval.tables import (
    PerformanceTable,
    Table1Entry,
    Table3Entry,
    table1_pe_components,
    table2_architectures,
    table3_kernels,
    table4_livermore,
    table5_dsp,
)
from repro.kernels.registry import paper_suite
from repro.mapping.mapper import RSPMapper
from repro.mapping.profile import extract_profile
from repro.synthesis.calibration import PAPER_HEADLINE
from repro.synthesis.synth_model import SynthesisEstimate
from repro.utils.tabulate import format_markdown_table


@dataclass
class HeadlineClaims:
    """The abstract's headline numbers, measured on this reproduction."""

    max_area_reduction_percent: float
    max_delay_reduction_percent: float
    max_performance_improvement_percent: float
    paper: Dict[str, float] = field(default_factory=lambda: dict(PAPER_HEADLINE))


@dataclass
class ExperimentReport:
    """All reproduced experiments in one structure."""

    table1: List[Table1Entry]
    table2: List[SynthesisEstimate]
    table3: List[Table3Entry]
    table4: PerformanceTable
    table5: PerformanceTable
    headline: HeadlineClaims
    exploration: Optional[ExplorationResult] = None


def build_report(
    mapper: Optional[RSPMapper] = None,
    timing_model: Optional[TimingModel] = None,
    include_exploration: bool = True,
) -> ExperimentReport:
    """Run every experiment and collect the results."""
    mapper = mapper or RSPMapper()
    timing_model = timing_model or TimingModel()
    table1 = table1_pe_components()
    table2 = table2_architectures()
    table3 = table3_kernels(mapper=mapper)
    table4 = table4_livermore(mapper=mapper, timing_model=timing_model)
    table5 = table5_dsp(mapper=mapper, timing_model=timing_model)
    headline = compute_headline_claims(table2, table4, table5)
    exploration = None
    if include_exploration:
        profiles = {}
        for kernel in paper_suite():
            base_schedule = mapper.base_schedule(kernel)
            profiles[kernel.name] = extract_profile(base_schedule, mapper.build_dfg(kernel))
        explorer = RSPDesignSpaceExplorer(profiles, timing_model=timing_model)
        exploration = explorer.explore()
    return ExperimentReport(
        table1=table1,
        table2=table2,
        table3=table3,
        table4=table4,
        table5=table5,
        headline=headline,
        exploration=exploration,
    )


def compute_headline_claims(
    table2: List[SynthesisEstimate],
    table4: PerformanceTable,
    table5: PerformanceTable,
) -> HeadlineClaims:
    """Derive the abstract's headline numbers from the reproduced tables."""
    non_base = [estimate for estimate in table2 if estimate.architecture != "Base"]
    max_area_reduction = max(estimate.area_reduction_percent for estimate in non_base)
    max_delay_reduction = max(estimate.delay_reduction_percent for estimate in non_base)
    best_performance = 0.0
    for table in (table4, table5):
        for kernel in table.kernels:
            for architecture, record in table.records[kernel].items():
                if architecture == "Base":
                    continue
                best_performance = max(best_performance, record.delay_reduction)
    return HeadlineClaims(
        max_area_reduction_percent=max_area_reduction,
        max_delay_reduction_percent=max_delay_reduction,
        max_performance_improvement_percent=best_performance,
    )


# ----------------------------------------------------------------------
# Markdown rendering
# ----------------------------------------------------------------------
def report_to_markdown(report: ExperimentReport) -> str:
    """Render the whole report as a markdown document."""
    sections: List[str] = []
    sections.append("# EXPERIMENTS — paper vs. measured\n")
    sections.append(
        "All `measured` values come from this repository's analytical models "
        "and mapper; `paper` values are the published numbers.  Absolute values "
        "differ because the paper synthesised RTL and used an in-house mapper; "
        "the comparisons below track whether every qualitative conclusion holds.\n"
    )

    # Table 1
    sections.append("## Table 1 — PE component synthesis\n")
    sections.append(
        format_markdown_table(
            [
                [
                    row.component,
                    row.area_slices,
                    row.paper_area_slices,
                    row.delay_ns,
                    row.paper_delay_ns,
                ]
                for row in report.table1
            ],
            headers=["Component", "Area (measured)", "Area (paper)", "Delay (measured)", "Delay (paper)"],
        )
    )

    # Table 2
    sections.append("\n## Table 2 — architecture area and critical path\n")
    sections.append(
        format_markdown_table(
            [
                [
                    estimate.architecture,
                    round(estimate.array_area_slices, 0),
                    estimate.paper.array_area_slices if estimate.paper else None,
                    round(estimate.area_reduction_percent, 2),
                    estimate.paper.area_reduction_percent if estimate.paper else None,
                    round(estimate.array_delay_ns, 2),
                    estimate.paper.array_delay_ns if estimate.paper else None,
                    round(estimate.delay_reduction_percent, 2),
                    estimate.paper.delay_reduction_percent if estimate.paper else None,
                ]
                for estimate in report.table2
            ],
            headers=[
                "Arch",
                "Area",
                "Area (paper)",
                "Area R%",
                "Area R% (paper)",
                "Delay",
                "Delay (paper)",
                "Delay R%",
                "Delay R% (paper)",
            ],
        )
    )

    # Table 3
    sections.append("\n## Table 3 — kernel characterisation\n")
    sections.append(
        format_markdown_table(
            [
                [
                    row.kernel,
                    ", ".join(row.operation_set),
                    ", ".join(row.paper_operation_set),
                    row.max_multiplications,
                    row.paper_max_multiplications,
                ]
                for row in report.table3
            ],
            headers=["Kernel", "Op set (measured)", "Op set (paper)", "Mult/cycle", "Mult/cycle (paper)"],
        )
    )

    # Tables 4 and 5
    for title, table in (("Table 4 — Livermore kernels", report.table4),
                         ("Table 5 — DSP kernels", report.table5)):
        sections.append(f"\n## {title}\n")
        rows = []
        for kernel in table.kernels:
            for architecture in table.architectures:
                record = table.records[kernel][architecture]
                paper_cell = table.paper.get(kernel, {}).get(architecture)
                rows.append(
                    [
                        kernel,
                        architecture,
                        record.cycles,
                        getattr(paper_cell, "cycles", None),
                        round(record.delay_reduction, 2),
                        getattr(paper_cell, "delay_reduction_percent", None),
                        record.stalls,
                        getattr(paper_cell, "stalls", None),
                    ]
                )
        sections.append(
            format_markdown_table(
                rows,
                headers=[
                    "Kernel",
                    "Arch",
                    "Cycles",
                    "Cycles (paper)",
                    "DR%",
                    "DR% (paper)",
                    "Stalls",
                    "Stalls (paper)",
                ],
            )
        )

    # Headline
    sections.append("\n## Headline claims\n")
    headline = report.headline
    sections.append(
        format_markdown_table(
            [
                [
                    "max area reduction (%)",
                    round(headline.max_area_reduction_percent, 2),
                    headline.paper["max_area_reduction_percent"],
                ],
                [
                    "max delay reduction (%)",
                    round(headline.max_delay_reduction_percent, 2),
                    headline.paper["max_delay_reduction_percent"],
                ],
                [
                    "max performance improvement (%)",
                    round(headline.max_performance_improvement_percent, 2),
                    headline.paper["max_performance_improvement_percent"],
                ],
            ],
            headers=["Claim", "Measured", "Paper"],
        )
    )

    # Exploration
    if report.exploration is not None:
        sections.append("\n## Design-space exploration (Figure 7 flow)\n")
        selected = report.exploration.selected
        pareto_names = ", ".join(
            evaluation.architecture.name for evaluation in report.exploration.pareto
        )
        sections.append(
            f"Feasible designs: {len(report.exploration.feasible)} of "
            f"{len(report.exploration.evaluated)}; Pareto set: {pareto_names}; "
            f"selected design: {selected.architecture.name if selected else 'none'}.\n"
        )
    return "\n".join(sections)
