"""Regeneration of the paper's Tables 1–5.

Each ``tableN_*`` function returns structured rows (dataclasses) plus a
``format_tableN`` helper that renders them as aligned text in the layout of
the corresponding paper table.  The benchmark harness under ``benchmarks/``
calls these functions and prints the results next to the published values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.components import ComponentLibrary, default_component_library
from repro.arch.template import ArchitectureSpec, base_architecture, paper_architectures
from repro.core.timing_model import TimingModel
from repro.eval.metrics import PerformanceRecord, execution_time_ns, performance_record
from repro.ir.loops import Kernel
from repro.kernels.registry import (
    DSP_KERNEL_NAMES,
    LIVERMORE_KERNEL_NAMES,
    PAPER_TABLE3,
    dsp_suite,
    get_kernel,
    livermore_suite,
)
from repro.mapping.mapper import MappingResult, RSPMapper
from repro.synthesis.calibration import PAPER_TABLE1, PAPER_TABLE4, PAPER_TABLE5
from repro.synthesis.synth_model import SynthesisEstimate, SynthesisSurrogate
from repro.utils.tabulate import format_table


# ----------------------------------------------------------------------
# Table 1 — PE component synthesis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Entry:
    """One component row: modelled area/delay plus the published values."""

    component: str
    area_slices: float
    area_ratio_percent: float
    delay_ns: float
    delay_ratio_percent: float
    paper_area_slices: Optional[float]
    paper_delay_ns: Optional[float]


def table1_pe_components(library: Optional[ComponentLibrary] = None) -> List[Table1Entry]:
    """Reproduce paper Table 1 from the component library."""
    library = library or default_component_library()
    from repro.core.cost_model import HardwareCostModel
    from repro.core.timing_model import TimingModel as _TimingModel

    cost_model = HardwareCostModel(library)
    timing_model = _TimingModel(library)
    pe_area = cost_model.full_pe_area()
    pe_delay = timing_model.full_pe_path_ns()
    rows: List[Table1Entry] = [
        Table1Entry(
            component="PE",
            area_slices=pe_area,
            area_ratio_percent=100.0,
            delay_ns=pe_delay,
            delay_ratio_percent=100.0,
            paper_area_slices=PAPER_TABLE1["PE"].area_slices,
            paper_delay_ns=PAPER_TABLE1["PE"].delay_ns,
        )
    ]
    component_map = {
        "Multiplexer": library.multiplexer,
        "ALU": library.alu,
        "Array multiplier": library.multiplier,
        "Shift logic": library.shifter,
    }
    for label, component in component_map.items():
        paper_row = PAPER_TABLE1.get(label)
        rows.append(
            Table1Entry(
                component=label,
                area_slices=component.area_slices,
                area_ratio_percent=100.0 * component.area_slices / pe_area,
                delay_ns=component.delay_ns,
                delay_ratio_percent=100.0 * component.delay_ns / pe_delay,
                paper_area_slices=paper_row.area_slices if paper_row else None,
                paper_delay_ns=paper_row.delay_ns if paper_row else None,
            )
        )
    return rows


def format_table1(rows: Sequence[Table1Entry]) -> str:
    """Render Table 1 as aligned text."""
    return format_table(
        [
            [
                row.component,
                row.area_slices,
                row.area_ratio_percent,
                row.delay_ns,
                row.delay_ratio_percent,
                row.paper_area_slices,
                row.paper_delay_ns,
            ]
            for row in rows
        ],
        headers=[
            "Component",
            "Area (slices)",
            "Area %",
            "Delay (ns)",
            "Delay %",
            "Paper area",
            "Paper delay",
        ],
        title="Table 1 — Synthesis result of a PE",
    )


# ----------------------------------------------------------------------
# Table 2 — architecture synthesis
# ----------------------------------------------------------------------
def table2_architectures(
    surrogate: Optional[SynthesisSurrogate] = None,
    rows: int = 8,
    cols: int = 8,
) -> List[SynthesisEstimate]:
    """Reproduce paper Table 2 (the nine evaluated architectures)."""
    surrogate = surrogate or SynthesisSurrogate()
    return surrogate.estimate_paper_designs(rows, cols)


def format_table2(estimates: Sequence[SynthesisEstimate]) -> str:
    """Render Table 2 as aligned text with the published reference columns."""
    table_rows = []
    for estimate in estimates:
        paper_area = estimate.paper.array_area_slices if estimate.paper else None
        paper_delay = estimate.paper.array_delay_ns if estimate.paper else None
        table_rows.append(
            [
                estimate.architecture,
                estimate.pe_area_slices,
                estimate.switch_area_slices,
                estimate.array_area_slices,
                estimate.area_reduction_percent,
                estimate.array_delay_ns,
                estimate.delay_reduction_percent,
                paper_area,
                paper_delay,
            ]
        )
    return format_table(
        table_rows,
        headers=[
            "Arch",
            "PE area",
            "SW area",
            "Array area",
            "Area R(%)",
            "Delay (ns)",
            "Delay R(%)",
            "Paper area",
            "Paper delay",
        ],
        title="Table 2 — Synthesis result of various architectures",
    )


# ----------------------------------------------------------------------
# Table 3 — kernel characterisation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table3Entry:
    """One kernel row: operation set and peak multiplications per cycle."""

    kernel: str
    operation_set: Tuple[str, ...]
    iterations: int
    max_multiplications: int
    paper_operation_set: Tuple[str, ...]
    paper_max_multiplications: int


def table3_kernels(
    mapper: Optional[RSPMapper] = None,
    kernels: Optional[Sequence[Kernel]] = None,
) -> List[Table3Entry]:
    """Reproduce paper Table 3 by mapping every kernel on the base design."""
    mapper = mapper or RSPMapper()
    kernel_list = list(kernels) if kernels is not None else livermore_suite() + dsp_suite()
    rows: List[Table3Entry] = []
    for kernel in kernel_list:
        base_schedule = mapper.base_schedule(kernel)
        paper_row = PAPER_TABLE3.get(kernel.name)
        rows.append(
            Table3Entry(
                kernel=kernel.name,
                operation_set=tuple(kernel.operation_set_names()),
                iterations=kernel.iterations,
                max_multiplications=base_schedule.max_multiplications_per_cycle(),
                paper_operation_set=paper_row.operation_set if paper_row else (),
                paper_max_multiplications=paper_row.max_multiplications if paper_row else 0,
            )
        )
    return rows


def format_table3(rows: Sequence[Table3Entry]) -> str:
    """Render Table 3 as aligned text."""
    return format_table(
        [
            [
                row.kernel,
                ", ".join(row.operation_set),
                row.iterations,
                row.max_multiplications,
                ", ".join(row.paper_operation_set),
                row.paper_max_multiplications,
            ]
            for row in rows
        ],
        headers=[
            "Kernel",
            "Operation set",
            "Iterations",
            "Mult No",
            "Paper op set",
            "Paper Mult No",
        ],
        title="Table 3 — Kernels in the experiments",
    )


# ----------------------------------------------------------------------
# Tables 4 and 5 — performance evaluation
# ----------------------------------------------------------------------
@dataclass
class PerformanceTable:
    """Performance of a set of kernels across the nine paper architectures."""

    title: str
    kernels: List[str]
    architectures: List[str]
    records: Dict[str, Dict[str, PerformanceRecord]]
    paper: Dict[str, Dict[str, object]]

    def record(self, kernel: str, architecture: str) -> PerformanceRecord:
        return self.records[kernel][architecture]

    def best_delay_reduction(self, kernel: str) -> PerformanceRecord:
        """The architecture with the largest delay reduction for ``kernel``."""
        candidates = [
            record
            for record in self.records[kernel].values()
            if record.architecture != "Base"
        ]
        return max(candidates, key=lambda record: record.delay_reduction)


def performance_table(
    kernels: Sequence[Kernel],
    mapper: Optional[RSPMapper] = None,
    timing_model: Optional[TimingModel] = None,
    architectures: Optional[Sequence[ArchitectureSpec]] = None,
    paper_reference: Optional[Dict[str, Dict[str, object]]] = None,
    title: str = "Performance evaluation",
) -> PerformanceTable:
    """Map ``kernels`` on every architecture and collect performance records."""
    mapper = mapper or RSPMapper()
    timing_model = timing_model or TimingModel()
    architecture_list = (
        list(architectures) if architectures is not None else paper_architectures()
    )
    records: Dict[str, Dict[str, PerformanceRecord]] = {}
    for kernel in kernels:
        base_result = mapper.map_kernel(kernel, base_architecture())
        base_period = timing_model.critical_path_ns(base_result.architecture)
        base_execution_time = execution_time_ns(base_result.cycles, base_period)
        per_arch: Dict[str, PerformanceRecord] = {}
        for architecture in architecture_list:
            result = mapper.map_kernel(kernel, architecture)
            per_arch[architecture.name] = performance_record(
                result, timing_model, base_execution_time=base_execution_time
            )
        records[kernel.name] = per_arch
    return PerformanceTable(
        title=title,
        kernels=[kernel.name for kernel in kernels],
        architectures=[architecture.name for architecture in architecture_list],
        records=records,
        paper=paper_reference or {},
    )


def table4_livermore(
    mapper: Optional[RSPMapper] = None,
    timing_model: Optional[TimingModel] = None,
) -> PerformanceTable:
    """Reproduce paper Table 4 (Livermore loop kernels)."""
    return performance_table(
        livermore_suite(),
        mapper=mapper,
        timing_model=timing_model,
        paper_reference=PAPER_TABLE4,
        title="Table 4 — Performance evaluation of the Livermore loop kernels",
    )


def table5_dsp(
    mapper: Optional[RSPMapper] = None,
    timing_model: Optional[TimingModel] = None,
) -> PerformanceTable:
    """Reproduce paper Table 5 (2D-FDCT, SAD, MVM and FFT)."""
    return performance_table(
        dsp_suite(),
        mapper=mapper,
        timing_model=timing_model,
        paper_reference=PAPER_TABLE5,
        title="Table 5 — Performance evaluation of 2D-FDCT, SAD, MVM and FFT",
    )


def format_performance_table(table: PerformanceTable) -> str:
    """Render a performance table as aligned text (one block per kernel)."""
    blocks: List[str] = [table.title]
    for kernel in table.kernels:
        rows = []
        for architecture in table.architectures:
            record = table.records[kernel][architecture]
            paper_cell = table.paper.get(kernel, {}).get(architecture)
            paper_cycles = getattr(paper_cell, "cycles", None)
            paper_dr = getattr(paper_cell, "delay_reduction_percent", None)
            paper_stalls = getattr(paper_cell, "stalls", None)
            rows.append(
                [
                    architecture,
                    record.cycles,
                    record.execution_time,
                    record.delay_reduction,
                    record.stalls,
                    paper_cycles,
                    paper_dr,
                    paper_stalls,
                ]
            )
        blocks.append(
            format_table(
                rows,
                headers=[
                    "Arch",
                    "cycles",
                    "ET(ns)",
                    "DR(%)",
                    "stall",
                    "paper cycles",
                    "paper DR(%)",
                    "paper stall",
                ],
                title=f"-- {kernel}",
            )
        )
    return "\n\n".join(blocks)
