"""Performance metrics used by the evaluation tables.

The paper reports, per (kernel, architecture) pair:

* ``cycle``   — the schedule length of the mapped kernel,
* ``ET(ns)``  — execution time = cycles x critical-path delay,
* ``DR(%)``   — delay (execution-time) reduction vs. the base architecture,
* ``stall``   — stall cycles caused by a lack of shared resources.

:class:`PerformanceRecord` bundles those four values together with the
clock period used, and :func:`performance_record` computes them from a
mapping result and the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.timing_model import TimingModel
from repro.errors import ReproError
from repro.mapping.mapper import MappingResult


def execution_time_ns(cycles: int, critical_path_ns: float) -> float:
    """Execution time in nanoseconds (paper: ``ET = cycle x critical path delay``)."""
    if cycles < 0:
        raise ReproError("cycle count must be non-negative")
    if critical_path_ns <= 0:
        raise ReproError("critical path must be positive")
    return cycles * critical_path_ns


def delay_reduction_percent(base_execution_time_ns: float, execution_time: float) -> float:
    """Delay-reduction percentage vs. a base execution time.

    Positive values mean the design is faster than the base; negative
    values mean it is slower (the sign convention of paper Tables 4/5).
    """
    if base_execution_time_ns <= 0:
        raise ReproError("base execution time must be positive")
    return 100.0 * (base_execution_time_ns - execution_time) / base_execution_time_ns


def speedup(base_execution_time_ns: float, execution_time: float) -> float:
    """Classical speedup factor of a design over the base."""
    if execution_time <= 0:
        raise ReproError("execution time must be positive")
    return base_execution_time_ns / execution_time


@dataclass(frozen=True)
class PerformanceRecord:
    """Measured performance of one kernel on one architecture."""

    kernel: str
    architecture: str
    cycles: int
    critical_path_ns: float
    execution_time: float
    delay_reduction: float
    stalls: Optional[int]

    @property
    def is_stalled(self) -> bool:
        return bool(self.stalls)


def performance_record(
    result: MappingResult,
    timing_model: TimingModel,
    base_execution_time: Optional[float] = None,
) -> PerformanceRecord:
    """Build a :class:`PerformanceRecord` from a mapping result.

    ``base_execution_time`` is the base architecture's execution time for
    the same kernel; when omitted it is derived from the base cycles stored
    in the mapping result and the base architecture's critical path.
    """
    from repro.arch.template import base_architecture

    period = timing_model.critical_path_ns(result.architecture)
    execution_time = execution_time_ns(result.cycles, period)
    if base_execution_time is None:
        base_spec = base_architecture(
            result.architecture.array.rows, result.architecture.array.cols
        )
        base_period = timing_model.critical_path_ns(base_spec)
        base_execution_time = execution_time_ns(result.base_cycles, base_period)
    stalls: Optional[int] = result.stall_cycles
    if result.architecture.is_base:
        stalls = None
    return PerformanceRecord(
        kernel=result.kernel,
        architecture=result.architecture.name,
        cycles=result.cycles,
        critical_path_ns=period,
        execution_time=execution_time,
        delay_reduction=delay_reduction_percent(base_execution_time, execution_time),
        stalls=stalls,
    )
