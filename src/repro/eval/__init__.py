"""Evaluation harness: metrics, paper tables, figures and the full report."""

from repro.eval.metrics import (
    PerformanceRecord,
    delay_reduction_percent,
    execution_time_ns,
    performance_record,
    speedup,
)
from repro.eval.tables import (
    PerformanceTable,
    Table1Entry,
    Table3Entry,
    format_performance_table,
    format_table1,
    format_table2,
    format_table3,
    performance_table,
    table1_pe_components,
    table2_architectures,
    table3_kernels,
    table4_livermore,
    table5_dsp,
)
from repro.eval.figures import (
    render_exploration_flow,
    render_pareto_plot,
    render_schedule_figure,
    render_sharing_topology,
)
from repro.eval.report import (
    ExperimentReport,
    HeadlineClaims,
    build_report,
    compute_headline_claims,
    report_to_markdown,
)

__all__ = [
    "PerformanceRecord",
    "delay_reduction_percent",
    "execution_time_ns",
    "performance_record",
    "speedup",
    "PerformanceTable",
    "Table1Entry",
    "Table3Entry",
    "format_performance_table",
    "format_table1",
    "format_table2",
    "format_table3",
    "performance_table",
    "table1_pe_components",
    "table2_architectures",
    "table3_kernels",
    "table4_livermore",
    "table5_dsp",
    "render_exploration_flow",
    "render_pareto_plot",
    "render_schedule_figure",
    "render_sharing_topology",
    "ExperimentReport",
    "HeadlineClaims",
    "build_report",
    "compute_headline_claims",
    "report_to_markdown",
]
