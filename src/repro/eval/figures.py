"""ASCII renderings of the paper's figures.

* :func:`render_schedule_figure` — the loop-pipelined schedule grid of
  Figures 2 and 6 (array columns as rows, cycles as columns; pipelined
  multiplications appear as ``1*``/``2*`` across consecutive cycles).
* :func:`render_sharing_topology` — the sharing topologies of Figure 8
  (which rows/columns of the array have how many shared multipliers).
* :func:`render_exploration_flow` — the design-flow of Figure 7 as a text
  diagram.
* :func:`render_pareto_plot` — a coarse text scatter of the exploration's
  area/execution-time trade-off (the Pareto filtering of Section 4).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.template import ArchitectureSpec
from repro.core.exploration import DesignPointEvaluation
from repro.ir.dfg import OpType
from repro.mapping.schedule import Schedule


def _stage_label(optype: OpType, stage: int, stages: int) -> str:
    """Cell label for an operation stage (``1*``/``2*`` for pipelined mults)."""
    base_label = {
        OpType.LOAD: "Ld",
        OpType.STORE: "St",
        OpType.MUL: "*",
        OpType.ADD: "+",
        OpType.SUB: "-",
        OpType.ABS: "abs",
        OpType.SHIFT: "<<",
    }.get(optype, optype.value)
    if optype is OpType.MUL and stages > 1:
        return f"{stage + 1}*"
    return base_label


def render_schedule_figure(
    schedule: Schedule,
    max_cycles: Optional[int] = None,
    cell_width: int = 9,
) -> str:
    """Render ``schedule`` in the layout of paper Figures 2 and 6.

    Rows are the array columns (``col#1`` at the bottom like the paper),
    columns are cycles, and every cell lists the operations active on the
    PEs of that array column in that cycle.
    """
    cycles = schedule.length if max_cycles is None else min(schedule.length, max_cycles)
    cols = schedule.architecture.array.cols
    cells: Dict[Tuple[int, int], List[str]] = defaultdict(list)
    for entry in schedule.operations():
        for stage in range(entry.latency):
            cycle = entry.cycle + stage
            if cycle >= cycles:
                continue
            label = _stage_label(entry.operation.optype, stage, entry.latency)
            cells[(entry.col, cycle)].append(label)

    header = ["col \\ cycle"] + [str(cycle + 1) for cycle in range(cycles)]
    lines = ["  ".join(cell.ljust(cell_width) for cell in header).rstrip()]
    for col in reversed(range(cols)):
        row_cells = [f"col#{col + 1}"]
        for cycle in range(cycles):
            content = ",".join(cells.get((col, cycle), [])) or "."
            if len(content) > cell_width:
                content = content[: cell_width - 1] + "+"
            row_cells.append(content)
        lines.append("  ".join(cell.ljust(cell_width) for cell in row_cells).rstrip())
    title = (
        f"Loop-pipelined schedule of {schedule.kernel_name!r} on "
        f"{schedule.architecture.name} ({schedule.length} cycles)"
    )
    return title + "\n" + "\n".join(lines)


def render_sharing_topology(spec: ArchitectureSpec) -> str:
    """Render the sharing topology of ``spec`` in the style of paper Figure 8."""
    rows, cols = spec.array.rows, spec.array.cols
    lines = [f"{spec.name}: {rows}x{cols} PE array"]
    if not spec.uses_sharing:
        lines.append("  every PE keeps its own array multiplier (no sharing)")
        return "\n".join(lines)
    row_units = spec.sharing.rows_shared
    col_units = spec.sharing.cols_shared
    stage_text = (
        f"{spec.pipelining.stages}-stage pipelined" if spec.uses_pipelining else "combinational"
    )
    lines.append(
        f"  shared multipliers: {row_units} per row, {col_units} per column "
        f"({spec.total_shared_units} total, {stage_text})"
    )
    col_band = ""
    if col_units:
        col_band = "  " + " ".join("MUL" * 1 for _ in range(cols))
        lines.append(f"  column-shared multipliers x{col_units}: " + "[MUL] " * cols)
    for row in range(rows):
        pe_row = "PE " * cols
        row_mults = "  " + "[MUL] " * row_units if row_units else ""
        lines.append(f"  row {row}: {pe_row.strip()}{row_mults}")
    return "\n".join(lines)


def render_exploration_flow() -> str:
    """The RSP design-space exploration flow of paper Figure 7 as text."""
    steps = [
        "Applications in the target domain",
        "Profiling  ->  selected critical loops",
        "Base architecture exploration  ->  base architecture",
        "Pipeline mapping  ->  initial configuration contexts",
        "RSP exploration (cost Eq. 2 + stall upper bound, Pareto filter)  ->  RSP parameters",
        "RSP mapping (context rearrangement)  ->  RSP configuration contexts",
        "RTL modeling and synthesis",
    ]
    lines = ["RSP design space exploration flow (paper Figure 7)"]
    for index, step in enumerate(steps):
        prefix = "  " + ("|-> " if index else "")
        lines.append(prefix + step)
    return "\n".join(lines)


def render_pareto_plot(
    evaluations: Sequence[DesignPointEvaluation],
    pareto: Sequence[DesignPointEvaluation],
    width: int = 60,
    height: int = 18,
) -> str:
    """Coarse text scatter plot of area vs. execution time.

    Pareto-optimal points are drawn as ``P``, dominated points as ``o``.
    """
    if not evaluations:
        return "(no design points)"
    areas = [evaluation.area_slices for evaluation in evaluations]
    times = [evaluation.total_execution_time_ns for evaluation in evaluations]
    min_area, max_area = min(areas), max(areas)
    min_time, max_time = min(times), max(times)
    area_span = max(max_area - min_area, 1e-9)
    time_span = max(max_time - min_time, 1e-9)
    grid = [[" " for _ in range(width)] for _ in range(height)]
    pareto_names = {evaluation.architecture.name for evaluation in pareto}
    for evaluation in evaluations:
        x = int((evaluation.total_execution_time_ns - min_time) / time_span * (width - 1))
        y = int((evaluation.area_slices - min_area) / area_span * (height - 1))
        marker = "P" if evaluation.architecture.name in pareto_names else "o"
        grid[height - 1 - y][x] = marker
    lines = ["area (slices) ^   [P = Pareto-optimal, o = dominated]"]
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width + "> execution time (ns)")
    lines.append(
        f"  area range [{min_area:.0f}, {max_area:.0f}] slices, "
        f"execution time range [{min_time:.0f}, {max_time:.0f}] ns"
    )
    return "\n".join(lines)
