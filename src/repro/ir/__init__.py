"""Kernel intermediate representation: dataflow graphs and loop kernels."""

from repro.ir.dfg import DFG, Operation, OpType, COMPUTE_OPTYPES
from repro.ir.builder import DFGBuilder
from repro.ir.loops import Kernel, KernelCharacterisation, BodyGenerator, FinalizeGenerator
from repro.ir.validate import collect_dfg_problems, is_valid_dfg, validate_dfg

__all__ = [
    "DFG",
    "Operation",
    "OpType",
    "COMPUTE_OPTYPES",
    "DFGBuilder",
    "Kernel",
    "KernelCharacterisation",
    "BodyGenerator",
    "FinalizeGenerator",
    "collect_dfg_problems",
    "is_valid_dfg",
    "validate_dfg",
]
