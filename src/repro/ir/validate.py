"""Dataflow-graph validation.

The mapper and the functional simulator both assume well-formed graphs:
acyclic, correct operand counts per operation type, memory operations with
array names, constants with immediates.  :func:`validate_dfg` checks these
invariants and raises :class:`~repro.errors.DFGValidationError` with a list
of all problems found.
"""

from __future__ import annotations

from typing import List

from repro.errors import DFGValidationError
from repro.ir.dfg import DFG, OpType

#: Expected number of value operands per operation type.  ``None`` means
#: "any number" (stores take exactly one value; loads and constants none).
_EXPECTED_OPERANDS = {
    OpType.LOAD: 0,
    OpType.CONST: 0,
    OpType.STORE: 1,
    OpType.ABS: 1,
    OpType.SHIFT: 1,
    OpType.MOV: 1,
    OpType.NOP: 0,
    OpType.MUL: 2,
    OpType.ADD: 2,
    OpType.SUB: 2,
    OpType.AND: 2,
    OpType.OR: 2,
    OpType.XOR: 2,
    OpType.MIN: 2,
    OpType.MAX: 2,
}


def collect_dfg_problems(dfg: DFG) -> List[str]:
    """Return a list of human-readable problems found in ``dfg``.

    An empty list means the graph is valid.
    """
    problems: List[str] = []

    if not dfg.is_acyclic():
        problems.append("dependence graph contains a cycle")

    for op in dfg.operations():
        expected = _EXPECTED_OPERANDS.get(op.optype)
        # Edges leaving a store are memory-ordering edges (read-after-write),
        # not value operands, so they do not count towards the operand total.
        actual = sum(
            1
            for pred in dfg.predecessors(op.name)
            if dfg.operation(pred).optype is not OpType.STORE
        )
        if expected is not None and actual != expected:
            problems.append(
                f"operation {op.name!r} ({op.optype.value}) expects {expected} "
                f"operand(s) but has {actual}"
            )
        if op.optype.is_memory and not op.array:
            problems.append(
                f"memory operation {op.name!r} does not name the accessed array"
            )
        if op.optype is OpType.CONST and op.immediate is None:
            problems.append(f"constant operation {op.name!r} has no immediate value")
        if op.optype is OpType.SHIFT and op.immediate is None:
            problems.append(f"shift operation {op.name!r} has no shift amount")
        if op.optype is OpType.STORE:
            non_load_consumers = [
                succ
                for succ in dfg.successors(op.name)
                if dfg.operation(succ).optype is not OpType.LOAD
            ]
            if non_load_consumers:
                problems.append(
                    f"store operation {op.name!r} must not feed value consumers "
                    f"(stores produce no value; only memory-ordering edges to "
                    f"loads are allowed)"
                )

    return problems


def validate_dfg(dfg: DFG) -> None:
    """Raise :class:`DFGValidationError` if ``dfg`` violates any invariant."""
    problems = collect_dfg_problems(dfg)
    if problems:
        summary = "; ".join(problems)
        raise DFGValidationError(f"invalid DFG {dfg.name!r}: {summary}")


def is_valid_dfg(dfg: DFG) -> bool:
    """True when ``dfg`` passes validation."""
    return not collect_dfg_problems(dfg)
