"""Kernel-loop abstraction.

A :class:`Kernel` couples a loop-body generator with iteration metadata.
The RSP flow maps the *unrolled* loop (all iterations) onto the array in
loop-pipelining style, so the kernel can materialise either a single
iteration body (for inspection) or the full unrolled dataflow graph (for
mapping and simulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import KernelError
from repro.ir.builder import DFGBuilder
from repro.ir.dfg import DFG, OpType

#: Signature of a loop-body generator.  It receives the builder, the
#: iteration index, and a shared state dictionary used to carry
#: loop-carried values (e.g. the running sum of an inner product) between
#: iterations, and returns nothing.
BodyGenerator = Callable[[DFGBuilder, int, Dict[str, str]], None]

#: Signature of an optional finalisation step emitted after the last
#: iteration (e.g. the final reduction of partial sums and the store of the
#: scalar result of an inner product).
FinalizeGenerator = Callable[[DFGBuilder, Dict[str, str]], None]


@dataclass
class Kernel:
    """A kernel loop to be mapped onto the reconfigurable array.

    Attributes
    ----------
    name:
        Kernel name as used in the paper's tables (e.g. ``"Hydro"``).
    body:
        Callable generating the operations of one loop iteration.
    iterations:
        Default iteration count (the number in parentheses in paper
        Tables 4/5, e.g. Hydro(32)).
    finalize:
        Optional callable generating the epilogue emitted once after the
        last iteration (reduction of partial sums, final stores).
    description:
        One-line description of the computation.
    source:
        Origin of the kernel (``"livermore"``, ``"dsp"``, ``"example"``).
    """

    name: str
    body: BodyGenerator
    iterations: int
    finalize: Optional[FinalizeGenerator] = None
    description: str = ""
    source: str = "custom"

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise KernelError(f"kernel {self.name!r} must have a positive iteration count")
        if not callable(self.body):
            raise KernelError(f"kernel {self.name!r} body must be callable")

    # ------------------------------------------------------------------
    # DFG materialisation
    # ------------------------------------------------------------------
    def build_body(self) -> DFG:
        """Materialise a single loop iteration (iteration index 0)."""
        builder = DFGBuilder(f"{self.name}_body")
        state: Dict[str, str] = {}
        builder.set_iteration(0)
        self.body(builder, 0, state)
        return builder.build()

    def build(self, iterations: Optional[int] = None) -> DFG:
        """Materialise the fully unrolled loop.

        Parameters
        ----------
        iterations:
            Number of iterations to unroll; defaults to :attr:`iterations`.
        """
        count = self.iterations if iterations is None else iterations
        if count <= 0:
            raise KernelError(f"iteration count must be positive, got {count}")
        builder = DFGBuilder(f"{self.name}_x{count}")
        state: Dict[str, str] = {}
        for index in range(count):
            builder.set_iteration(index)
            self.body(builder, index, state)
        if self.finalize is not None:
            builder.set_iteration(count - 1)
            self.finalize(builder, state)
        return builder.build()

    # ------------------------------------------------------------------
    # Characterisation (paper Table 3)
    # ------------------------------------------------------------------
    def operation_set(self) -> List[OpType]:
        """Computational operation types used by the kernel.

        A few iterations (plus the epilogue) are materialised rather than a
        single one because accumulation kernels only emit their additions
        from the second iteration onwards.
        """
        sample_iterations = min(self.iterations, 4)
        return self.build(sample_iterations).operation_set()

    def operation_set_names(self) -> List[str]:
        """Operation-set mnemonics as printed in paper Table 3."""
        return [optype.value for optype in self.operation_set()]

    def body_op_counts(self) -> Dict[OpType, int]:
        """Histogram of operation types in a single iteration."""
        return self.build_body().op_counts()

    def total_operations(self, iterations: Optional[int] = None) -> int:
        """Number of operations in the unrolled loop."""
        return len(self.build(iterations))

    def __repr__(self) -> str:
        return f"Kernel(name={self.name!r}, iterations={self.iterations})"


@dataclass
class KernelCharacterisation:
    """Static characterisation of a kernel, mirroring paper Table 3 rows."""

    name: str
    operation_set: List[str]
    iterations: int
    body_operations: int
    body_multiplications: int
    body_memory_operations: int
    max_multiplications_per_cycle: Optional[int] = None

    @classmethod
    def from_kernel(
        cls, kernel: Kernel, max_multiplications_per_cycle: Optional[int] = None
    ) -> "KernelCharacterisation":
        body = kernel.build_body()
        return cls(
            name=kernel.name,
            operation_set=kernel.operation_set_names(),
            iterations=kernel.iterations,
            body_operations=len(body),
            body_multiplications=body.multiplication_count(),
            body_memory_operations=body.memory_operation_count(),
            max_multiplications_per_cycle=max_multiplications_per_cycle,
        )
