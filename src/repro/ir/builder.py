"""Convenience builder for constructing kernel dataflow graphs.

Kernels in :mod:`repro.kernels` describe one loop iteration at a time; the
builder keeps track of the current iteration index, generates unique
operation names and wires dependence edges, so a kernel body reads almost
like the original C loop body, e.g. for the Livermore *Tri-diagonal
elimination* kernel ``x[i] = z[i] * (y[i] - x[i-1])``::

    y = builder.load("y", i)
    z = builder.load("z", i)
    diff = builder.sub(y, previous_x)
    x = builder.mul(z, diff)
    builder.store("x", i, x)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import DFGError
from repro.ir.dfg import DFG, Operation, OpType


class DFGBuilder:
    """Incrementally construct a :class:`~repro.ir.dfg.DFG`.

    Parameters
    ----------
    name:
        Name given to the underlying graph.
    """

    def __init__(self, name: str = "kernel") -> None:
        self._dfg = DFG(name)
        self._iteration = 0
        # Last store seen per (array, index), used to add read-after-write
        # memory-ordering edges so later loads of the same location cannot be
        # scheduled before the value was written (e.g. the column pass of a
        # separable transform reading the row pass's intermediate array).
        self._last_store: Dict[tuple, str] = {}

    # ------------------------------------------------------------------
    # Iteration management
    # ------------------------------------------------------------------
    @property
    def iteration(self) -> int:
        """The iteration index attached to newly created operations."""
        return self._iteration

    def set_iteration(self, iteration: int) -> None:
        """Set the iteration index for subsequently created operations."""
        if iteration < 0:
            raise DFGError(f"iteration must be non-negative, got {iteration}")
        self._iteration = iteration

    def next_iteration(self) -> int:
        """Advance to the next iteration and return the new index."""
        self._iteration += 1
        return self._iteration

    # ------------------------------------------------------------------
    # Operation creation
    # ------------------------------------------------------------------
    def _new_op(
        self,
        optype: OpType,
        operands: Sequence[str],
        *,
        array: Optional[str] = None,
        index: Optional[int] = None,
        immediate: Optional[int] = None,
        comment: str = "",
        name: Optional[str] = None,
    ) -> str:
        op_name = name or self._dfg.fresh_name(f"{optype.value}_i{self._iteration}")
        operation = Operation(
            name=op_name,
            optype=optype,
            iteration=self._iteration,
            array=array,
            index=index,
            immediate=immediate,
            comment=comment,
        )
        self._dfg.add_operation(operation)
        seen: List[str] = []
        for port, operand in enumerate(operands):
            # The dependence graph stores one edge per (producer, consumer)
            # pair, so an operation consuming the same value on both ports
            # (e.g. squaring) routes the second use through a register move.
            if operand in seen:
                operand = self.mov(operand, comment="duplicate operand copy")
            seen.append(operand)
            self._dfg.add_dependence(operand, op_name, port=port)
        return op_name

    def load(self, array: str, index: Optional[int] = None, *, comment: str = "") -> str:
        """Create a load from ``array[index]`` and return its name.

        When an earlier :meth:`store` wrote the same location, a
        memory-ordering dependence is added from that store to this load.
        """
        name = self._new_op(OpType.LOAD, (), array=array, index=index, comment=comment)
        producer = self._last_store.get((array, index))
        if producer is not None:
            self._dfg.add_dependence(producer, name, port=None)
        return name

    def store(self, array: str, index: Optional[int], value: str, *, comment: str = "") -> str:
        """Create a store of ``value`` into ``array[index]``."""
        name = self._new_op(OpType.STORE, (value,), array=array, index=index, comment=comment)
        self._last_store[(array, index)] = name
        return name

    def const(self, value: int, *, comment: str = "") -> str:
        """Create a constant operand (held in the configuration cache)."""
        return self._new_op(OpType.CONST, (), immediate=value, comment=comment)

    def mul(self, lhs: str, rhs: str, *, comment: str = "") -> str:
        """Create a multiplication; executed on the critical array multiplier."""
        return self._new_op(OpType.MUL, (lhs, rhs), comment=comment)

    def add(self, lhs: str, rhs: str, *, comment: str = "") -> str:
        """Create an addition; executed on the primitive ALU."""
        return self._new_op(OpType.ADD, (lhs, rhs), comment=comment)

    def sub(self, lhs: str, rhs: str, *, comment: str = "") -> str:
        """Create a subtraction; executed on the primitive ALU."""
        return self._new_op(OpType.SUB, (lhs, rhs), comment=comment)

    def abs(self, value: str, *, comment: str = "") -> str:
        """Create an absolute-value operation (used by the SAD kernel)."""
        return self._new_op(OpType.ABS, (value,), comment=comment)

    def shift(self, value: str, amount: int, *, comment: str = "") -> str:
        """Create an arithmetic shift by a constant ``amount`` (positive = left)."""
        return self._new_op(OpType.SHIFT, (value,), immediate=amount, comment=comment)

    def mov(self, value: str, *, comment: str = "") -> str:
        """Create a register-move operation."""
        return self._new_op(OpType.MOV, (value,), comment=comment)

    def minimum(self, lhs: str, rhs: str, *, comment: str = "") -> str:
        """Create a two-operand minimum."""
        return self._new_op(OpType.MIN, (lhs, rhs), comment=comment)

    def maximum(self, lhs: str, rhs: str, *, comment: str = "") -> str:
        """Create a two-operand maximum."""
        return self._new_op(OpType.MAX, (lhs, rhs), comment=comment)

    def binary(self, optype: OpType, lhs: str, rhs: str, *, comment: str = "") -> str:
        """Create an arbitrary two-operand operation of type ``optype``."""
        return self._new_op(optype, (lhs, rhs), comment=comment)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum_tree(self, values: Sequence[str], *, comment: str = "") -> str:
        """Reduce ``values`` with a balanced tree of additions.

        Used by kernels that accumulate many products (matrix-vector
        multiplication, inner product, 2D-FDCT rows).  A balanced tree keeps
        the dependence depth logarithmic, which is what a loop-pipelining
        mapper exploits for parallel accumulation.
        """
        if not values:
            raise DFGError("sum_tree requires at least one value")
        level: List[str] = list(values)
        while len(level) > 1:
            next_level: List[str] = []
            for start in range(0, len(level) - 1, 2):
                next_level.append(self.add(level[start], level[start + 1], comment=comment))
            if len(level) % 2 == 1:
                next_level.append(level[-1])
            level = next_level
        return level[0]

    def accumulate_chain(self, values: Sequence[str], *, comment: str = "") -> str:
        """Reduce ``values`` with a serial chain of additions.

        Models accumulation into a single register (the natural form of the
        Livermore inner-product loop before any re-association).
        """
        if not values:
            raise DFGError("accumulate_chain requires at least one value")
        accumulator = values[0]
        for value in values[1:]:
            accumulator = self.add(accumulator, value, comment=comment)
        return accumulator

    # ------------------------------------------------------------------
    # Result
    # ------------------------------------------------------------------
    @property
    def dfg(self) -> DFG:
        """The graph built so far."""
        return self._dfg

    def build(self) -> DFG:
        """Return the completed graph."""
        return self._dfg
