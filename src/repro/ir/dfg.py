"""Dataflow-graph intermediate representation for kernel loops.

The RSP flow (paper Section 4) operates on the *configuration contexts* of
kernel loops, i.e. on the operations of the loop body and their data
dependences.  This module provides the dataflow graph (DFG) representation
used throughout the reproduction:

* :class:`OpType` — the operation alphabet used by the paper's kernels
  (load, store, multiply, add, subtract, absolute value, shift) plus a few
  generic ALU operations so user kernels are not artificially restricted.
* :class:`Operation` — a single operation instance, annotated with the loop
  iteration it belongs to (the RS rearrangement rule orders operations by
  iteration).
* :class:`DFG` — the dependence graph, a thin convenience wrapper around a
  :class:`networkx.DiGraph`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import DFGError, DFGValidationError, UnknownOperationError


class OpType(enum.Enum):
    """Operation types supported by the kernel IR.

    The values correspond to the mnemonics used in the paper's Table 3
    (``mult``, ``add``, ``sub``, ``abs``, ``shift``) plus memory operations
    and a small set of additional ALU operations for user-defined kernels.
    """

    LOAD = "load"
    STORE = "store"
    MUL = "mult"
    ADD = "add"
    SUB = "sub"
    ABS = "abs"
    SHIFT = "shift"
    AND = "and"
    OR = "or"
    XOR = "xor"
    MIN = "min"
    MAX = "max"
    MOV = "mov"
    CONST = "const"
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        """True for operations that occupy a data-bus slot."""
        return self in (OpType.LOAD, OpType.STORE)

    @property
    def is_multiplication(self) -> bool:
        """True for operations executed on the (critical) array multiplier."""
        return self is OpType.MUL

    @property
    def is_alu(self) -> bool:
        """True for operations executed on the primitive ALU."""
        return self in (
            OpType.ADD,
            OpType.SUB,
            OpType.ABS,
            OpType.AND,
            OpType.OR,
            OpType.XOR,
            OpType.MIN,
            OpType.MAX,
            OpType.MOV,
        )

    @property
    def is_shift(self) -> bool:
        """True for operations executed on the shift logic."""
        return self is OpType.SHIFT

    @property
    def produces_value(self) -> bool:
        """True if the operation defines a value consumed by successors."""
        return self not in (OpType.STORE, OpType.NOP)


#: Operation types that require a functional unit inside (or shared by) a PE.
COMPUTE_OPTYPES: Tuple[OpType, ...] = (
    OpType.MUL,
    OpType.ADD,
    OpType.SUB,
    OpType.ABS,
    OpType.SHIFT,
    OpType.AND,
    OpType.OR,
    OpType.XOR,
    OpType.MIN,
    OpType.MAX,
    OpType.MOV,
)


@dataclass
class Operation:
    """A single operation instance in a kernel dataflow graph.

    Attributes
    ----------
    name:
        Unique identifier within the DFG.
    optype:
        The :class:`OpType` of the operation.
    iteration:
        Index of the loop iteration the operation belongs to.  The RS
        rearrangement rule ("shared resources are assigned to PEs in the
        order of loop iteration") sorts by this field.
    array:
        For memory operations, the symbolic name of the accessed array.
    index:
        For memory operations, the (symbolic or numeric) element index.
    immediate:
        Optional constant operand (e.g. shift amount, constant factor ``C``
        of the paper's matrix-multiplication example).
    comment:
        Free-form annotation used by the figure renderers.
    """

    name: str
    optype: OpType
    iteration: int = 0
    array: Optional[str] = None
    index: Optional[int] = None
    immediate: Optional[int] = None
    comment: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise DFGError("operation name must be a non-empty string")
        if not isinstance(self.optype, OpType):
            raise DFGError(f"optype must be an OpType, got {self.optype!r}")
        if self.iteration < 0:
            raise DFGError(f"iteration must be non-negative, got {self.iteration}")

    @property
    def is_memory(self) -> bool:
        return self.optype.is_memory

    @property
    def is_multiplication(self) -> bool:
        return self.optype.is_multiplication

    def label(self) -> str:
        """Short human-readable label used in schedule figures."""
        if self.optype is OpType.LOAD:
            return "Ld"
        if self.optype is OpType.STORE:
            return "St"
        if self.optype is OpType.MUL:
            return "*"
        if self.optype is OpType.ADD:
            return "+"
        if self.optype is OpType.SUB:
            return "-"
        if self.optype is OpType.SHIFT:
            return "<<"
        if self.optype is OpType.ABS:
            return "abs"
        return self.optype.value


class DFG:
    """A kernel dataflow graph.

    Nodes are operation names, node attribute ``op`` holds the
    :class:`Operation`.  Edges are data dependences from producer to
    consumer; the optional edge attribute ``port`` records which operand
    port of the consumer the value feeds (0 or 1 for binary operations).
    """

    def __init__(self, name: str = "dfg") -> None:
        self.name = name
        self._graph = nx.DiGraph()
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def fresh_name(self, prefix: str) -> str:
        """Return a new operation name unique within this DFG."""
        while True:
            candidate = f"{prefix}_{next(self._counter)}"
            if candidate not in self._graph:
                return candidate

    def add_operation(self, operation: Operation) -> Operation:
        """Add ``operation`` to the graph.  Names must be unique."""
        if operation.name in self._graph:
            raise DFGError(f"duplicate operation name: {operation.name!r}")
        self._graph.add_node(operation.name, op=operation)
        return operation

    def add_dependence(self, producer: str, consumer: str, port: Optional[int] = None) -> None:
        """Add a data dependence edge from ``producer`` to ``consumer``."""
        for name in (producer, consumer):
            if name not in self._graph:
                raise UnknownOperationError(f"unknown operation: {name!r}")
        if producer == consumer:
            raise DFGError(f"self dependence on {producer!r} is not allowed")
        self._graph.add_edge(producer, consumer, port=port)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def __iter__(self) -> Iterator[str]:
        return iter(self._graph.nodes)

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying :class:`networkx.DiGraph` (read-only use expected)."""
        return self._graph

    def operation(self, name: str) -> Operation:
        """Return the :class:`Operation` registered under ``name``."""
        try:
            return self._graph.nodes[name]["op"]
        except KeyError as exc:
            raise UnknownOperationError(f"unknown operation: {name!r}") from exc

    def operations(self) -> List[Operation]:
        """All operations, in insertion order."""
        return [self._graph.nodes[name]["op"] for name in self._graph.nodes]

    def operations_of_type(self, optype: OpType) -> List[Operation]:
        """All operations with the given type."""
        return [op for op in self.operations() if op.optype is optype]

    def predecessors(self, name: str) -> List[str]:
        """Names of operations producing values consumed by ``name``."""
        if name not in self._graph:
            raise UnknownOperationError(f"unknown operation: {name!r}")
        return list(self._graph.predecessors(name))

    def successors(self, name: str) -> List[str]:
        """Names of operations consuming the value produced by ``name``."""
        if name not in self._graph:
            raise UnknownOperationError(f"unknown operation: {name!r}")
        return list(self._graph.successors(name))

    def edges(self) -> List[Tuple[str, str]]:
        """All dependence edges as (producer, consumer) pairs."""
        return list(self._graph.edges())

    def number_of_edges(self) -> int:
        return self._graph.number_of_edges()

    def topological_order(self) -> List[str]:
        """Operation names in a topological order.

        Raises :class:`DFGValidationError` when the graph has a cycle.
        """
        try:
            return list(nx.topological_sort(self._graph))
        except nx.NetworkXUnfeasible as exc:
            raise DFGValidationError(f"DFG {self.name!r} contains a dependence cycle") from exc

    def is_acyclic(self) -> bool:
        """True when the dependence graph has no cycles."""
        return nx.is_directed_acyclic_graph(self._graph)

    def iterations(self) -> List[int]:
        """Sorted list of distinct iteration indices present in the graph."""
        return sorted({op.iteration for op in self.operations()})

    def operations_in_iteration(self, iteration: int) -> List[Operation]:
        """Operations annotated with the given iteration index."""
        return [op for op in self.operations() if op.iteration == iteration]

    def op_counts(self) -> Dict[OpType, int]:
        """Histogram of operation types."""
        counts: Dict[OpType, int] = {}
        for op in self.operations():
            counts[op.optype] = counts.get(op.optype, 0) + 1
        return counts

    def operation_set(self) -> List[OpType]:
        """Sorted list of compute operation types used by the kernel.

        Memory operations are excluded because paper Table 3 lists only the
        computational operation set of each kernel.
        """
        present = {op.optype for op in self.operations() if not op.optype.is_memory}
        present.discard(OpType.CONST)
        present.discard(OpType.NOP)
        return sorted(present, key=lambda optype: optype.value)

    def multiplication_count(self) -> int:
        """Total number of multiplication operations."""
        return sum(1 for op in self.operations() if op.is_multiplication)

    def memory_operation_count(self) -> int:
        """Total number of load/store operations."""
        return sum(1 for op in self.operations() if op.is_memory)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def depth(self, latency_of=None) -> int:
        """Length of the longest dependence chain in cycles.

        Parameters
        ----------
        latency_of:
            Optional callable mapping an :class:`Operation` to its latency in
            cycles.  Defaults to one cycle per operation.
        """
        if latency_of is None:
            latency_of = lambda op: 1  # noqa: E731 - tiny default
        finish: Dict[str, int] = {}
        for name in self.topological_order():
            op = self.operation(name)
            start = 0
            for pred in self.predecessors(name):
                start = max(start, finish[pred])
            finish[name] = start + latency_of(op)
        return max(finish.values()) if finish else 0

    def critical_path(self, latency_of=None) -> List[str]:
        """Operation names along one longest dependence chain."""
        if latency_of is None:
            latency_of = lambda op: 1  # noqa: E731 - tiny default
        finish: Dict[str, int] = {}
        best_pred: Dict[str, Optional[str]] = {}
        for name in self.topological_order():
            op = self.operation(name)
            start = 0
            chosen: Optional[str] = None
            for pred in self.predecessors(name):
                if finish[pred] > start:
                    start = finish[pred]
                    chosen = pred
            finish[name] = start + latency_of(op)
            best_pred[name] = chosen
        if not finish:
            return []
        tail = max(finish, key=lambda name: finish[name])
        path = [tail]
        while best_pred[path[-1]] is not None:
            path.append(best_pred[path[-1]])  # type: ignore[arg-type]
        return list(reversed(path))

    # ------------------------------------------------------------------
    # Composition / serialisation
    # ------------------------------------------------------------------
    def merge(self, other: "DFG", prefix: Optional[str] = None) -> Dict[str, str]:
        """Copy all operations and edges of ``other`` into this graph.

        Returns the mapping from names in ``other`` to the (possibly
        prefixed) names created in this graph.
        """
        renaming: Dict[str, str] = {}
        for op in other.operations():
            new_name = op.name if prefix is None else f"{prefix}{op.name}"
            if new_name in self._graph:
                new_name = self.fresh_name(new_name)
            renamed = Operation(
                name=new_name,
                optype=op.optype,
                iteration=op.iteration,
                array=op.array,
                index=op.index,
                immediate=op.immediate,
                comment=op.comment,
            )
            self.add_operation(renamed)
            renaming[op.name] = new_name
        for producer, consumer in other.edges():
            port = other.graph.edges[producer, consumer].get("port")
            self.add_dependence(renaming[producer], renaming[consumer], port=port)
        return renaming

    def copy(self, name: Optional[str] = None) -> "DFG":
        """Deep copy of the graph (operations are re-created)."""
        clone = DFG(name or self.name)
        clone.merge(self)
        return clone

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation of the graph."""
        return {
            "name": self.name,
            "operations": [
                {
                    "name": op.name,
                    "optype": op.optype.value,
                    "iteration": op.iteration,
                    "array": op.array,
                    "index": op.index,
                    "immediate": op.immediate,
                    "comment": op.comment,
                }
                for op in self.operations()
            ],
            "edges": [
                {
                    "producer": producer,
                    "consumer": consumer,
                    "port": self._graph.edges[producer, consumer].get("port"),
                }
                for producer, consumer in self.edges()
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "DFG":
        """Rebuild a graph from :meth:`to_dict` output."""
        dfg = cls(str(payload.get("name", "dfg")))
        for op_payload in payload["operations"]:  # type: ignore[index]
            dfg.add_operation(
                Operation(
                    name=op_payload["name"],
                    optype=OpType(op_payload["optype"]),
                    iteration=int(op_payload.get("iteration", 0)),
                    array=op_payload.get("array"),
                    index=op_payload.get("index"),
                    immediate=op_payload.get("immediate"),
                    comment=op_payload.get("comment", ""),
                )
            )
        for edge_payload in payload["edges"]:  # type: ignore[index]
            dfg.add_dependence(
                edge_payload["producer"],
                edge_payload["consumer"],
                port=edge_payload.get("port"),
            )
        return dfg

    def __repr__(self) -> str:
        return (
            f"DFG(name={self.name!r}, operations={len(self)}, "
            f"edges={self.number_of_edges()})"
        )
