"""End-to-end RSP design flow (paper Figure 7).

The paper's flow has two halves: the generic base-architecture exploration
(profiling, base architecture selection, pipeline mapping) and the RSP
refinement (RSP exploration, RSP mapping).  :func:`run_rsp_flow` wires the
library's pieces together in that order for a given application domain
(a set of kernels) and returns everything a user needs: the base mapping of
every kernel, the exploration result, the selected design point and the
final RSP mappings on that design.

This is the highest-level entry point of the library::

    from repro.flow import run_rsp_flow
    from repro.kernels import paper_suite

    outcome = run_rsp_flow(paper_suite())
    print(outcome.selected_architecture.name)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Union

from repro.arch.array import ArraySpec
from repro.arch.template import ArchitectureSpec, base_architecture, default_array_spec
from repro.core.exploration import (
    ExplorationConstraints,
    ExplorationResult,
    RSPDesignSpaceExplorer,
)
from repro.core.rsp_params import RSPParameters, enumerate_design_space
from repro.core.stalls import ScheduleProfile
from repro.core.timing_model import TimingModel
from repro.core.cost_model import HardwareCostModel
from repro.errors import ExplorationError
from repro.ir.loops import Kernel
from repro.mapping.mapper import MappingResult, RSPMapper

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.engine.artifacts import ArtifactStore
    from repro.engine.cache import EvaluationCache
    from repro.engine.executor import ExecutorConfig


@dataclass
class FlowOutcome:
    """Everything produced by one run of the RSP design flow."""

    base_architecture: ArchitectureSpec
    base_mappings: Dict[str, MappingResult]
    profiles: Dict[str, ScheduleProfile]
    exploration: ExplorationResult
    selected_architecture: Optional[ArchitectureSpec]
    rsp_mappings: Dict[str, MappingResult] = field(default_factory=dict)

    @property
    def selected_name(self) -> str:
        """Name of the selected design point (``"Base"`` when nothing was selected)."""
        if self.selected_architecture is None:
            return "Base"
        return self.selected_architecture.name

    def total_base_cycles(self) -> int:
        """Sum of base-architecture cycle counts over the domain kernels."""
        return sum(result.cycles for result in self.base_mappings.values())

    def total_selected_cycles(self) -> int:
        """Sum of selected-design cycle counts over the domain kernels."""
        if not self.rsp_mappings:
            return self.total_base_cycles()
        return sum(result.cycles for result in self.rsp_mappings.values())


def run_rsp_flow(
    kernels: Sequence[Kernel],
    array: Optional[ArraySpec] = None,
    candidates: Optional[Sequence[RSPParameters]] = None,
    constraints: Optional[ExplorationConstraints] = None,
    cost_model: Optional[HardwareCostModel] = None,
    timing_model: Optional[TimingModel] = None,
    executor: Optional["ExecutorConfig"] = None,
    cache: Optional["EvaluationCache"] = None,
    artifact_store: Optional[Union["ArtifactStore", str, Path]] = None,
    store_shards: int = 1,
    store_url: Optional[str] = None,
    store_tier: bool = False,
    prefetch_artifacts: bool = False,
) -> FlowOutcome:
    """Run the complete RSP design flow for an application domain.

    Parameters
    ----------
    kernels:
        The critical loops of the target domain (the output of the paper's
        profiling step).
    array:
        Dimensions and bus structure of the base architecture; defaults to
        the paper's 8x8 array.
    candidates:
        RSP parameter candidates to explore; defaults to the standard sweep
        (``shr``/``shc`` in 0..2, multiplier stages in {1, 2}).
    constraints:
        Feasibility constraints applied before Pareto filtering.
    cost_model / timing_model:
        Models used for the exploration estimates.
    executor / cache:
        Evaluation-engine options (see :mod:`repro.engine`): a backend
        configuration for parallel candidate evaluation and a persistent
        cache so repeated flows never recompute an evaluation.  The
        exploration step always runs through the engine; these arguments
        only tune it.
    artifact_store:
        Optional persistent :class:`~repro.engine.artifacts.ArtifactStore`
        backing the staged mapping pipeline: base schedules, profiles and
        rearranged schedules of repeated flows are fetched instead of
        recomputed.  A path is accepted as shorthand and opens a store
        rooted there with ``store_shards`` shards.  The flow's outputs
        are identical either way.
    store_shards:
        Shard count used when ``artifact_store`` is given as a path (see
        :class:`~repro.engine.artifacts.ArtifactStore`).
    store_url / store_tier:
        URL of a shared ``repro.service`` store server; the flow's
        mapping artifacts are then fetched from and stored to that
        service instead of a local directory (``store_tier`` fronts it
        with an in-memory read-through/write-behind tier).  Mutually
        exclusive with ``artifact_store``.
    prefetch_artifacts:
        Batch-warm the artifact store before each mapping phase: all
        kernels' base-mapping stage keys are fetched in one request per
        stage up front, and the selected design's rearrangement keys the
        same way before the final RSP mapping loop — instead of one
        blocking store lookup per kernel inside the loops.  Pays off
        against a remote store; a no-op for in-memory stores.
    """
    if not kernels:
        raise ExplorationError("the RSP flow needs at least one kernel")
    if store_url is not None:
        if artifact_store is not None:
            raise ExplorationError("pass either artifact_store or store_url, not both")
        from repro.engine.artifacts import ArtifactStore
        from repro.service import open_store_backend

        artifact_store = ArtifactStore(backend=open_store_backend(store_url, tiered=store_tier))
    if artifact_store is not None and isinstance(artifact_store, (str, Path)):
        from repro.engine.artifacts import ArtifactStore

        artifact_store = ArtifactStore(artifact_store, shards=store_shards)
    # The flow owns the backend it opened from a URL: drain the
    # write-behind tier (if any) and release the keep-alive connections
    # on every exit path, not just success.
    owned_backend = artifact_store.backend if store_url is not None else None
    try:
        array_spec = array or default_array_spec()
        base = base_architecture(array_spec.rows, array_spec.cols)
        mapper = RSPMapper(base=base, store=artifact_store)
        timing_model = timing_model or TimingModel()
        cost_model = cost_model or HardwareCostModel()

        # Upper half of Figure 7: pipeline mapping on the base architecture.
        if prefetch_artifacts:
            # The base target adds the generate_context keys of the base
            # mapping when the mapper produces contexts (a no-op otherwise).
            mapper.pipeline.prefetch_stages(list(kernels), targets=[base])
        base_mappings: Dict[str, MappingResult] = {}
        profiles: Dict[str, ScheduleProfile] = {}
        for kernel in kernels:
            base_mappings[kernel.name] = mapper.map_kernel(kernel, base)
            profiles[kernel.name] = mapper.pipeline.profile_artifact(kernel).value

        # Lower half of Figure 7: RSP exploration.
        explorer = RSPDesignSpaceExplorer(
            profiles, array=array_spec, cost_model=cost_model, timing_model=timing_model
        )
        candidate_list = list(candidates) if candidates is not None else enumerate_design_space()
        exploration = explorer.explore(candidate_list, constraints, executor=executor, cache=cache)

        selected_architecture: Optional[ArchitectureSpec] = None
        rsp_mappings: Dict[str, MappingResult] = {}
        if exploration.selected is not None and exploration.selected.parameters.kind != "base":
            selected_architecture = exploration.selected.architecture
            # RSP mapping: rearrange every kernel's context for the chosen design.
            if prefetch_artifacts:
                mapper.pipeline.prefetch_stages(
                    list(kernels), targets=[selected_architecture]
                )
            for kernel in kernels:
                rsp_mappings[kernel.name] = mapper.map_kernel(kernel, selected_architecture)

        return FlowOutcome(
            base_architecture=base,
            base_mappings=base_mappings,
            profiles=profiles,
            exploration=exploration,
            selected_architecture=selected_architecture,
            rsp_mappings=rsp_mappings,
        )
    finally:
        if owned_backend is not None:
            owned_backend.close()
