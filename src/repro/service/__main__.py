"""Command-line entry point: ``python -m repro.service``.

Serves a store directory to a fleet of campaign workers, e.g.::

    python -m repro.service --root /srv/repro-store --port 8731

    # elsewhere, any number of times, on any machine:
    python -m repro.engine --suite paper --store-url http://store-host:8731

The default ``pickle`` backend accepts every value the workers send
(evaluation records as JSON, mapping artifacts as opaque binary);
``--backend jsonl`` serves a records-only store that rejects binary
payloads with ``415``.

With ``--coordinator DIR`` the service additionally schedules campaigns
(the ``/campaign`` routes): workers lease waves, heartbeat, and report
results, and a dead worker's wave is requeued after ``--lease-timeout``
seconds of silence.  See the README's "Fleet campaigns" section.
"""

from __future__ import annotations

import argparse
import signal
import sys
from pathlib import Path
from typing import List, Optional

from repro.service.server import StoreServer
from repro.store import PickleDirBackend, ShardedJsonlBackend


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve a store directory over HTTP for fleet-wide reuse.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        required=True,
        help="store directory the service owns (created on demand)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=8731, help="listen port (default: 8731; 0 = ephemeral)"
    )
    parser.add_argument(
        "--backend",
        choices=("pickle", "jsonl"),
        default="pickle",
        help="storage backend: pickle accepts any value (default), "
        "jsonl is records-only (binary payloads get 415)",
    )
    parser.add_argument(
        "--store-shards",
        type=int,
        default=1,
        help="shard count of the served backend (default: 1)",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="DIR",
        help="record one service.request span per handled request into "
        "DIR/trace.db (inspect with python -m repro.trace slow DIR "
        "--kind request)",
    )
    parser.add_argument(
        "--coordinator",
        type=Path,
        default=None,
        metavar="DIR",
        help="also run the campaign coordinator, persisting campaign state "
        "(manifest, event journal, merged checkpoint) under DIR",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        help="seconds a wave lease survives without a heartbeat before the "
        "wave is requeued (default: 30)",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=5.0,
        help="cadence workers are told to heartbeat at (default: 5; must be "
        "shorter than --lease-timeout)",
    )
    parser.add_argument(
        "--max-wave-attempts",
        type=int,
        default=5,
        help="lease attempts per wave before the campaign is declared "
        "failed (default: 5)",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress the startup banner")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not 1 <= args.store_shards <= 99:
        print(f"error: store shards must be in 1..99, got {args.store_shards}", file=sys.stderr)
        return 2
    args.root.mkdir(parents=True, exist_ok=True)
    if args.backend == "jsonl":
        backend = ShardedJsonlBackend(args.root / "records.jsonl", num_shards=args.store_shards)
    else:
        backend = PickleDirBackend(args.root, num_shards=args.store_shards)
    collector = None
    access_log = None
    if args.trace is not None:
        from repro.trace.collect import TraceCollector

        collector = TraceCollector(args.trace, campaign="repro.service").install()
        # Flush opportunistically from the request path: a long-lived
        # service otherwise buffers spans forever.
        access_log = lambda *event: collector.maybe_flush(64)  # noqa: E731
    coordinator = None
    if args.coordinator is not None:
        from repro.service.coordinator import CampaignCoordinator, LeasePolicy

        try:
            policy = LeasePolicy(
                lease_timeout=args.lease_timeout,
                heartbeat_interval=args.heartbeat_interval,
                max_attempts=args.max_wave_attempts,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        coordinator = CampaignCoordinator(args.coordinator, policy=policy)
    server = StoreServer(
        backend,
        host=args.host,
        port=args.port,
        access_log=access_log,
        coordinator=coordinator,
    )
    if not args.quiet:
        banner = (
            f"repro store service: {args.backend} backend on {args.root} "
            f"({args.store_shards} shard(s)) at {server.url}"
        )
        if coordinator is not None:
            banner += f"; coordinating campaigns under {args.coordinator}"
        print(banner, flush=True)
    # SIGTERM (systemd, docker stop, CI teardown) must drain the trace
    # buffer like Ctrl-C does, not kill the process mid-flush.
    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous_term = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous_term)
        server.httpd.server_close()
        if coordinator is not None:
            coordinator.close()
        if collector is not None:
            collector.uninstall()
            collector.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
