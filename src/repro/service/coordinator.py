"""The campaign coordinator: wave leasing, heartbeats, dead-worker requeue.

This module promotes :mod:`repro.service` from a passive store into an
active scheduler.  One coordinator owns the authoritative state of every
submitted campaign; any number of worker processes
(:mod:`repro.engine.worker`, ``python -m repro.engine --worker``) then
drive one campaign together:

1. **Submit** — every worker POSTs the campaign spec; submission is
   idempotent by :func:`~repro.engine.checkpoint.campaign_fingerprint`,
   so N workers submitting the same spec land on one shared campaign.
   The coordinator plans the work as *waves*: contiguous slices of the
   suite's non-base job list (the exact list
   :func:`~repro.engine.executor.run_exploration` builds), with the
   first wave of each suite additionally carrying the base evaluation.
2. **Lease** — a worker leases the next pending wave.  The lease carries
   a deadline (:attr:`LeasePolicy.lease_timeout` from now); the worker
   heartbeats to push the deadline out while it evaluates.
3. **Complete** — the worker reports the wave's evaluation records, keyed
   by job content hash, and the coordinator merges them into a
   server-side :class:`~repro.engine.checkpoint.CampaignCheckpoint` (the
   PR 5 substrate — the same file a single-machine ``--resume`` reads).
   Ingest is **idempotent**: records are content-hash keyed and two
   completions of one wave merge to identical state, so a worker that
   lost its lease mid-evaluation may still report harmlessly.
4. **Requeue** — leases are expired *lazily*: every request first sweeps
   the deadlines, and a lease whose worker went silent returns its wave
   to the pending queue (``requeue`` event, ``coordinator.lease`` trace
   span with ``outcome="expired"``).  A killed worker therefore costs one
   lease timeout, never the campaign.

Durability: each campaign owns a directory under the coordinator root
holding ``campaign.json`` (the manifest: spec payload, wave plan inputs,
policy), ``events.jsonl`` (the journal: ``lease`` / ``requeue`` /
``wave_end`` / ``campaign_end``) and ``checkpoint.json`` (the merged
records, write-then-rename).  A restarted coordinator replays the
journal against the manifest: completed waves stay completed (their
records are already in the checkpoint — the merge happens *before* the
``wave_end`` is journaled), in-flight leases are forgotten and simply
re-leased.  The event log's single-writer flock doubles as the guard
against two coordinators serving one root.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.engine.checkpoint import (
    CHECKPOINT_FILENAME,
    CampaignCheckpoint,
    campaign_fingerprint,
)
from repro.engine.jobs import CampaignSpec
from repro.engine.stream import EVENTS_FILENAME, EventLog
from repro.errors import ExplorationError
from repro.trace.spans import STATUS_ERROR, STATUS_OK, get_tracer

#: File name of the per-campaign manifest inside its state directory.
MANIFEST_FILENAME = "campaign.json"

#: Characters of the fingerprint used as the public campaign id.
CAMPAIGN_ID_CHARS = 16


class CoordinatorError(Exception):
    """A request the coordinator refuses; carries its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class LeasePolicy:
    """Declarative lease/heartbeat/requeue timing of one coordinator.

    Attributes
    ----------
    lease_timeout:
        Seconds a lease lives without a heartbeat before its wave is
        requeued.  Each heartbeat (and the grant itself) pushes the
        deadline this far into the future.
    heartbeat_interval:
        The cadence workers are told to heartbeat at; also the
        ``retry_after`` hint handed to workers polling an empty queue.
        Must leave comfortable slack under ``lease_timeout``.
    max_attempts:
        Times one wave may be leased in total before the campaign is
        declared failed — a wave that kills every worker it touches must
        eventually stop the fleet instead of cycling forever.
    """

    lease_timeout: float = 30.0
    heartbeat_interval: float = 5.0
    max_attempts: int = 5

    def __post_init__(self) -> None:
        if self.lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be positive, got {self.lease_timeout}")
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {self.heartbeat_interval}"
            )
        if self.heartbeat_interval >= self.lease_timeout:
            raise ValueError(
                f"heartbeat_interval ({self.heartbeat_interval}) must be shorter "
                f"than lease_timeout ({self.lease_timeout}) or every lease expires"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be at least 1, got {self.max_attempts}")

    def as_dict(self) -> dict:
        return {
            "lease_timeout": self.lease_timeout,
            "heartbeat_interval": self.heartbeat_interval,
            "max_attempts": self.max_attempts,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LeasePolicy":
        return cls(
            lease_timeout=float(payload.get("lease_timeout", 30.0)),
            heartbeat_interval=float(payload.get("heartbeat_interval", 5.0)),
            max_attempts=int(payload.get("max_attempts", 5)),
        )


@dataclass
class WaveState:
    """One leasable unit of campaign work and its scheduling state."""

    suite: str
    index: int
    #: Positions into the suite's non-base job list (grid order), exactly
    #: as :func:`~repro.engine.executor.run_exploration` enumerates it.
    indices: Tuple[int, ...]
    #: The first wave of each suite also evaluates the base point.
    include_base: bool = False
    status: str = "pending"  # pending | leased | done | failed
    attempts: int = 0
    lease: Optional[str] = None
    worker: Optional[str] = None
    deadline: float = 0.0
    granted_at: float = 0.0

    @property
    def wave_id(self) -> str:
        return f"{self.suite}:{self.index}"


def plan_waves(spec: CampaignSpec, wave_size: int) -> List[WaveState]:
    """Slice a campaign into its waves (per suite, grid order).

    Deterministic and derivable by every party from the spec alone: the
    coordinator plans with it, and workers rebuild the identical job list
    to resolve the indices a lease names.
    """
    if wave_size < 1:
        raise CoordinatorError(400, f"wave_size must be at least 1, got {wave_size}")
    job_count = sum(
        1 for parameters in spec.candidate_grid() if parameters.kind != "base"
    )
    waves: List[WaveState] = []
    for suite in spec.suites:
        if job_count == 0:
            # Degenerate grid: the suite still needs its base evaluation.
            waves.append(WaveState(suite=suite, index=0, indices=(), include_base=True))
            continue
        for wave_index, start in enumerate(range(0, job_count, wave_size)):
            waves.append(
                WaveState(
                    suite=suite,
                    index=wave_index,
                    indices=tuple(range(start, min(start + wave_size, job_count))),
                    include_base=wave_index == 0,
                )
            )
    return waves


class _CampaignState:
    """Everything the coordinator holds about one campaign."""

    def __init__(
        self,
        campaign_id: str,
        spec: CampaignSpec,
        payload: dict,
        wave_size: int,
        directory: Path,
        events: EventLog,
        checkpoint: CampaignCheckpoint,
    ) -> None:
        self.campaign_id = campaign_id
        self.spec = spec
        self.payload = payload
        self.wave_size = wave_size
        self.directory = directory
        self.events = events
        self.checkpoint = checkpoint
        self.waves: Dict[str, WaveState] = {
            wave.wave_id: wave for wave in plan_waves(spec, wave_size)
        }
        self.leases: Dict[str, WaveState] = {}
        self.workers: Dict[str, Dict[str, Any]] = {}
        self.requeues = 0
        self.complete = False
        self.failed: Optional[str] = None
        self._lease_sequence = 0
        self._worker_sequence = 0

    def next_lease_id(self) -> str:
        self._lease_sequence += 1
        return f"{self.campaign_id}-L{self._lease_sequence}"

    def next_worker_id(self, name: Optional[str]) -> str:
        self._worker_sequence += 1
        stem = (name or "worker").strip() or "worker"
        return f"{stem}-{self._worker_sequence}"

    def wave_counts(self) -> Dict[str, int]:
        counts = {"total": len(self.waves), "pending": 0, "leased": 0, "done": 0, "failed": 0}
        for wave in self.waves.values():
            counts[wave.status] = counts.get(wave.status, 0) + 1
        return counts


class CampaignCoordinator:
    """The lease/heartbeat/requeue state machine behind the HTTP routes.

    Thread-safe: HTTP handler threads call straight in, one reentrant
    lock serialises every mutation.  Lease expiry is *lazy* — there is no
    reaper thread; every entry point first sweeps the deadlines under the
    lock, so a dead worker's wave is requeued by whichever request
    arrives next.  ``clock`` is injectable (monotonic) so tests drive
    expiry deterministically.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        policy: Optional[LeasePolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.policy = policy or LeasePolicy()
        self._clock = clock
        self._lock = threading.RLock()
        self._campaigns: Dict[str, _CampaignState] = {}
        self._recover()

    # ------------------------------------------------------------------
    # Durability: manifest + journal replay
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Reload every campaign directory under the root (restart path).

        Completed waves are re-marked from the journal's ``wave_end``
        events (their records are guaranteed present: the checkpoint is
        saved before the event is emitted).  Leases are *not* recovered —
        a coordinator restart forgets who held what, and the affected
        waves are simply leased again; idempotent ingest makes the
        overlap harmless.
        """
        for manifest_path in sorted(self.directory.glob(f"*/{MANIFEST_FILENAME}")):
            try:
                manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
                spec = CampaignSpec.from_payload(manifest["spec"])
                wave_size = int(manifest["wave_size"])
            except (OSError, ValueError, KeyError, ExplorationError):
                continue  # an unreadable manifest is skipped, not fatal
            state = self._build_state(spec, wave_size, resume=True)
            for event in EventLog.read(state.directory / EVENTS_FILENAME):
                data = event.data
                if event.type == "wave_end":
                    wave = state.waves.get(f"{data.get('suite')}:{data.get('wave')}")
                    if wave is not None:
                        wave.status = "done"
                elif event.type == "requeue":
                    state.requeues += 1
                    wave = state.waves.get(f"{data.get('suite')}:{data.get('wave')}")
                    if wave is not None:
                        wave.attempts += 1
                elif event.type == "campaign_end":
                    state.complete = True
            self._check_failed(state)
            self._campaigns[state.campaign_id] = state

    def _build_state(
        self, spec: CampaignSpec, wave_size: int, resume: bool
    ) -> _CampaignState:
        fingerprint = campaign_fingerprint(spec)
        campaign_id = fingerprint[:CAMPAIGN_ID_CHARS]
        directory = self.directory / campaign_id
        directory.mkdir(parents=True, exist_ok=True)
        checkpoint_path = directory / CHECKPOINT_FILENAME
        checkpoint = CampaignCheckpoint.load(checkpoint_path) if resume else None
        if checkpoint is not None:
            checkpoint.require_fingerprint(fingerprint, checkpoint_path)
        else:
            checkpoint = CampaignCheckpoint(fingerprint=fingerprint)
        events = EventLog(directory / EVENTS_FILENAME)
        return _CampaignState(
            campaign_id=campaign_id,
            spec=spec,
            payload=spec.as_payload(),
            wave_size=wave_size,
            directory=directory,
            events=events,
            checkpoint=checkpoint,
        )

    def _save_manifest(self, state: _CampaignState) -> None:
        manifest = {
            "campaign": state.campaign_id,
            "spec": state.payload,
            "wave_size": state.wave_size,
            "policy": self.policy.as_dict(),
        }
        path = state.directory / MANIFEST_FILENAME
        scratch = path.with_name(path.name + f".tmp.{os.getpid()}")
        scratch.write_text(
            json.dumps(manifest, sort_keys=True, indent=2) + "\n", encoding="utf-8"
        )
        os.replace(scratch, path)

    # ------------------------------------------------------------------
    # Internal helpers (call with the lock held)
    # ------------------------------------------------------------------
    def _state(self, campaign_id: str) -> _CampaignState:
        state = self._campaigns.get(campaign_id)
        if state is None:
            raise CoordinatorError(404, f"no campaign {campaign_id!r} on this coordinator")
        return state

    def _expire(self, state: _CampaignState) -> None:
        """Requeue every lease whose heartbeat deadline has passed."""
        now = self._clock()
        for lease_id, wave in list(state.leases.items()):
            if now < wave.deadline or wave.lease != lease_id:
                continue
            del state.leases[lease_id]
            if wave.status != "leased":
                continue
            state.requeues += 1
            worker = wave.worker
            wave.status = "pending"
            wave.lease = None
            wave.worker = None
            state.events.emit(
                "requeue",
                suite=wave.suite,
                wave=wave.index,
                lease=lease_id,
                worker=worker,
                attempt=wave.attempts,
            )
            tracer = get_tracer()
            if tracer.active:
                tracer.record_span(
                    "coordinator.lease",
                    kind="lease",
                    duration_s=max(0.0, now - wave.granted_at),
                    status=STATUS_ERROR,
                    campaign=state.campaign_id,
                    suite=wave.suite,
                    wave=wave.index,
                    worker=worker,
                    lease=lease_id,
                    attempt=wave.attempts,
                    outcome="expired",
                )
                tracer.counter("lease.requeued")
        self._check_failed(state)

    def _check_failed(self, state: _CampaignState) -> None:
        if state.failed is not None:
            return
        for wave in state.waves.values():
            if wave.status == "pending" and wave.attempts >= self.policy.max_attempts:
                wave.status = "failed"
                state.failed = (
                    f"wave {wave.wave_id} exhausted its {self.policy.max_attempts} "
                    "lease attempts (it may be killing the workers it lands on)"
                )

    def _maybe_finish(self, state: _CampaignState) -> None:
        if state.complete:
            return
        if all(wave.status == "done" for wave in state.waves.values()):
            state.complete = True
            state.events.emit(
                "campaign_end",
                campaign=state.spec.name,
                resumed=False,
                checkpoint_hits=0,
                waves=len(state.waves),
                suites=list(state.spec.suites),
            )

    # ------------------------------------------------------------------
    # The coordinator API (one method per HTTP route)
    # ------------------------------------------------------------------
    def create_campaign(self, payload: dict, wave_size: Optional[int] = None) -> dict:
        """Submit a campaign (idempotent by spec fingerprint)."""
        try:
            spec = CampaignSpec.from_payload(payload)
        except ExplorationError as exc:
            raise CoordinatorError(400, str(exc)) from exc
        effective_wave_size = int(wave_size) if wave_size is not None else spec.chunk_size
        with self._lock:
            campaign_id = campaign_fingerprint(spec)[:CAMPAIGN_ID_CHARS]
            state = self._campaigns.get(campaign_id)
            created = state is None
            if created:
                state = self._build_state(spec, effective_wave_size, resume=False)
                self._save_manifest(state)
                state.events.emit(
                    "campaign_start",
                    campaign=spec.name,
                    suites=list(spec.suites),
                    fingerprint=campaign_fingerprint(spec),
                    resumed=False,
                    checkpoint_records=0,
                    backend=spec.backend,
                    workers=spec.workers,
                    chunk_size=spec.chunk_size,
                    early_reject=spec.early_reject,
                )
                state.checkpoint.save(state.directory / CHECKPOINT_FILENAME)
                self._campaigns[campaign_id] = state
            document = self.status(campaign_id)
            document["created"] = created
            return document

    def register(self, campaign_id: str, name: Optional[str] = None) -> dict:
        """Register a worker; returns its id and the lease policy."""
        with self._lock:
            state = self._state(campaign_id)
            worker_id = state.next_worker_id(name)
            state.workers[worker_id] = {"name": name or "worker", "leases": 0, "completed": 0}
            return {
                "campaign": campaign_id,
                "worker": worker_id,
                "policy": self.policy.as_dict(),
            }

    def lease(self, campaign_id: str, worker: str) -> dict:
        """Lease the next pending wave (or report wait/complete/failed)."""
        with self._lock:
            state = self._state(campaign_id)
            self._expire(state)
            if state.failed is not None:
                return {"status": "failed", "detail": state.failed}
            if state.complete:
                return {"status": "complete"}
            wave = next(
                (wave for wave in state.waves.values() if wave.status == "pending"), None
            )
            if wave is None:
                if all(w.status == "done" for w in state.waves.values()):
                    return {"status": "complete"}
                return {
                    "status": "wait",
                    "retry_after": self.policy.heartbeat_interval,
                    "leased": sum(
                        1 for w in state.waves.values() if w.status == "leased"
                    ),
                }
            now = self._clock()
            lease_id = state.next_lease_id()
            wave.status = "leased"
            wave.attempts += 1
            wave.lease = lease_id
            wave.worker = worker
            wave.granted_at = now
            wave.deadline = now + self.policy.lease_timeout
            state.leases[lease_id] = wave
            if worker in state.workers:
                state.workers[worker]["leases"] += 1
            state.events.emit(
                "lease",
                suite=wave.suite,
                wave=wave.index,
                lease=lease_id,
                worker=worker,
                attempt=wave.attempts,
                jobs=len(wave.indices) + (1 if wave.include_base else 0),
            )
            get_tracer().counter("lease.granted")
            return {
                "status": "leased",
                "lease": lease_id,
                "suite": wave.suite,
                "wave": wave.index,
                "indices": list(wave.indices),
                "include_base": wave.include_base,
                "attempt": wave.attempts,
                "lease_timeout": self.policy.lease_timeout,
                "heartbeat_interval": self.policy.heartbeat_interval,
            }

    def heartbeat(self, campaign_id: str, lease_id: str) -> dict:
        """Extend a live lease's deadline; 409 when the lease was lost."""
        with self._lock:
            state = self._state(campaign_id)
            self._expire(state)
            wave = state.leases.get(lease_id)
            if wave is None or wave.lease != lease_id:
                raise CoordinatorError(
                    409,
                    f"lease {lease_id!r} is not active (expired and requeued, "
                    "or already completed); stop evaluating or report anyway — "
                    "completion ingest is idempotent",
                )
            wave.deadline = self._clock() + self.policy.lease_timeout
            return {"status": "ok", "deadline_in": self.policy.lease_timeout}

    def complete(
        self,
        campaign_id: str,
        lease_id: Optional[str],
        suite: str,
        wave_index: int,
        records: Dict[str, dict],
    ) -> dict:
        """Ingest one wave's evaluation records (idempotent by content hash).

        Completions are accepted even when the lease already expired — the
        evaluation is done, the records are content-addressed, and merging
        them twice produces identical state.  Only the *first* completion
        transitions the wave to ``done`` and journals the ``wave_end``.
        """
        if not isinstance(records, dict) or not all(
            isinstance(key, str) and isinstance(record, dict)
            for key, record in records.items()
        ):
            raise CoordinatorError(
                400, 'complete expects {"records": {content_hash: record, ...}}'
            )
        with self._lock:
            state = self._state(campaign_id)
            self._expire(state)
            wave = state.waves.get(f"{suite}:{wave_index}")
            if wave is None:
                raise CoordinatorError(
                    404, f"campaign {campaign_id!r} has no wave {suite}:{wave_index}"
                )
            state.checkpoint.suite(suite).records.update(records)
            state.checkpoint.save(state.directory / CHECKPOINT_FILENAME)
            duplicate = wave.status == "done"
            lease_valid = lease_id is not None and state.leases.get(lease_id) is wave
            if lease_valid:
                del state.leases[lease_id]
            if not duplicate:
                worker = wave.worker if lease_valid else None
                wave.status = "done"
                wave.lease = None
                wave.worker = None
                state.events.emit(
                    "wave_end",
                    suite=suite,
                    wave=wave_index,
                    results=len(records),
                    lease=lease_id,
                    worker=worker,
                )
                if worker in state.workers:
                    state.workers[worker]["completed"] += 1
                tracer = get_tracer()
                if tracer.active:
                    tracer.record_span(
                        "coordinator.lease",
                        kind="lease",
                        duration_s=(
                            max(0.0, self._clock() - wave.granted_at)
                            if wave.granted_at
                            else 0.0
                        ),
                        status=STATUS_OK,
                        campaign=state.campaign_id,
                        suite=suite,
                        wave=wave_index,
                        worker=worker,
                        lease=lease_id,
                        attempt=wave.attempts,
                        records=len(records),
                        outcome="completed",
                    )
                    tracer.counter("lease.completed")
                self._maybe_finish(state)
            return {
                "status": "ok",
                "duplicate": duplicate,
                "lease_valid": lease_valid,
                "records": len(records),
                "campaign_complete": state.complete,
            }

    def status(self, campaign_id: str) -> dict:
        """The campaign's public status document."""
        with self._lock:
            state = self._state(campaign_id)
            self._expire(state)
            return {
                "campaign": campaign_id,
                "name": state.spec.name,
                "suites": list(state.spec.suites),
                "wave_size": state.wave_size,
                "waves": state.wave_counts(),
                "requeues": state.requeues,
                "records": state.checkpoint.total_records,
                "workers": {
                    worker_id: dict(facts) for worker_id, facts in state.workers.items()
                },
                "complete": state.complete,
                "failed": state.failed,
                "policy": self.policy.as_dict(),
            }

    def checkpoint_document(self, campaign_id: str) -> dict:
        """The merged checkpoint (what workers download to finalize)."""
        with self._lock:
            state = self._state(campaign_id)
            return state.checkpoint.as_dict()

    def campaign_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._campaigns)

    def close(self) -> None:
        """Release every campaign's journal (and its single-writer lock)."""
        with self._lock:
            for state in self._campaigns.values():
                state.events.close()

    def __enter__(self) -> "CampaignCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
