"""Fleet-wide store service: the storage layer over HTTP.

One process runs ``python -m repro.service --root DIR --port N`` next to
a store directory; any number of campaign workers on any machine point
``--store-url http://host:N`` at it and share one warm evaluation cache
and artifact store.  The pieces:

:class:`~repro.service.server.StoreServer`
    Stdlib-only ``ThreadingHTTPServer`` exposing any local
    :class:`~repro.store.backend.StoreBackend` (item routes, batch
    ``mget``/``mput``, ``/healthz``, ``/stats``, ``/janitor``).

:class:`~repro.store.remote.RemoteBackend`
    The client: the full store protocol over keep-alive HTTP with
    retry/backoff and an offline-tolerant degraded mode.

:class:`~repro.store.tiered.TieredBackend`
    A read-through memory front with write-behind batching over any
    backend — a fleet worker's local tier over the remote store.

:func:`open_store_backend`
    The one-liner the engine, the flow and the CLI share to build a
    remote (optionally tiered) backend from a URL.

:class:`~repro.service.coordinator.CampaignCoordinator`
    The campaign scheduler behind the ``/campaign`` routes: workers
    lease waves, heartbeat while evaluating, and report results into a
    shared checkpoint; silent leases are requeued
    (:class:`~repro.service.coordinator.LeasePolicy` sets the timing).
"""

from __future__ import annotations

from typing import Union

from repro.store.remote import RemoteBackend, StoreServiceError
from repro.store.tiered import TieredBackend
from repro.service.coordinator import (
    CampaignCoordinator,
    CoordinatorError,
    LeasePolicy,
    WaveState,
)
from repro.service.server import StoreRequestHandler, StoreServer, StoreService


def open_store_backend(
    url: str, *, tiered: bool = False, **remote_options
) -> Union[RemoteBackend, TieredBackend]:
    """A remote backend for ``url``, optionally fronted by a memory tier."""
    remote = RemoteBackend(url, **remote_options)
    if tiered:
        return TieredBackend(remote)
    return remote


__all__ = [
    "CampaignCoordinator",
    "CoordinatorError",
    "LeasePolicy",
    "RemoteBackend",
    "StoreRequestHandler",
    "StoreServer",
    "StoreService",
    "StoreServiceError",
    "TieredBackend",
    "WaveState",
    "open_store_backend",
]
