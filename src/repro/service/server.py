"""The store service: any local backend exposed over HTTP.

``StoreServer`` wraps one :class:`~repro.store.backend.StoreBackend` in a
stdlib :class:`~http.server.ThreadingHTTPServer` so a fleet of campaign
workers on different machines shares one warm store.  The surface is the
store protocol, one route per operation:

====================================  =======================================
``GET/HEAD /ns/{ns}/k/{key}``         ``get``/``contains`` (content-hash ETag,
                                      ``If-None-Match`` revalidation → 304)
``PUT /ns/{ns}/k/{key}``              ``put`` (JSON or opaque binary body)
``DELETE /ns/{ns}/k/{key}``           ``delete``
``POST /ns/{ns}/mget``                batch ``get_many`` — one round trip per
                                      campaign wave (the read hot path)
``POST /ns/{ns}/mput``                batch ``put_many`` (the write hot path)
``GET /scan[?ns=...]``                ``scan`` (entry metadata for GC)
``GET /stats``                        backend snapshot + per-endpoint request
                                      counters + uptime
``GET /healthz``                      cheap liveness probe (no disk walk)
``POST /janitor``                     one GC + compaction pass
``POST /campaign`` + subroutes        campaign coordinator (submit, status,
                                      register/lease/heartbeat/complete,
                                      checkpoint) — only when the server was
                                      built with a
                                      :class:`~repro.service.coordinator.CampaignCoordinator`
====================================  =======================================

Error mapping: ``400`` malformed request, ``404`` miss or unknown route,
``405`` wrong method, ``415`` a value the backend's domain rejects (e.g.
binary into a JSONL store), ``500`` anything the backend raises — always
with a JSON ``{"error": ...}`` body.

Handler threads serialise on one lock around every backend call: the
local backends' in-memory maps are not thread-safe, and the batch
endpoints amortise HTTP so thoroughly that lock contention is noise.
Binary payloads are stored as opaque ``bytes`` — the server never
unpickles client data (see :mod:`repro.store.wire`).
"""

from __future__ import annotations

import json
import re
import threading
import time
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.service.coordinator import CampaignCoordinator, CoordinatorError
from repro.store.backend import StoreBackend
from repro.store.janitor import StoreJanitor
from repro.trace.spans import STATUS_ERROR, STATUS_OK, get_tracer
from repro.store.wire import (
    JSON_CONTENT_TYPE,
    WireError,
    decode_body,
    decode_cell,
    encode_cell,
    etag_of,
    server_body,
)

_ITEM_ROUTE = re.compile(r"^/ns/([^/]*)/k/([^/]+)$")
_BATCH_ROUTE = re.compile(r"^/ns/([^/]*)/(mget|mput)$")
_CAMPAIGN_ROUTE = re.compile(
    r"^/campaign/([^/]+)(?:/(register|lease|heartbeat|complete|checkpoint))?$"
)


def _endpoint_label(raw_path: str) -> str:
    """Coarse endpoint name of a request path (access log / trace spans)."""
    path = urlsplit(raw_path).path
    if _ITEM_ROUTE.match(path):
        return "item"
    batch = _BATCH_ROUTE.match(path)
    if batch:
        return batch.group(2)
    if path == "/campaign" or _CAMPAIGN_ROUTE.match(path):
        return "campaign"
    if path in ("/healthz", "/stats", "/scan", "/janitor"):
        return path[1:]
    return "other"

#: Largest request body the server accepts (a campaign wave of evaluation
#: records is a few hundred KB; artifacts run to a few MB).
MAX_BODY_BYTES = 64 * 1024 * 1024


class _HTTPError(Exception):
    """Internal: raised by handlers to produce a mapped error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class StoreService:
    """The backend, its lock, and the request counters — handler-agnostic.

    ``access_log`` is an optional per-request hook receiving
    ``(method, endpoint, status, seconds)`` after every dispatched request
    (exceptions it raises are swallowed — observability must never take
    the service down).  The same observations are mirrored into the
    installed tracer as ``service.request`` spans when tracing is on.
    """

    def __init__(
        self,
        backend: StoreBackend,
        access_log=None,
        coordinator: Optional[CampaignCoordinator] = None,
    ) -> None:
        self.backend = backend
        self.access_log = access_log
        self.coordinator = coordinator
        self.lock = threading.RLock()
        self.started = time.time()
        self.requests: Dict[str, int] = {}

    def count(self, endpoint: str) -> None:
        with self.lock:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def observe(self, method: str, endpoint: str, status: int, seconds: float) -> None:
        """One dispatched request: feed the tracer and the access log."""
        tracer = get_tracer()
        if tracer.active:
            tracer.record_span(
                "service.request",
                kind="request",
                duration_s=seconds,
                status=STATUS_ERROR if status >= 500 else STATUS_OK,
                method=method,
                endpoint=endpoint,
                http_status=status,
            )
        if self.access_log is not None:
            try:
                self.access_log(method, endpoint, status, seconds)
            except Exception:
                pass

    def stats_document(self) -> dict:
        with self.lock:
            snapshot = asdict(self.backend.stats())
            return {
                "backend": snapshot,
                "requests": dict(self.requests),
                "uptime_seconds": round(time.time() - self.started, 3),
            }

    def janitor_document(self, max_age: Optional[float], compact: bool) -> dict:
        with self.lock:
            report = StoreJanitor(self.backend, max_age_seconds=max_age).sweep(
                compact=compact
            )
        return asdict(report)


class StoreRequestHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request onto the service's backend."""

    #: Keep-alive requires 1.1 (every response carries Content-Length).
    protocol_version = "HTTP/1.1"
    #: TCP_NODELAY: without it, Nagle + delayed ACK stalls every response
    #: whose headers and body leave in separate sends by tens of ms.
    disable_nagle_algorithm = True
    #: Bound to the owning server's service by :class:`StoreServer`.
    service: StoreService
    #: Status of the response most recently written by :meth:`_send`
    #: (reset per dispatch; 0 when the client vanished before a response).
    last_status: int = 0

    # BaseHTTPRequestHandler logs every request to stderr by default;
    # a store service handling one wave per second would drown a terminal.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    # Response plumbing
    # ------------------------------------------------------------------
    def _send(
        self,
        status: int,
        body: bytes = b"",
        content_type: str = JSON_CONTENT_TYPE,
        etag: Optional[str] = None,
        head_only: bool = False,
    ) -> None:
        self.last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if etag is not None:
            self.send_header("ETag", etag)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        if body and not head_only:
            self.wfile.write(body)

    def _send_json(self, status: int, document: object) -> None:
        self._send(status, json.dumps(document).encode("utf-8"))

    def _send_error_json(self, status: int, message: str, head_only: bool = False) -> None:
        # HEAD responses are bodyless by protocol — writing the JSON
        # error would desynchronise the keep-alive connection.
        if head_only:
            return self._send(status, head_only=True)
        self._send(status, json.dumps({"error": message}).encode("utf-8"))

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            # The oversized body is left unread; the connection cannot be
            # reused for a next request.
            self.close_connection = True
            raise _HTTPError(413, f"body of {length} bytes exceeds {MAX_BODY_BYTES}")
        return self.rfile.read(length) if length else b""

    def _json_body(self) -> dict:
        body = self._read_body()
        if not body:
            return {}
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(400, f"malformed JSON body: {exc}")
        if not isinstance(document, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        return document

    def _dispatch(self, method: str) -> None:
        head_only = method == "HEAD"
        self.last_status = 0
        started = time.perf_counter()
        try:
            self._route(method)
        except _HTTPError as error:
            self._send_error_json(error.status, str(error), head_only=head_only)
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as error:  # backend failures map to 500
            self._send_error_json(500, f"{type(error).__name__}: {error}", head_only=head_only)
        finally:
            self.service.observe(
                method,
                _endpoint_label(self.path),
                self.last_status,
                time.perf_counter() - started,
            )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, method: str) -> None:
        parts = urlsplit(self.path)
        path = parts.path
        item = _ITEM_ROUTE.match(path)
        if item:
            namespace, key = unquote(item.group(1)), unquote(item.group(2))
            if method in ("GET", "HEAD"):
                return self._handle_get(namespace, key, head_only=method == "HEAD")
            if method == "PUT":
                return self._handle_put(namespace, key)
            if method == "DELETE":
                return self._handle_delete(namespace, key)
            raise _HTTPError(405, f"{method} not allowed on item routes")
        batch = _BATCH_ROUTE.match(path)
        if batch:
            if method != "POST":
                raise _HTTPError(405, f"{method} not allowed on batch routes")
            namespace, operation = unquote(batch.group(1)), batch.group(2)
            if operation == "mget":
                return self._handle_mget(namespace)
            return self._handle_mput(namespace)
        if path == "/healthz" and method == "GET":
            self.service.count("healthz")
            return self._send_json(200, {"status": "ok", "backend": self.service.backend.name})
        if path == "/stats" and method == "GET":
            self.service.count("stats")
            return self._send_json(200, self.service.stats_document())
        if path == "/scan" and method == "GET":
            return self._handle_scan(parse_qs(parts.query))
        if path == "/janitor":
            if method != "POST":
                raise _HTTPError(405, "janitor runs via POST")
            return self._handle_janitor()
        if path == "/campaign" or _CAMPAIGN_ROUTE.match(path):
            return self._route_campaign(method, path)
        if path in ("/healthz", "/stats", "/scan"):
            raise _HTTPError(405, f"{method} not allowed on {path}")
        raise _HTTPError(404, f"no route for {path}")

    def _route_campaign(self, method: str, path: str) -> None:
        self.service.count("campaign")
        coordinator = self.service.coordinator
        if coordinator is None:
            raise _HTTPError(
                404,
                "this service runs no coordinator "
                "(start python -m repro.service with --coordinator DIR)",
            )
        try:
            if path == "/campaign":
                if method != "POST":
                    raise _HTTPError(405, "campaign submission runs via POST")
                document = self._json_body()
                spec = document.get("spec")
                if not isinstance(spec, dict):
                    raise _HTTPError(400, 'campaign submission expects {"spec": {...}}')
                wave_size = document.get("wave_size")
                if wave_size is not None:
                    try:
                        wave_size = int(wave_size)
                    except (TypeError, ValueError):
                        raise _HTTPError(400, f"wave_size must be an integer, got {wave_size!r}")
                return self._send_json(200, coordinator.create_campaign(spec, wave_size))
            match = _CAMPAIGN_ROUTE.match(path)
            assert match is not None  # guarded by the caller
            campaign_id, action = unquote(match.group(1)), match.group(2)
            if action is None:
                if method != "GET":
                    raise _HTTPError(405, "campaign status is read via GET")
                return self._send_json(200, coordinator.status(campaign_id))
            if action == "checkpoint":
                if method != "GET":
                    raise _HTTPError(405, "campaign checkpoints are read via GET")
                return self._send_json(200, coordinator.checkpoint_document(campaign_id))
            if method != "POST":
                raise _HTTPError(405, f"campaign {action} runs via POST")
            document = self._json_body()
            if action == "register":
                name = document.get("worker")
                return self._send_json(
                    200,
                    coordinator.register(
                        campaign_id, None if name is None else str(name)
                    ),
                )
            if action == "lease":
                worker = str(document.get("worker") or "worker")
                return self._send_json(200, coordinator.lease(campaign_id, worker))
            if action == "heartbeat":
                lease = document.get("lease")
                if not isinstance(lease, str):
                    raise _HTTPError(400, 'heartbeat expects {"lease": "..."}')
                return self._send_json(200, coordinator.heartbeat(campaign_id, lease))
            # action == "complete"
            suite = document.get("suite")
            wave = document.get("wave")
            if not isinstance(suite, str) or not isinstance(wave, int):
                raise _HTTPError(
                    400, 'complete expects {"suite": str, "wave": int, "records": {...}}'
                )
            lease = document.get("lease")
            return self._send_json(
                200,
                coordinator.complete(
                    campaign_id,
                    None if lease is None else str(lease),
                    suite,
                    wave,
                    document.get("records") or {},
                ),
            )
        except CoordinatorError as exc:
            raise _HTTPError(exc.status, str(exc))

    # ------------------------------------------------------------------
    # Item routes
    # ------------------------------------------------------------------
    def _handle_get(self, namespace: str, key: str, head_only: bool) -> None:
        self.service.count("head" if head_only else "get")
        with self.service.lock:
            if head_only:
                hit = self.service.backend.contains(namespace, key)
                value = None
            else:
                hit, value = self.service.backend.get(namespace, key)
        if not hit:
            if head_only:
                return self._send(404, head_only=True)
            return self._send_error_json(404, f"no entry {namespace!r}/{key[:16]}")
        if head_only:
            return self._send(200, head_only=True)
        content_type, body = server_body(value)
        etag = etag_of(body)
        if self.headers.get("If-None-Match") == etag:
            return self._send(304, etag=etag)
        self._send(200, body, content_type=content_type, etag=etag)

    def _handle_put(self, namespace: str, key: str) -> None:
        self.service.count("put")
        body = self._read_body()
        try:
            value = decode_body(
                self.headers.get("Content-Type", ""), body, unpickle=False
            )
        except WireError as exc:
            status = 415 if "unsupported content type" in str(exc) else 400
            raise _HTTPError(status, str(exc))
        content_type, canonical = server_body(value)
        try:
            with self.service.lock:
                self.service.backend.put(namespace, key, value)
        except TypeError as exc:
            # The backend's value domain rejected the payload (e.g. binary
            # into a JSONL store).
            raise _HTTPError(415, str(exc))
        self._send(204, etag=etag_of(canonical))

    def _handle_delete(self, namespace: str, key: str) -> None:
        self.service.count("delete")
        with self.service.lock:
            removed = self.service.backend.delete(namespace, key)
        if not removed:
            return self._send_error_json(404, f"no entry {namespace!r}/{key[:16]}")
        self._send(204)

    # ------------------------------------------------------------------
    # Batch routes (the hot path)
    # ------------------------------------------------------------------
    def _handle_mget(self, namespace: str) -> None:
        self.service.count("mget")
        document = self._json_body()
        keys = document.get("keys")
        if not isinstance(keys, list) or not all(isinstance(key, str) for key in keys):
            raise _HTTPError(400, 'mget expects {"keys": [str, ...]}')
        with self.service.lock:
            found = self.service.backend.get_many(namespace, keys)
        self._send_json(
            200,
            {
                "hits": {key: encode_cell(value) for key, value in found.items()},
                "misses": [key for key in keys if key not in found],
            },
        )

    def _handle_mput(self, namespace: str) -> None:
        self.service.count("mput")
        document = self._json_body()
        records = document.get("records")
        if not isinstance(records, dict):
            raise _HTTPError(400, 'mput expects {"records": {key: cell, ...}}')
        try:
            decoded = {
                key: decode_cell(cell, unpickle=False) for key, cell in records.items()
            }
        except WireError as exc:
            raise _HTTPError(400, str(exc))
        try:
            with self.service.lock:
                stored = self.service.backend.put_many(namespace, decoded)
        except TypeError as exc:
            raise _HTTPError(415, str(exc))
        self._send_json(200, {"stored": stored, "received": len(decoded)})

    # ------------------------------------------------------------------
    # Maintenance routes
    # ------------------------------------------------------------------
    def _handle_scan(self, query: Dict[str, list]) -> None:
        self.service.count("scan")
        namespace = unquote(query["ns"][0]) if "ns" in query else None
        with self.service.lock:
            entries = [asdict(entry) for entry in self.service.backend.scan(namespace)]
        self._send_json(200, {"entries": entries})

    def _handle_janitor(self) -> None:
        self.service.count("janitor")
        document = self._json_body()
        max_age = document.get("max_age")
        if max_age is not None:
            try:
                max_age = float(max_age)
            except (TypeError, ValueError):
                raise _HTTPError(400, f"max_age must be a number, got {max_age!r}")
            if max_age < 0:
                raise _HTTPError(400, f"max_age must be non-negative, got {max_age}")
        compact = bool(document.get("compact", True))
        self._send_json(200, self.service.janitor_document(max_age, compact))

    # ------------------------------------------------------------------
    # HTTP verb entry points
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._dispatch("GET")

    def do_HEAD(self) -> None:  # noqa: N802
        self._dispatch("HEAD")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")


class StoreServer:
    """A :class:`ThreadingHTTPServer` serving one backend.

    ``port=0`` binds an ephemeral port (the resolved one is
    :attr:`port`).  Use as a context manager in tests — ``start()`` runs
    the accept loop on a daemon thread — or call :meth:`serve_forever`
    from a dedicated process (the ``python -m repro.service`` entry
    point).
    """

    def __init__(
        self,
        backend: StoreBackend,
        host: str = "127.0.0.1",
        port: int = 0,
        access_log=None,
        coordinator: Optional[CampaignCoordinator] = None,
    ) -> None:
        self.service = StoreService(
            backend, access_log=access_log, coordinator=coordinator
        )
        handler = type(
            "BoundStoreRequestHandler", (StoreRequestHandler,), {"service": self.service}
        )
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "StoreServer":
        """Serve on a background daemon thread (test/embedded mode)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.httpd.serve_forever, name="store-server", daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self.httpd.serve_forever()

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "StoreServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
