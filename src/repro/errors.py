"""Exception hierarchy for the RSP reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything coming out of the package with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DFGError(ReproError):
    """Raised when a dataflow graph is malformed or used incorrectly."""


class DFGValidationError(DFGError):
    """Raised when dataflow-graph validation fails."""


class UnknownOperationError(DFGError):
    """Raised when an operation name is not present in a dataflow graph."""


class KernelError(ReproError):
    """Raised when a kernel specification is invalid."""


class UnknownKernelError(KernelError):
    """Raised when a kernel name is not present in the registry."""


class ArchitectureError(ReproError):
    """Raised when an architecture specification is inconsistent."""


class ComponentError(ArchitectureError):
    """Raised when a hardware component is unknown or misconfigured."""


class MappingError(ReproError):
    """Raised when a kernel cannot be mapped onto an architecture."""


class SchedulingError(MappingError):
    """Raised when the scheduler cannot produce a legal schedule."""


class PlacementError(MappingError):
    """Raised when an operation cannot be placed on any processing element."""


class SimulationError(ReproError):
    """Raised when the functional simulator encounters an illegal state."""


class ConfigurationError(ReproError):
    """Raised when configuration-context generation or decoding fails."""


class ExplorationError(ReproError):
    """Raised when design-space exploration is given inconsistent inputs."""


class CostModelError(ReproError):
    """Raised when the hardware cost model receives invalid parameters."""


class TimingModelError(ReproError):
    """Raised when the timing model receives invalid parameters."""


class TraceError(ReproError):
    """Raised when the tracing subsystem is misused or a trace DB is invalid."""


class FlowError(ReproError):
    """Base class for flow-graph runtime errors (:mod:`repro.flowgraph`)."""


class FlowParseError(FlowError):
    """Raised when an edge-expression string cannot be parsed."""


class FlowValidationError(FlowError):
    """Raised when a flow graph is structurally invalid.

    Every validation message names the offending node and, where one
    applies, the edge expression it came from — cycles list the full node
    path, undeclared inputs name the consuming node and the missing value,
    duplicate outputs name both producers.
    """


class FlowRoutingError(FlowError):
    """Raised when conditional routing leaves an output with no producer
    (no branch condition matched) or an unresolvable race (several branches
    ran but no selector was declared for their shared output)."""


class FlowExecutionError(FlowError):
    """Raised when a node's compute function fails after exhausting its
    retry policy; the message names the node and the final exception."""
