"""Adapters wiring the tracer into the repo's existing seams.

Nothing in here computes anything new — each adapter stands at a place
the engine already passes through and mirrors what it sees into the
installed tracer:

* :class:`TracingWaveObserver` — a :class:`~repro.observers.CampaignObserver`
  that opens one span per evaluation wave and folds results into the
  campaign counters (``wave.count``, ``result.count``,
  ``result.source.*``, ``result.feasible``, ``frontier.updates``,
  plus ``flow.node.*``/``flow.routed.*`` from flow-graph node events);
* :class:`TraceCollector` — owns the live :class:`~repro.trace.spans.Tracer`
  and the :class:`~repro.trace.db.TraceDB` it drains into; the campaign
  runner installs it for the duration of a traced run;
* :func:`import_event_log` — backfills an existing ``events.jsonl``
  journal into a trace DB (wave spans from start/end timestamp pairs,
  counters from result/frontier events), so pre-trace campaigns are
  queryable with the same dashboard;
* :func:`open_trace` — resolves a CLI target (a ``trace.db``, a stream
  directory, or a bare event journal) into a queryable :class:`TraceDB`.

The per-stage spans, store counters and request spans live directly in
:mod:`repro.mapping.pipeline`, :mod:`repro.engine.cache`,
:mod:`repro.engine.artifacts`, :mod:`repro.store.remote` and
:mod:`repro.service.server` — each calls :func:`~repro.trace.spans.get_tracer`
at its own choke point.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.engine.executor import WaveOutcome
from repro.engine.frontier import ParetoFrontier
from repro.engine.stream import EVENTS_FILENAME, EventLog
from repro.errors import TraceError
from repro.observers import CampaignObserver
from repro.trace.db import TRACE_DB_FILENAME, TraceDB
from repro.trace.spans import Span, Tracer, set_tracer


# ----------------------------------------------------------------------
# Wave observation
# ----------------------------------------------------------------------
class TracingWaveObserver(CampaignObserver):
    """Mirrors one suite's waves into spans and counters.

    The observer keeps its own feasible-point frontier (the same
    incremental :class:`~repro.engine.frontier.ParetoFrontier` the
    streaming journal uses) so ``frontier.updates`` counts genuine front
    insertions, not merely feasible results.
    """

    def __init__(self, tracer: Tracer, suite: str) -> None:
        self.tracer = tracer
        self.suite = suite
        self.frontier = ParetoFrontier(num_objectives=2)
        self._open: Dict[int, Span] = {}
        self._sources: Dict[str, int] = {}
        self._feasible = 0

    def _count_result(self, evaluation, source: str, feasible) -> int:
        """Fold one result into local tallies; 1 if it moved the frontier."""
        self._sources[source] = self._sources.get(source, 0) + 1
        if not feasible:
            return 0
        self._feasible += 1
        vector = (evaluation.area_slices, evaluation.total_execution_time_ns)
        return 1 if self.frontier.add(vector) else 0

    def _emit_counts(self, results: int, frontier_updates: int) -> None:
        """Ship the tallies accumulated since the previous emit (one lock
        round per counter name instead of one per result — the observer
        sits on the engine's wave hot path)."""
        tracer = self.tracer
        if results:
            tracer.counter("result.count", float(results))
        for source, count in self._sources.items():
            tracer.counter(f"result.source.{source}", float(count))
        self._sources.clear()
        if self._feasible:
            tracer.counter("result.feasible", float(self._feasible))
            self._feasible = 0
        if frontier_updates:
            tracer.counter("frontier.updates", float(frontier_updates))

    def base_evaluated(self, key, evaluation, source, feasible) -> None:
        self._emit_counts(1, self._count_result(evaluation, source, feasible))

    def wave_started(self, wave_index: int, job_count: int) -> None:
        self._open[wave_index] = self.tracer.span(
            "wave", kind="wave", suite=self.suite, wave=wave_index, jobs=job_count
        )

    def wave_finished(self, outcome: WaveOutcome) -> None:
        self.tracer.counter("wave.count")
        frontier_updates = 0
        for result in outcome.results:
            frontier_updates += self._count_result(
                result.evaluation, result.source, result.feasible
            )
        self._emit_counts(len(outcome.results), frontier_updates)
        if outcome.rejected:
            self.tracer.counter("result.rejected", float(len(outcome.rejected)))
        span = self._open.pop(outcome.wave_index, None)
        if span is not None:
            span.set("results", len(outcome.results))
            span.set("rejected", len(outcome.rejected))
            span.set("frontier_size", len(self.frontier))
            span.end()

    def node_finished(self, event) -> None:
        """Fold flow-graph node events into campaign counters.

        The per-stage *spans* already flow through ``PipelineStats.record``;
        here only the routing decisions are counted, so the dashboard can
        show which conditional/raced branches a campaign actually took.
        """
        if event.routed:
            self.tracer.counter(f"flow.routed.{event.node}")


#: Deprecated aliases re-exported from :mod:`repro.observers`.
_MOVED_TO_OBSERVERS = {
    "MultiWaveObserver": "MultiObserver",
    "compose_observers": "compose_observers",
}


def __getattr__(name: str):
    moved = _MOVED_TO_OBSERVERS.get(name)
    if moved is not None:
        import warnings

        import repro.observers as _observers

        warnings.warn(
            f"repro.trace.collect.{name} is deprecated; use "
            f"repro.observers.{moved} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_observers, moved)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# ----------------------------------------------------------------------
# The collector: one tracer, one DB, one traced run
# ----------------------------------------------------------------------
class TraceCollector:
    """Owns the live tracer of one traced run and drains it into a DB.

    Parameters
    ----------
    directory:
        Trace directory; the DB lands at ``<directory>/trace.db`` (next
        to a stream directory's ``events.jsonl`` when they coincide).
    db_path:
        Explicit database file instead of a directory.
    campaign:
        Optional campaign name stamped into the DB's ``meta`` table.

    The collector's tracer buffers in memory; :meth:`flush` moves the
    buffer into SQLite in one batched transaction.  Only the creating
    process ever writes (forked workers ship their spans back through
    the pool — see :mod:`repro.trace.spans`).
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        db_path: Optional[Union[str, Path]] = None,
        campaign: Optional[str] = None,
    ) -> None:
        if (directory is None) == (db_path is None):
            raise TraceError("pass exactly one of directory= or db_path=")
        path = Path(directory) / TRACE_DB_FILENAME if directory is not None else Path(db_path)
        self.db = TraceDB(path)
        self.tracer = Tracer()
        self.campaign = campaign
        if campaign is not None:
            self.db.set_meta("campaign", campaign)
        self.spans_flushed = 0
        self.counter_totals: Dict[str, float] = {}
        self._previous = None
        self._installed = False
        self._closed = False
        self.summary_cache: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Global installation
    # ------------------------------------------------------------------
    def install(self) -> "TraceCollector":
        """Make this collector's tracer the process-wide tracer."""
        if not self._installed:
            self._previous = set_tracer(self.tracer)
            self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore whatever tracer was installed before :meth:`install`."""
        if self._installed:
            set_tracer(self._previous)
            self._previous = None
            self._installed = False

    def observer(self, suite: str) -> TracingWaveObserver:
        """A wave observer mirroring ``suite`` into this collector."""
        return TracingWaveObserver(self.tracer, suite)

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Drain the tracer into the DB; returns the spans written."""
        batch = self.tracer.drain()
        written = 0
        if batch.spans:
            written = self.db.insert_spans(batch.spans)
            self.spans_flushed += written
        if batch.counters:
            self.db.add_counters(batch.counters)
            for name, value in batch.counters.items():
                self.counter_totals[name] = self.counter_totals.get(name, 0.0) + value
        if batch.annotations:
            self.db.insert_annotations(batch.annotations)
        return written

    def maybe_flush(self, threshold: int = 256) -> int:
        """Flush only once ``threshold`` spans are buffered (long-lived hosts)."""
        if self.tracer.pending >= threshold:
            return self.flush()
        return 0

    def summary(self) -> Dict[str, object]:
        """Flush, then report what this run traced (the report's ``trace`` block)."""
        self.flush()
        return {
            "db": str(self.db.path),
            "spans": self.spans_flushed,
            "counters": {
                name: int(value) if float(value).is_integer() else value
                for name, value in sorted(self.counter_totals.items())
            },
        }

    def close(self) -> Dict[str, object]:
        """Final flush + WAL checkpoint; returns the :meth:`summary` facts."""
        if self._closed:
            return self.summary_cache
        facts = self.summary()
        self.summary_cache = facts
        self.db.flush_wal()
        self.db.close()
        self._closed = True
        return facts

    def __enter__(self) -> "TraceCollector":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()
        self.close()


# ----------------------------------------------------------------------
# EventLog backfill
# ----------------------------------------------------------------------
def import_event_log(
    source: Union[str, Path], db: Optional[TraceDB] = None
) -> Tuple[TraceDB, Dict[str, int]]:
    """Backfill an ``events.jsonl`` journal into a trace DB.

    Wave spans are rebuilt from ``wave_start``/``wave_end`` timestamp
    pairs (wall-clock deltas — the journal carries no monotonic clock),
    campaign spans from ``campaign_start``/``campaign_end``, and the
    counters from ``result`` and ``frontier_update`` events — the same
    counter names a live :class:`TracingWaveObserver` emits, so wave and
    result counts round-trip exactly between a journal and its backfill.

    Returns ``(db, facts)`` where ``facts`` has ``events``/``spans``/
    ``waves``/``results`` counts.  ``db`` defaults to a fresh in-memory
    database (what the dashboard CLI uses for journal targets).
    """
    path = Path(source)
    if path.is_dir():
        path = path / EVENTS_FILENAME
    events = EventLog.read(path)
    if db is None:
        db = TraceDB()

    spans: List[dict] = []
    counters: Dict[str, float] = {}

    def bump(name: str, value: float = 1.0) -> None:
        counters[name] = counters.get(name, 0.0) + value

    def span_record(
        sequence: int,
        name: str,
        kind: str,
        start_ts: float,
        end_ts: float,
        parent_id: Optional[str],
        attrs: Dict[str, Any],
    ) -> dict:
        return {
            "span_id": f"evt-{sequence:x}",
            "parent_id": parent_id,
            "name": name,
            "kind": kind,
            "start_ts": start_ts,
            "duration_s": max(0.0, end_ts - start_ts),
            "status": "ok",
            "pid": None,
            "thread": None,
            "attrs": attrs,
        }

    open_campaign: Optional[Tuple[int, float, dict]] = None
    open_waves: Dict[Tuple[str, int], Tuple[int, float, int]] = {}
    for event in events:
        data = event.data
        if event.type == "campaign_start":
            open_campaign = (event.sequence, event.timestamp, data)
        elif event.type == "campaign_end":
            if open_campaign is not None:
                sequence, started, start_data = open_campaign
                spans.append(
                    span_record(
                        sequence,
                        str(start_data.get("campaign") or data.get("campaign") or "campaign"),
                        "campaign",
                        started,
                        event.timestamp,
                        None,
                        {
                            "suites": start_data.get("suites", []),
                            "resumed": bool(data.get("resumed", False)),
                            "waves": data.get("waves"),
                        },
                    )
                )
                open_campaign = None
        elif event.type in ("wave_start", "lease"):
            # A coordinator journal opens waves with "lease" events instead
            # of wave_start; either way the wave span runs to its wave_end.
            suite = str(data.get("suite"))
            wave = int(data.get("wave", 0))
            open_waves[(suite, wave)] = (
                event.sequence,
                event.timestamp,
                int(data.get("jobs", 0)),
            )
            if event.type == "lease":
                bump("lease.granted")
        elif event.type == "wave_end":
            suite = str(data.get("suite"))
            wave = int(data.get("wave", 0))
            opened = open_waves.pop((suite, wave), None)
            if opened is None:
                continue
            sequence, started, jobs = opened
            parent = f"evt-{open_campaign[0]:x}" if open_campaign is not None else None
            spans.append(
                span_record(
                    sequence,
                    "wave",
                    "wave",
                    started,
                    event.timestamp,
                    parent,
                    {
                        "suite": suite,
                        "wave": wave,
                        "jobs": jobs,
                        "results": int(data.get("results", 0)),
                        "rejected": int(data.get("rejected", 0)),
                        "frontier_size": int(data.get("frontier_size", 0)),
                    },
                )
            )
            bump("wave.count")
        elif event.type == "requeue":
            suite = str(data.get("suite"))
            wave = int(data.get("wave", 0))
            opened = open_waves.pop((suite, wave), None)
            bump("lease.requeued")
            if opened is None:
                continue
            sequence, started, jobs = opened
            spans.append(
                span_record(
                    sequence,
                    "coordinator.lease",
                    "lease",
                    started,
                    event.timestamp,
                    f"evt-{open_campaign[0]:x}" if open_campaign is not None else None,
                    {
                        "suite": suite,
                        "wave": wave,
                        "jobs": jobs,
                        "worker": data.get("worker"),
                        "lease": data.get("lease"),
                        "outcome": "expired",
                    },
                )
            )
        elif event.type == "result":
            bump("result.count")
            source = data.get("source")
            if isinstance(source, str) and source:
                bump(f"result.source.{source}")
            if data.get("feasible"):
                bump("result.feasible")
        elif event.type == "frontier_update":
            bump("frontier.updates")

    db.insert_spans(spans)
    db.add_counters(counters)
    db.set_meta("imported_from", str(path))
    facts = {
        "events": len(events),
        "spans": len(spans),
        "waves": int(counters.get("wave.count", 0)),
        "results": int(counters.get("result.count", 0)),
    }
    return db, facts


def open_trace(target: Union[str, Path]) -> TraceDB:
    """Resolve a dashboard target into a queryable :class:`TraceDB`.

    Accepts a ``trace.db`` file, a directory containing one (a trace or
    stream directory), or a bare ``events.jsonl`` journal / a directory
    holding only one — journals are imported into an in-memory DB on the
    fly, so the dashboard works against pre-trace campaigns too.
    """
    path = Path(target)
    if path.is_dir():
        db_path = path / TRACE_DB_FILENAME
        if db_path.is_file():
            return TraceDB(db_path, readonly=True)
        events_path = path / EVENTS_FILENAME
        if events_path.is_file():
            db, _ = import_event_log(events_path)
            return db
        raise TraceError(
            f"{path} holds neither {TRACE_DB_FILENAME} nor {EVENTS_FILENAME}"
        )
    if path.is_file():
        if path.suffix == ".db":
            return TraceDB(path, readonly=True)
        db, _ = import_event_log(path)
        return db
    raise TraceError(f"no trace database, directory or event journal at {path}")
