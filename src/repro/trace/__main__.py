"""Dashboard CLI: ``python -m repro.trace``.

Renders a trace database (or a live stream directory) as terminal
dashboards::

    python -m repro.trace summary .repro_trace        # counts, rates, hit rates
    python -m repro.trace tail .repro_trace -n 20     # most recent spans
    python -m repro.trace slow .repro_trace --kind stage
    python -m repro.trace stages .repro_trace         # per-stage p50/p95 table
    python -m repro.trace export .repro_trace --output trace.json

The target may be a ``trace.db`` file, a directory containing one (the
campaign's ``--trace`` directory, which may double as its ``--stream``
directory), or an ``events.jsonl`` journal — journals are backfilled
into an in-memory trace DB on the fly, so pre-trace campaigns get the
same dashboards.  ``summary --json`` emits the machine-readable form the
CI smoke job compares against the campaign report.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.errors import TraceError
from repro.trace.collect import open_trace
from repro.trace.db import TraceDB, duration_summary
from repro.utils.tabulate import format_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Inspect a campaign trace database.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def target(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "target",
            help="trace.db file, directory holding one, or an events.jsonl journal",
        )

    summary = commands.add_parser("summary", help="wave rate, result and hit-rate overview")
    target(summary)
    summary.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    tail = commands.add_parser("tail", help="most recent spans")
    target(tail)
    tail.add_argument("-n", "--count", type=int, default=20, help="spans to show (default 20)")
    tail.add_argument("--kind", default=None, help="only spans of this kind")

    slow = commands.add_parser("slow", help="slowest spans")
    target(slow)
    slow.add_argument("-n", "--count", type=int, default=10, help="spans to show (default 10)")
    slow.add_argument("--kind", default=None, help="only spans of this kind")

    stages = commands.add_parser("stages", help="per-stage duration aggregates (p50/p95)")
    target(stages)

    export = commands.add_parser("export", help="dump spans/counters/annotations as JSON")
    target(export)
    export.add_argument("--output", default=None, help="write here instead of stdout")
    return parser


# ----------------------------------------------------------------------
# Rendering helpers
# ----------------------------------------------------------------------
def _compact_attrs(attrs: Dict[str, object], width: int = 60) -> str:
    text = " ".join(f"{key}={value}" for key, value in sorted(attrs.items()))
    return text if len(text) <= width else text[: width - 1] + "…"

def _hit_rate(hits: float, misses: float) -> str:
    lookups = hits + misses
    if not lookups:
        return "-"
    return f"{int(hits)}h/{int(misses)}m ({100.0 * hits / lookups:.1f}%)"


def _summary_facts(db: TraceDB) -> Dict[str, object]:
    counters = db.counters()
    waves = db.wave_timeline()
    wave_rate = None
    if len(waves) >= 1:
        first_start = min(span["start_ts"] for span in waves)
        last_end = max(span["start_ts"] + span["duration_s"] for span in waves)
        elapsed = last_end - first_start
        if elapsed > 0:
            wave_rate = len(waves) / elapsed
    frontier_sizes = [
        span["attrs"]["frontier_size"]
        for span in waves
        if "frontier_size" in span["attrs"]
    ]
    sources = {
        name.split(".", 2)[2]: int(value)
        for name, value in counters.items()
        if name.startswith("result.source.")
    }
    return {
        "db": str(db.path) if db.path is not None else ":memory:",
        "campaign": db.get_meta("campaign"),
        "spans": db.span_count(),
        "kinds": db.kind_counts(),
        "counters": counters,
        "waves": int(counters.get("wave.count", 0)),
        "wave_spans": len(waves),
        "wave_rate_per_s": wave_rate,
        "results": int(counters.get("result.count", 0)),
        "result_sources": sources,
        "feasible": int(counters.get("result.feasible", 0)),
        "frontier_updates": int(counters.get("frontier.updates", 0)),
        "frontier_sizes": frontier_sizes,
        "eval_store": {
            "hits": int(counters.get("store.eval.hit", 0)),
            "misses": int(counters.get("store.eval.miss", 0)),
            "stores": int(counters.get("store.eval.store", 0)),
        },
        "artifact_store": {
            "hits": int(counters.get("store.artifact.hit", 0)),
            "misses": int(counters.get("store.artifact.miss", 0)),
            "stores": int(counters.get("store.artifact.store", 0)),
        },
    }


def _cmd_summary(db: TraceDB, as_json: bool) -> int:
    facts = _summary_facts(db)
    if as_json:
        print(json.dumps(facts, indent=2, sort_keys=True))
        return 0
    campaign = f" (campaign {facts['campaign']!r})" if facts["campaign"] else ""
    print(f"trace: {facts['db']}{campaign}")
    kinds = "  ".join(f"{kind}: {count}" for kind, count in facts["kinds"].items())
    print(f"spans: {facts['spans']}" + (f"  [{kinds}]" if kinds else ""))
    rate = (
        f"  rate: {facts['wave_rate_per_s']:.2f}/s"
        if facts["wave_rate_per_s"] is not None
        else ""
    )
    sources = " / ".join(
        f"{count} {source}" for source, count in sorted(facts["result_sources"].items())
    )
    print(
        f"waves: {facts['waves']}{rate}  results: {facts['results']}"
        + (f" ({sources})" if sources else "")
        + f"  feasible: {facts['feasible']}"
    )
    sizes: List[int] = facts["frontier_sizes"]
    convergence = f", size {sizes[0]} -> {sizes[-1]}" if sizes else ""
    print(f"frontier: {facts['frontier_updates']} update(s){convergence}")
    evals = facts["eval_store"]
    artifacts = facts["artifact_store"]
    print(
        f"store: evals {_hit_rate(evals['hits'], evals['misses'])}"
        f"  artifacts {_hit_rate(artifacts['hits'], artifacts['misses'])}"
    )
    stage_rows = _stage_rows(db)
    if stage_rows:
        print()
        print(
            format_table(
                stage_rows,
                headers=["stage", "n", "hits", "misses", "total(s)", "p50(ms)", "p95(ms)"],
                float_format=".3f",
                title="stages",
            )
        )
    return 0


def _cmd_tail(db: TraceDB, count: int, kind: Optional[str]) -> int:
    spans = db.spans(kind=kind)
    if not spans:
        print("no spans")
        return 0
    origin = spans[0]["start_ts"]
    rows = [
        [
            f"+{span['start_ts'] - origin:.3f}s",
            span["name"],
            span["kind"],
            span["duration_s"] * 1e3,
            span["status"],
            _compact_attrs(span["attrs"]),
        ]
        for span in spans[-count:]
    ]
    print(
        format_table(
            rows,
            headers=["start", "name", "kind", "ms", "status", "attrs"],
            float_format=".3f",
        )
    )
    return 0


def _cmd_slow(db: TraceDB, count: int, kind: Optional[str]) -> int:
    spans = db.slowest_spans(limit=count, kind=kind)
    if not spans:
        print("no spans")
        return 0
    rows = [
        [
            span["name"],
            span["kind"],
            span["duration_s"] * 1e3,
            span["status"],
            _compact_attrs(span["attrs"]),
        ]
        for span in spans
    ]
    print(
        format_table(
            rows,
            headers=["name", "kind", "ms", "status", "attrs"],
            float_format=".3f",
            title=f"slowest {len(rows)} span(s)" + (f" of kind {kind!r}" if kind else ""),
        )
    )
    return 0


def _stage_rows(db: TraceDB) -> List[List[object]]:
    """Per-stage table rows: aggregates + hit/miss splits from span attrs."""
    samples: Dict[str, List[float]] = {}
    hits: Dict[str, int] = {}
    misses: Dict[str, int] = {}
    for span in db.spans(kind="stage"):
        name = span["name"]
        samples.setdefault(name, []).append(span["duration_s"])
        if span["attrs"].get("hit"):
            hits[name] = hits.get(name, 0) + 1
        else:
            misses[name] = misses.get(name, 0) + 1
    rows: List[List[object]] = []
    for name in sorted(samples):
        stats = duration_summary(samples[name])
        rows.append(
            [
                name,
                stats["count"],
                hits.get(name, 0),
                misses.get(name, 0),
                stats["total"],
                stats["p50"] * 1e3,
                stats["p95"] * 1e3,
            ]
        )
    return rows


def _cmd_stages(db: TraceDB) -> int:
    rows = _stage_rows(db)
    if not rows:
        print("no stage spans")
        return 0
    print(
        format_table(
            rows,
            headers=["stage", "n", "hits", "misses", "total(s)", "p50(ms)", "p95(ms)"],
            float_format=".3f",
        )
    )
    return 0


def _cmd_export(db: TraceDB, output: Optional[str]) -> int:
    document = {
        "campaign": db.get_meta("campaign"),
        "schema_version": db.get_meta("schema_version"),
        "spans": db.spans(),
        "counters": db.counters(),
        "annotations": db.annotations(),
    }
    text = json.dumps(document, indent=2, sort_keys=True)
    if output is None:
        print(text)
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"exported {len(document['spans'])} span(s) to {output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        db = open_trace(args.target)
    except TraceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        if args.command == "summary":
            return _cmd_summary(db, args.json)
        if args.command == "tail":
            return _cmd_tail(db, args.count, args.kind)
        if args.command == "slow":
            return _cmd_slow(db, args.count, args.kind)
        if args.command == "stages":
            return _cmd_stages(db)
        return _cmd_export(db, args.output)
    finally:
        db.close()


if __name__ == "__main__":
    sys.exit(main())
