"""Thread-safe span tracing with a process-safe no-op default.

A :class:`Span` is one timed operation — a mapping-pipeline stage, an
evaluation wave, a store HTTP request — with an id, a parent id, a
monotonic duration, a status and a free-form attribute dict.  A
:class:`Tracer` produces spans as context managers, keeps a per-thread
span stack (so nested spans parent automatically), aggregates named
counters, and buffers everything in memory until a collector drains the
buffer into a :class:`~repro.trace.db.TraceDB`.

The module-level default tracer is a :class:`NullTracer`: every
instrumentation point in the engine, the mapping pipeline and the store
layer calls :func:`get_tracer` unconditionally, and the no-op keeps that
call at a few hundred nanoseconds — untraced runs pay ~zero cost.  The
null tracer carries no state at all, so it is trivially safe across
``fork`` and pickling.

Process model: a real :class:`Tracer` buffers in the process that created
it.  Forked process-pool workers either inherit a copy (whose buffer the
parent never sees) or start with the null default; either way the worker
side builds a *fresh local* tracer, drains it, and ships the finished
span records back through the pool's return value — the parent then
:meth:`Tracer.ingest`\\ s them.  The trace DB is only ever written by the
process that opened it (see :class:`repro.trace.db.TraceDB`).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Span status values.
STATUS_OK = "ok"
STATUS_ERROR = "error"

#: Well-known span kinds (free-form — these are the ones the repo emits).
SPAN_KINDS: Tuple[str, ...] = (
    "campaign",
    "suite",
    "wave",
    "stage",
    "eval",
    "request",
    "lease",
    "span",
)


@dataclass
class TraceBatch:
    """One drain of a tracer: finished spans, counter deltas, annotations."""

    spans: List[dict] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    annotations: List[dict] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.spans or self.counters or self.annotations)


class Span:
    """One timed operation; use as a context manager or via :meth:`end`.

    Spans measure with ``time.perf_counter`` (monotonic) and stamp a
    wall-clock start time for cross-process ordering.  Exiting the
    context manager with an exception sets the status to ``"error"``
    (and re-raises); everything else ends ``"ok"`` unless
    :meth:`end` was given an explicit status.
    """

    __slots__ = (
        "tracer",
        "name",
        "kind",
        "span_id",
        "parent_id",
        "attributes",
        "status",
        "start_ts",
        "duration_s",
        "_t0",
        "_ended",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        kind: str,
        span_id: str,
        parent_id: Optional[str],
        attributes: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.kind = kind
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.status = STATUS_OK
        self.start_ts = time.time()
        self.duration_s = 0.0
        self._t0 = time.perf_counter()
        self._ended = False

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute; chainable."""
        self.attributes[key] = value
        return self

    def end(self, status: Optional[str] = None) -> None:
        """Finish the span (idempotent) and hand its record to the tracer."""
        if self._ended:
            return
        self._ended = True
        self.duration_s = time.perf_counter() - self._t0
        if status is not None:
            self.status = status
        self.tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end(STATUS_ERROR if exc_type is not None else None)


class _NullSpan:
    """The do-nothing span the null tracer hands out (one shared instance)."""

    __slots__ = ()
    span_id = ""
    parent_id = None
    status = STATUS_OK
    attributes: Dict[str, Any] = {}

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def end(self, status: Optional[str] = None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """The process-safe default: every operation is a no-op.

    Stateless by construction — forking, pickling or sharing it between
    threads cannot go wrong, and the per-call cost is one attribute check
    plus a constant return.
    """

    active = False

    def span(self, name: str, kind: str = "span", parent_id: Optional[str] = None, **attributes: Any) -> _NullSpan:
        return NULL_SPAN

    def record_span(
        self,
        name: str,
        kind: str = "span",
        duration_s: float = 0.0,
        status: str = STATUS_OK,
        parent_id: Optional[str] = None,
        **attributes: Any,
    ) -> None:
        pass

    def counter(self, name: str, value: float = 1.0) -> None:
        pass

    def annotate(self, message: str, **attributes: Any) -> None:
        pass

    def ingest(self, records: List[dict]) -> int:
        return 0

    def drain(self) -> TraceBatch:
        return TraceBatch()

    @property
    def current_span_id(self) -> Optional[str]:
        return None

    @property
    def pending(self) -> int:
        return 0


class Tracer:
    """Thread-safe span factory and in-memory buffer.

    Span ids are ``"<pid hex>-<sequence hex>"``: unique within a process,
    and unique across a forked worker fleet because the pid prefix
    diverges at fork (the inherited sequence counter cannot collide).
    """

    active = True

    def __init__(self) -> None:
        self.pid = os.getpid()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._spans: List[dict] = []
        self._counters: Dict[str, float] = {}
        self._annotations: List[dict] = []
        self._stacks = threading.local()
        #: Lifetime totals (never reset by drains).
        self.spans_recorded = 0
        self.counter_increments = 0

    # ------------------------------------------------------------------
    # Span production
    # ------------------------------------------------------------------
    def _stack(self) -> List[str]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def _next_id(self) -> str:
        return f"{self.pid:x}-{next(self._ids):x}"

    @property
    def current_span_id(self) -> Optional[str]:
        stack = self._stack()
        return stack[-1] if stack else None

    def span(
        self, name: str, kind: str = "span", parent_id: Optional[str] = None, **attributes: Any
    ) -> Span:
        """Open a span; parents to the thread's innermost open span."""
        if parent_id is None:
            parent_id = self.current_span_id
        span = Span(self, name, kind, self._next_id(), parent_id, attributes)
        self._stack().append(span.span_id)
        return span

    def record_span(
        self,
        name: str,
        kind: str = "span",
        duration_s: float = 0.0,
        status: str = STATUS_OK,
        parent_id: Optional[str] = None,
        **attributes: Any,
    ) -> None:
        """Record an already-measured span without the context manager."""
        if parent_id is None:
            parent_id = self.current_span_id
        record = {
            "span_id": self._next_id(),
            "parent_id": parent_id,
            "name": name,
            "kind": kind,
            "start_ts": time.time() - duration_s,
            "duration_s": duration_s,
            "status": status,
            "pid": self.pid,
            "thread": threading.current_thread().name,
            "attrs": dict(attributes),
        }
        with self._lock:
            self._spans.append(record)
            self.spans_recorded += 1

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] == span.span_id:
            stack.pop()
        elif span.span_id in stack:  # out-of-order end; drop it anyway
            stack.remove(span.span_id)
        record = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "kind": span.kind,
            "start_ts": span.start_ts,
            "duration_s": span.duration_s,
            "status": span.status,
            "pid": self.pid,
            "thread": threading.current_thread().name,
            "attrs": dict(span.attributes),
        }
        with self._lock:
            self._spans.append(record)
            self.spans_recorded += 1

    # ------------------------------------------------------------------
    # Counters and annotations
    # ------------------------------------------------------------------
    def counter(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the named counter (aggregated until drained)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value
            self.counter_increments += 1

    def annotate(self, message: str, **attributes: Any) -> None:
        """Attach a timestamped note to the current span (or the trace root)."""
        record = {
            "span_id": self.current_span_id,
            "ts": time.time(),
            "message": message,
            "attrs": dict(attributes),
        }
        with self._lock:
            self._annotations.append(record)

    # ------------------------------------------------------------------
    # Buffer management
    # ------------------------------------------------------------------
    def ingest(self, records: List[dict]) -> int:
        """Adopt finished span records produced elsewhere (pool workers)."""
        if not records:
            return 0
        with self._lock:
            self._spans.extend(records)
            self.spans_recorded += len(records)
        return len(records)

    def drain(self) -> TraceBatch:
        """Atomically take everything buffered since the previous drain."""
        with self._lock:
            batch = TraceBatch(self._spans, self._counters, self._annotations)
            self._spans = []
            self._counters = {}
            self._annotations = []
        return batch

    @property
    def pending(self) -> int:
        """Buffered span records awaiting a drain."""
        with self._lock:
            return len(self._spans)


#: The installed tracer every instrumentation point consults.
_TRACER = NullTracer()


def get_tracer():
    """The currently installed tracer (the no-op default unless replaced)."""
    return _TRACER


def set_tracer(tracer) -> object:
    """Install ``tracer`` globally; returns the one it replaced."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous
