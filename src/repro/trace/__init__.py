"""Span-based tracing: thread-safe spans, a SQLite trace DB, a dashboard.

``repro.trace`` is the repo's cross-cutting observability layer.  The
engine, the mapping pipeline and the store layers all call
:func:`get_tracer` at their choke points; with the default
:class:`NullTracer` installed those calls are no-ops, and a traced run
(``CampaignRunner(trace_dir=...)`` / ``python -m repro.engine --trace``)
swaps in a real :class:`Tracer` whose buffer drains into a ``trace.db``
queryable with ``python -m repro.trace summary|tail|slow|stages|export``.

The adapters binding the tracer to the engine's seams live in
:mod:`repro.trace.collect` (imported on demand — it pulls in the engine,
which this package must not do at import time).
"""

from repro.trace.db import (
    SCHEMA_VERSION,
    TRACE_DB_FILENAME,
    TraceDB,
    duration_summary,
    percentile,
)
from repro.trace.spans import (
    NULL_SPAN,
    SPAN_KINDS,
    STATUS_ERROR,
    STATUS_OK,
    NullTracer,
    Span,
    TraceBatch,
    Tracer,
    get_tracer,
    set_tracer,
)

__all__ = [
    "NULL_SPAN",
    "SPAN_KINDS",
    "STATUS_ERROR",
    "STATUS_OK",
    "SCHEMA_VERSION",
    "TRACE_DB_FILENAME",
    "NullTracer",
    "Span",
    "TraceBatch",
    "TraceDB",
    "Tracer",
    "duration_summary",
    "get_tracer",
    "percentile",
    "set_tracer",
]
