"""SQLite trace store: spans, counters and annotations, queryable.

One ``trace.db`` file holds everything a traced campaign emitted.  The
database is opened in WAL mode (readers — the dashboard CLI — never block
the single writer), inserts are batched into one transaction per flush,
and the query helpers answer the dashboard's questions directly: slowest
spans, per-name aggregates with p50/p95, wave timelines, counter totals.

Write ownership is per process: the :class:`TraceDB` remembers the pid
that opened it and refuses writes from any other (a forked worker that
inherited the handle must ship its spans through the parent instead —
see :mod:`repro.trace.spans`).  SQLite connections are not fork-safe,
and two processes appending to one WAL file is exactly the torn-row
hazard this guard exists to make impossible.
"""

from __future__ import annotations

import json
import math
import os
import sqlite3
import threading
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import TraceError

#: Default trace database file name inside a trace/stream directory.
TRACE_DB_FILENAME = "trace.db"

#: Schema version stamped into the ``meta`` table.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS spans (
    span_id    TEXT PRIMARY KEY,
    parent_id  TEXT,
    name       TEXT NOT NULL,
    kind       TEXT NOT NULL,
    start_ts   REAL NOT NULL,
    duration_s REAL NOT NULL,
    status     TEXT NOT NULL,
    pid        INTEGER,
    thread     TEXT,
    attrs      TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS spans_by_kind ON spans (kind, duration_s);
CREATE INDEX IF NOT EXISTS spans_by_name ON spans (name);
CREATE TABLE IF NOT EXISTS counters (
    name  TEXT PRIMARY KEY,
    value REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS annotations (
    span_id TEXT,
    ts      REAL NOT NULL,
    message TEXT NOT NULL,
    attrs   TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``values`` by linear interpolation.

    The single percentile convention of the repo: the mapping pipeline's
    per-stage p50/p95 and the trace DB's aggregates go through this exact
    function, so the campaign report and ``python -m repro.trace stages``
    can never disagree on the same data.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return float(ordered[lower])
    weight = position - lower
    return float(ordered[lower] * (1.0 - weight) + ordered[upper] * weight)


def duration_summary(durations: Sequence[float]) -> Dict[str, float]:
    """count/total/mean/p50/p95/max of a duration sample (seconds)."""
    if not durations:
        return {"count": 0, "total": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    total = float(sum(durations))
    return {
        "count": len(durations),
        "total": total,
        "mean": total / len(durations),
        "p50": percentile(durations, 0.50),
        "p95": percentile(durations, 0.95),
        "max": float(max(durations)),
    }


class TraceDB:
    """One SQLite trace database (spans/counters/annotations).

    Parameters
    ----------
    path:
        Database file, or ``":memory:"`` for an in-process scratch DB
        (the CLI uses that to query a backfilled event log without
        leaving files behind).
    readonly:
        Open for queries only; writes raise :class:`~repro.errors.TraceError`.
        The file must already exist.
    """

    def __init__(self, path: Union[str, Path] = ":memory:", readonly: bool = False) -> None:
        self.path = None if str(path) == ":memory:" else Path(path)
        self.readonly = readonly
        self._pid = os.getpid()
        self._lock = threading.Lock()
        if self.path is not None:
            if readonly and not self.path.is_file():
                raise TraceError(f"no trace database at {self.path}")
            self.path.parent.mkdir(parents=True, exist_ok=True)
        # One connection, shared across threads behind the lock: the
        # writer is the collector's flush path, readers are query helpers.
        self._connection = sqlite3.connect(str(path), check_same_thread=False)
        self._connection.row_factory = sqlite3.Row
        if not readonly:
            if self.path is not None:
                # WAL lets the dashboard CLI read while a campaign writes.
                self._connection.execute("PRAGMA journal_mode=WAL")
                self._connection.execute("PRAGMA synchronous=NORMAL")
            self._connection.executescript(_SCHEMA)
            self.set_meta("schema_version", str(SCHEMA_VERSION))
            self._connection.commit()

    # ------------------------------------------------------------------
    # Write guards
    # ------------------------------------------------------------------
    def _writable(self) -> None:
        if self.readonly:
            raise TraceError(f"trace database {self.path} is open read-only")
        if os.getpid() != self._pid:
            raise TraceError(
                "trace databases are single-writer: this handle belongs to "
                f"pid {self._pid}, not {os.getpid()} — forked workers must "
                "ship spans through the parent (Tracer.ingest), not write"
            )

    # ------------------------------------------------------------------
    # Batched inserts
    # ------------------------------------------------------------------
    def insert_spans(self, records: Sequence[Mapping[str, Any]]) -> int:
        """Insert finished span records in one transaction."""
        if not records:
            return 0
        self._writable()
        rows = [
            (
                record["span_id"],
                record.get("parent_id"),
                record["name"],
                record.get("kind", "span"),
                float(record.get("start_ts", 0.0)),
                float(record.get("duration_s", 0.0)),
                record.get("status", "ok"),
                record.get("pid"),
                record.get("thread"),
                json.dumps(record.get("attrs", {}), sort_keys=True),
            )
            for record in records
        ]
        with self._lock, self._connection:
            self._connection.executemany(
                "INSERT OR REPLACE INTO spans VALUES (?,?,?,?,?,?,?,?,?,?)", rows
            )
        return len(rows)

    def add_counters(self, deltas: Mapping[str, float]) -> None:
        """Fold counter deltas into their running totals (upsert)."""
        if not deltas:
            return
        self._writable()
        with self._lock, self._connection:
            self._connection.executemany(
                "INSERT INTO counters (name, value) VALUES (?, ?) "
                "ON CONFLICT(name) DO UPDATE SET value = value + excluded.value",
                [(name, float(value)) for name, value in deltas.items()],
            )

    def insert_annotations(self, records: Sequence[Mapping[str, Any]]) -> int:
        if not records:
            return 0
        self._writable()
        rows = [
            (
                record.get("span_id"),
                float(record.get("ts", 0.0)),
                record["message"],
                json.dumps(record.get("attrs", {}), sort_keys=True),
            )
            for record in records
        ]
        with self._lock, self._connection:
            self._connection.executemany("INSERT INTO annotations VALUES (?,?,?,?)", rows)
        return len(rows)

    def set_meta(self, key: str, value: str) -> None:
        self._writable()
        with self._lock:
            self._connection.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)", (key, value)
            )

    def get_meta(self, key: str) -> Optional[str]:
        row = self._query("SELECT value FROM meta WHERE key = ?", (key,))
        return row[0]["value"] if row else None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _query(self, sql: str, parameters: Tuple = ()) -> List[sqlite3.Row]:
        with self._lock:
            return self._connection.execute(sql, parameters).fetchall()

    @staticmethod
    def _span_row(row: sqlite3.Row) -> dict:
        record = dict(row)
        record["attrs"] = json.loads(record.pop("attrs") or "{}")
        return record

    def span_count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return int(self._query("SELECT COUNT(*) AS n FROM spans")[0]["n"])
        return int(
            self._query("SELECT COUNT(*) AS n FROM spans WHERE kind = ?", (kind,))[0]["n"]
        )

    def kind_counts(self) -> Dict[str, int]:
        """Span counts per kind (the summary dashboard's top table)."""
        return {
            row["kind"]: int(row["n"])
            for row in self._query(
                "SELECT kind, COUNT(*) AS n FROM spans GROUP BY kind ORDER BY kind"
            )
        }

    def spans(self, kind: Optional[str] = None, limit: Optional[int] = None) -> List[dict]:
        """Spans in start order, optionally filtered by kind."""
        sql = "SELECT * FROM spans"
        parameters: Tuple = ()
        if kind is not None:
            sql += " WHERE kind = ?"
            parameters = (kind,)
        sql += " ORDER BY start_ts"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return [self._span_row(row) for row in self._query(sql, parameters)]

    def slowest_spans(self, limit: int = 10, kind: Optional[str] = None) -> List[dict]:
        """The ``limit`` slowest spans, optionally restricted to one kind."""
        sql = "SELECT * FROM spans"
        parameters: Tuple = ()
        if kind is not None:
            sql += " WHERE kind = ?"
            parameters = (kind,)
        sql += f" ORDER BY duration_s DESC LIMIT {int(limit)}"
        return [self._span_row(row) for row in self._query(sql, parameters)]

    def aggregates(self, kind: Optional[str] = None) -> Dict[str, Dict[str, float]]:
        """Per-span-name duration summaries (count, total, mean, p50, p95, max).

        Percentiles are computed in Python over the fetched durations —
        SQLite has no percentile function, and the samples per name are
        small (one per stage execution / wave / request).
        """
        sql = "SELECT name, duration_s FROM spans"
        parameters: Tuple = ()
        if kind is not None:
            sql += " WHERE kind = ?"
            parameters = (kind,)
        samples: Dict[str, List[float]] = {}
        for row in self._query(sql, parameters):
            samples.setdefault(row["name"], []).append(float(row["duration_s"]))
        return {name: duration_summary(values) for name, values in sorted(samples.items())}

    def wave_timeline(self, suite: Optional[str] = None) -> List[dict]:
        """Wave spans in start order (the dashboard's rate/convergence input)."""
        waves = self.spans(kind="wave")
        if suite is not None:
            waves = [span for span in waves if span["attrs"].get("suite") == suite]
        return waves

    def counters(self) -> Dict[str, float]:
        return {
            row["name"]: float(row["value"])
            for row in self._query("SELECT name, value FROM counters ORDER BY name")
        }

    def counter(self, name: str) -> float:
        row = self._query("SELECT value FROM counters WHERE name = ?", (name,))
        return float(row[0]["value"]) if row else 0.0

    def annotations(self, span_id: Optional[str] = None) -> List[dict]:
        sql = "SELECT * FROM annotations"
        parameters: Tuple = ()
        if span_id is not None:
            sql += " WHERE span_id = ?"
            parameters = (span_id,)
        sql += " ORDER BY ts"
        return [
            {**dict(row), "attrs": json.loads(row["attrs"] or "{}")}
            for row in self._query(sql, parameters)
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush_wal(self) -> None:
        """Checkpoint the WAL into the main database file (best effort)."""
        if self.path is None or self.readonly:
            return
        with self._lock:
            self._connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "TraceDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
