"""The storage protocol, its snapshot types and the in-memory backend.

A backend is a namespaced key/value store with content-hash keys.  The
protocol is deliberately small — ``get``/``put``/``delete``/``scan``/
``stats``/``compact`` — so the evaluation cache, the artifact store and
future remote backends can all sit behind it.  Because keys are content
hashes, values are immutable: a ``put`` under an existing key stores the
same value again, which is why duplicate records are "superseded" rather
than conflicting and why compaction may drop all but one of them.

Value domains differ per backend and are part of each backend's contract:
:class:`MemoryBackend` stores arbitrary objects,
:class:`~repro.store.jsonl.ShardedJsonlBackend` stores flat JSON-object
records, :class:`~repro.store.pickledir.PickleDirBackend` stores arbitrary
picklables.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Protocol, Sequence, Tuple


def shard_index(key: str, num_shards: int) -> int:
    """Stable shard of ``key`` in ``[0, num_shards)``.

    Derived from SHA-256 of the key text — not Python's seeded ``hash`` —
    so the assignment survives interpreter restarts and is identical in
    every process sharing a store directory.
    """
    if num_shards <= 1:
        return 0
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % num_shards


@dataclass(frozen=True)
class StoreEntry:
    """One entry surfaced by :meth:`StoreBackend.scan` (metadata only)."""

    namespace: str
    key: str
    shard: int = 0
    size_bytes: int = 0
    #: Seconds since the entry was last written or read (GC input).
    age_seconds: float = 0.0


@dataclass
class CompactionReport:
    """Outcome of one :meth:`StoreBackend.compact` pass."""

    shards_rewritten: int = 0
    entries_kept: int = 0
    dropped_duplicates: int = 0
    dropped_corrupt: int = 0
    migrated_legacy: int = 0
    reclaimed_bytes: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_duplicates + self.dropped_corrupt


@dataclass
class StoreStats:
    """Point-in-time snapshot of one backend, for reports and the CLI."""

    backend: str
    shards: int
    entries: int
    disk_files: int = 0
    disk_bytes: int = 0
    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    evicted: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served by the backend (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class StoreBackend(Protocol):
    """What every storage backend provides.

    ``get`` returns ``(hit, value)`` so ``None`` stays a storable value;
    ``scan`` yields metadata (not values) cheaply enough for a GC sweep;
    ``compact`` rewrites the physical layout without changing the logical
    contents and reports what it dropped.

    ``get_many``/``put_many`` are the batch face of the protocol — the hot
    path of the HTTP store service, where one batch call is one round
    trip.  The defaults below fall back to per-key loops, so every backend
    supports them; backends with a cheaper bulk plan (one lock per shard,
    one request per wave) override them.  The concrete backends inherit
    these defaults by explicitly subclassing the protocol.
    """

    name: str

    def contains(self, namespace: str, key: str) -> bool: ...

    def get(self, namespace: str, key: str) -> Tuple[bool, Any]: ...

    def put(self, namespace: str, key: str, value: Any) -> None: ...

    def delete(self, namespace: str, key: str) -> bool: ...

    def scan(self, namespace: Optional[str] = None) -> Iterator[StoreEntry]: ...

    def stats(self) -> StoreStats: ...

    def compact(self) -> CompactionReport: ...

    def get_many(self, namespace: str, keys: Sequence[str]) -> Dict[str, Any]:
        """Batch lookup: ``key -> value`` for every hit (misses absent)."""
        found: Dict[str, Any] = {}
        for key in keys:
            hit, value = self.get(namespace, key)
            if hit:
                found[key] = value
        return found

    def put_many(self, namespace: str, records: Mapping[str, Any]) -> int:
        """Batch store; returns how many records the backend accepted."""
        for key, value in records.items():
            self.put(namespace, key, value)
        return len(records)

    def prefetch(self, namespace: str, keys: Sequence[str]) -> Dict[str, Any]:
        """Advisory batch warm-up ahead of per-key reads.

        Semantically :meth:`get_many`, but callers promise they will read
        the same keys again shortly — backends with a fast front
        (:class:`~repro.store.tiered.TieredBackend`) pull the values in
        *without* charging front hit/miss counters, so a background
        prefetch never skews the campaign's cache accounting.  The engine
        issues one prefetch per upcoming wave from the async prefetcher
        thread, overlapping the round trip with the current wave's
        compute.
        """
        return self.get_many(namespace, keys)


@dataclass
class _Counters:
    """Mutable operation counters shared by the concrete backends."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    evicted: int = 0


class MemoryBackend(StoreBackend):
    """A process-local dictionary behind the store protocol.

    Parameters
    ----------
    clock:
        Time source for access tracking; injectable so GC tests control
        entry ages deterministically.
    """

    name = "memory"

    def __init__(self, clock: Callable[[], float] = time.time) -> None:
        self._clock = clock
        self._data: Dict[Tuple[str, str], Any] = {}
        self._access: Dict[Tuple[str, str], float] = {}
        self.counters = _Counters()

    def __len__(self) -> int:
        return len(self._data)

    def contains(self, namespace: str, key: str) -> bool:
        """Availability check that counts neither a hit nor a miss."""
        return (namespace, key) in self._data

    def get(self, namespace: str, key: str) -> Tuple[bool, Any]:
        entry = (namespace, key)
        if entry in self._data:
            self._access[entry] = self._clock()
            self.counters.hits += 1
            return True, self._data[entry]
        self.counters.misses += 1
        return False, None

    def put(self, namespace: str, key: str, value: Any) -> None:
        entry = (namespace, key)
        self._data[entry] = value
        self._access[entry] = self._clock()
        self.counters.stores += 1

    def put_many(self, namespace: str, records) -> int:
        """Batch store that skips existing keys (content-hash semantics)."""
        stored = 0
        for key, value in records.items():
            if (namespace, key) in self._data:
                continue
            self.put(namespace, key, value)
            stored += 1
        return stored

    def delete(self, namespace: str, key: str) -> bool:
        entry = (namespace, key)
        if entry not in self._data:
            return False
        del self._data[entry]
        self._access.pop(entry, None)
        self.counters.evicted += 1
        return True

    def scan(self, namespace: Optional[str] = None) -> Iterator[StoreEntry]:
        now = self._clock()
        for (entry_namespace, key), accessed in list(self._access.items()):
            if namespace is not None and entry_namespace != namespace:
                continue
            yield StoreEntry(
                namespace=entry_namespace,
                key=key,
                shard=0,
                age_seconds=max(0.0, now - accessed),
            )

    def stats(self) -> StoreStats:
        return StoreStats(
            backend=self.name,
            shards=1,
            entries=len(self._data),
            hits=self.counters.hits,
            misses=self.counters.misses,
            stores=self.counters.stores,
            corrupt=self.counters.corrupt,
            evicted=self.counters.evicted,
        )

    def compact(self) -> CompactionReport:
        """Nothing to rewrite in memory; reported as an empty pass."""
        return CompactionReport(entries_kept=len(self._data))
