"""HTTP client backend: the store protocol over a remote store service.

``RemoteBackend`` speaks to a :class:`repro.service.server.StoreServer`
and implements the full :class:`~repro.store.backend.StoreBackend`
protocol, so an :class:`~repro.engine.cache.EvaluationCache` or
:class:`~repro.engine.artifacts.ArtifactStore` pointed at one URL shares
a warm store with every other worker in a fleet.

Transport
---------
Plain stdlib ``http.client`` with one persistent keep-alive connection
*per thread* (``urllib.request`` opens a fresh socket per call, which is
exactly the overhead the batch endpoints exist to avoid).  Transient
transport failures are retried with exponential backoff; a stale
keep-alive socket (the server restarted) is transparently reopened.

Degraded mode
-------------
A fleet worker must not die with its store service.  After the retry
budget of a request is exhausted the backend goes *offline* for
``offline_grace`` seconds: reads miss, writes are dropped (and counted
in :attr:`RemoteBackend.dropped_puts`), scans are empty — the campaign
keeps running on recomputation, exactly as with a cold local cache.  The
first request after the grace window probes the server again and a
success restores normal service.  Construct with ``strict=True`` to get
:class:`StoreServiceError` instead of degradation (useful in tests and
one-off scripts where silence would hide a typo'd URL).
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple
from urllib.parse import quote, urlsplit

from repro.store.backend import (
    CompactionReport,
    StoreBackend,
    StoreEntry,
    StoreStats,
    _Counters,
)
from repro.store.janitor import JanitorReport
from repro.store.wire import (
    WireError,
    decode_body,
    decode_cell,
    encode_cell,
    encode_value,
)
from repro.trace.spans import STATUS_ERROR, STATUS_OK, get_tracer

#: Transport-level failures that trigger a retry (and eventually the
#: degraded mode).  HTTP error *statuses* are not in this set — a 404 is
#: an answer, not an outage.
_TRANSPORT_ERRORS = (
    ConnectionError,
    socket.timeout,
    TimeoutError,
    http.client.HTTPException,
    OSError,
)


class StoreServiceError(RuntimeError):
    """The store service is unreachable or answered outside the contract."""


class _NoDelayHTTPConnection(http.client.HTTPConnection):
    """An HTTPConnection with Nagle disabled.

    ``http.client`` sends headers and body in separate ``send`` calls;
    with Nagle on, the body segment can sit behind the peer's delayed ACK
    for tens of milliseconds — fatal for the batch endpoints whose whole
    point is one fast round trip per wave.
    """

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


def _quote(component: str) -> str:
    """Path-segment quoting: empty namespaces and odd characters survive."""
    return quote(component, safe="")


def _endpoint_of(path: str) -> str:
    """Coarse endpoint label of a request path (for trace spans).

    Keys and namespaces are stripped so all item traffic aggregates under
    one name instead of one span-name per key.
    """
    path = path.split("?", 1)[0]
    if "/k/" in path:
        return "item"
    for endpoint in ("mget", "mput", "scan", "janitor", "healthz", "stats"):
        if path.endswith("/" + endpoint) or path == "/" + endpoint:
            return endpoint
    return "other"


class RemoteBackend(StoreBackend):
    """The store protocol over HTTP.

    Parameters
    ----------
    url:
        Service base URL, e.g. ``http://127.0.0.1:8731`` (an optional path
        prefix is honoured).
    timeout:
        Socket timeout per request, seconds.
    retries:
        Transport retries per request beyond the first attempt.
    backoff:
        Initial retry delay, doubled per attempt.
    offline_grace:
        How long the backend stays offline after a request exhausts its
        retries; ``strict=True`` disables degradation entirely.
    sleep / clock:
        Injectable for deterministic retry/degradation tests.  ``clock``
        must be monotonic.
    """

    name = "remote"

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 10.0,
        retries: int = 3,
        backoff: float = 0.05,
        offline_grace: float = 5.0,
        strict: bool = False,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        parts = urlsplit(url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(f"store service URLs must be http://host[:port][/prefix], got {url!r}")
        self.url = url
        self._host = parts.hostname
        self._port = parts.port or 80
        self._prefix = parts.path.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.offline_grace = offline_grace
        self.strict = strict
        self._sleep = sleep
        self._clock = clock
        self._local = threading.local()
        self._connections: List[http.client.HTTPConnection] = []
        self._connections_lock = threading.Lock()
        # Degraded-mode state is shared across every request thread; the
        # lock keeps a burst of concurrent failures from double-counting
        # offline_trips or tearing the grace window (one thread extending
        # it while another clears it).
        self._state_lock = threading.Lock()
        self._offline_until: Optional[float] = None
        self.counters = _Counters()
        #: Completed HTTP requests (any status), transport retries taken,
        #: and puts dropped while offline.
        self.requests = 0
        self.transport_retries = 0
        self.dropped_puts = 0
        self.offline_trips = 0

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = _NoDelayHTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
            self._local.connection = connection
            with self._connections_lock:
                self._connections.append(connection)
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            try:
                connection.close()
            except Exception:
                pass
            with self._connections_lock:
                if connection in self._connections:
                    self._connections.remove(connection)
            self._local.connection = None

    @property
    def offline(self) -> bool:
        """Whether the backend is currently in the degraded window."""
        with self._state_lock:
            return self._offline_until is not None and self._clock() < self._offline_until

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        content_type: Optional[str] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One request with keep-alive, retry/backoff and offline tracking.

        Returns ``(status, lowercase headers, body)``; raises
        :class:`StoreServiceError` when the transport is down (after
        marking the offline window unless ``strict``).
        """
        if self.offline:
            raise StoreServiceError(f"store service {self.url} is offline (degraded mode)")
        tracer = get_tracer()
        started = time.perf_counter() if tracer.active else 0.0
        headers = {"Connection": "keep-alive"}
        if content_type is not None:
            headers["Content-Type"] = content_type
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            connection = self._connection()
            try:
                connection.request(method, self._prefix + path, body=body, headers=headers)
                response = connection.getresponse()
                payload = response.read()
            except _TRANSPORT_ERRORS as error:
                last_error = error
                self._drop_connection()
                if attempt < self.retries:
                    self.transport_retries += 1
                    self._sleep(self.backoff * (2**attempt))
                continue
            self.requests += 1
            with self._state_lock:
                self._offline_until = None
            response_headers = {name.lower(): value for name, value in response.getheaders()}
            if tracer.active:
                tracer.record_span(
                    "store.request",
                    kind="request",
                    duration_s=time.perf_counter() - started,
                    status=STATUS_ERROR if response.status >= 500 else STATUS_OK,
                    method=method,
                    endpoint=_endpoint_of(path),
                    http_status=response.status,
                    attempts=attempt + 1,
                )
            return response.status, response_headers, payload
        if tracer.active:
            tracer.record_span(
                "store.request",
                kind="request",
                duration_s=time.perf_counter() - started,
                status=STATUS_ERROR,
                method=method,
                endpoint=_endpoint_of(path),
                attempts=self.retries + 1,
                error=type(last_error).__name__ if last_error is not None else None,
            )
        if not self.strict:
            with self._state_lock:
                # One *trip* per outage, not per failing thread: only the
                # request that finds no active window opens one.  Requests
                # failing concurrently (or inside the window — strict=False
                # callers that raced past the offline check) just ride the
                # window that is already open.
                now = self._clock()
                if self._offline_until is None or now >= self._offline_until:
                    self._offline_until = now + self.offline_grace
                    self.offline_trips += 1
        raise StoreServiceError(
            f"store service {self.url} unreachable after {self.retries + 1} attempts: {last_error}"
        ) from last_error

    def _item_path(self, namespace: str, key: str) -> str:
        return f"/ns/{_quote(namespace)}/k/{_quote(key)}"

    def close(self) -> None:
        """Close every keep-alive connection this backend opened."""
        with self._connections_lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            try:
                connection.close()
            except Exception:
                pass

    def __enter__(self) -> "RemoteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Protocol: get / put / delete / scan / stats / compact
    # ------------------------------------------------------------------
    def contains(self, namespace: str, key: str) -> bool:
        """Availability check (HEAD) that counts neither a hit nor a miss."""
        try:
            status, _, _ = self._request("HEAD", self._item_path(namespace, key))
        except StoreServiceError:
            if self.strict:
                raise
            return False
        return status == 200

    def get(self, namespace: str, key: str) -> Tuple[bool, Any]:
        try:
            status, headers, body = self._request("GET", self._item_path(namespace, key))
        except StoreServiceError:
            if self.strict:
                raise
            self.counters.misses += 1
            return False, None
        if status == 200:
            try:
                value = decode_body(
                    headers.get("content-type", ""), body, unpickle=True
                )
            except WireError:
                self.counters.corrupt += 1
                self.counters.misses += 1
                return False, None
            self.counters.hits += 1
            return True, value
        self.counters.misses += 1
        return False, None

    def put(self, namespace: str, key: str, value: Any) -> None:
        content_type, body = encode_value(value)
        try:
            status, _, payload = self._request(
                "PUT", self._item_path(namespace, key), body=body, content_type=content_type
            )
            if status >= 400:
                raise StoreServiceError(
                    f"store service rejected PUT {namespace}/{key[:16]}: "
                    f"{status} {payload[:200]!r}"
                )
        except StoreServiceError:
            # A rejection (e.g. a binary artifact offered to a
            # records-only server) degrades like an outage: the value is
            # a recomputable, the campaign must not die for it.
            if self.strict:
                raise
            self.dropped_puts += 1
            return
        self.counters.stores += 1

    def delete(self, namespace: str, key: str) -> bool:
        try:
            status, _, _ = self._request("DELETE", self._item_path(namespace, key))
        except StoreServiceError:
            if self.strict:
                raise
            return False
        if status == 200 or status == 204:
            self.counters.evicted += 1
            return True
        return False

    def get_many(self, namespace: str, keys: Sequence[str]) -> Dict[str, Any]:
        """The read hot path: one ``mget`` round trip per campaign wave."""
        if not keys:
            return {}
        request_body = json.dumps({"keys": list(keys)}).encode("utf-8")
        try:
            status, _, body = self._request(
                "POST",
                f"/ns/{_quote(namespace)}/mget",
                body=request_body,
                content_type="application/json",
            )
            if status != 200:
                raise StoreServiceError(f"mget failed: {status} {body[:200]!r}")
        except StoreServiceError:
            if self.strict:
                raise
            self.counters.misses += len(keys)
            return {}
        envelope = json.loads(body.decode("utf-8"))
        found: Dict[str, Any] = {}
        for key, cell in envelope.get("hits", {}).items():
            try:
                found[key] = decode_cell(cell, unpickle=True)
                self.counters.hits += 1
            except WireError:
                self.counters.corrupt += 1
                self.counters.misses += 1
        self.counters.misses += sum(1 for key in keys if key not in envelope.get("hits", {}))
        return found

    def put_many(self, namespace: str, records: Mapping[str, Any]) -> int:
        """The write hot path: one ``mput`` round trip per campaign wave."""
        if not records:
            return 0
        envelope = {"records": {key: encode_cell(value) for key, value in records.items()}}
        request_body = json.dumps(envelope).encode("utf-8")
        try:
            status, _, body = self._request(
                "POST",
                f"/ns/{_quote(namespace)}/mput",
                body=request_body,
                content_type="application/json",
            )
            if status != 200:
                raise StoreServiceError(f"mput failed: {status} {body[:200]!r}")
        except StoreServiceError:
            if self.strict:
                raise
            self.dropped_puts += len(records)
            return 0
        stored = int(json.loads(body.decode("utf-8")).get("stored", 0))
        self.counters.stores += stored
        return stored

    def scan(self, namespace: Optional[str] = None) -> Iterator[StoreEntry]:
        path = "/scan" if namespace is None else f"/scan?ns={_quote(namespace)}"
        try:
            status, _, body = self._request("GET", path)
            if status != 200:
                raise StoreServiceError(f"scan failed: {status} {body[:200]!r}")
        except StoreServiceError:
            if self.strict:
                raise
            return
        for entry in json.loads(body.decode("utf-8")).get("entries", []):
            yield StoreEntry(
                namespace=entry["namespace"],
                key=entry["key"],
                shard=int(entry.get("shard", 0)),
                size_bytes=int(entry.get("size_bytes", 0)),
                age_seconds=float(entry.get("age_seconds", 0.0)),
            )

    def server_stats(self) -> Optional[dict]:
        """The raw ``/stats`` document, or ``None`` while offline."""
        try:
            status, _, body = self._request("GET", "/stats")
            if status != 200:
                raise StoreServiceError(f"stats failed: {status} {body[:200]!r}")
        except StoreServiceError:
            if self.strict:
                raise
            return None
        return json.loads(body.decode("utf-8"))

    def stats(self) -> StoreStats:
        """Server entry/disk totals fused with this client's own counters."""
        document = self.server_stats()
        server = (document or {}).get("backend", {})
        return StoreStats(
            backend=self.name,
            shards=int(server.get("shards", 1)),
            entries=int(server.get("entries", 0)),
            disk_files=int(server.get("disk_files", 0)),
            disk_bytes=int(server.get("disk_bytes", 0)),
            hits=self.counters.hits,
            misses=self.counters.misses,
            stores=self.counters.stores,
            corrupt=self.counters.corrupt,
            evicted=self.counters.evicted,
        )

    def __len__(self) -> int:
        return self.stats().entries

    def compact(self) -> CompactionReport:
        return self.sweep_remote(None, compact=True).compaction

    def sweep_remote(
        self, max_age_seconds: Optional[float] = None, compact: bool = True
    ) -> JanitorReport:
        """One server-side janitor pass (GC + compaction) in one request.

        :class:`~repro.store.janitor.StoreJanitor` delegates here, so the
        engine's post-campaign janitor costs one round trip instead of a
        scan-and-delete conversation.
        """
        request_body = json.dumps(
            {"max_age": max_age_seconds, "compact": compact}
        ).encode("utf-8")
        try:
            status, _, body = self._request(
                "POST", "/janitor", body=request_body, content_type="application/json"
            )
            if status != 200:
                raise StoreServiceError(f"janitor failed: {status} {body[:200]!r}")
        except StoreServiceError:
            if self.strict:
                raise
            return JanitorReport()
        document = json.loads(body.decode("utf-8"))
        return JanitorReport(
            scanned=int(document.get("scanned", 0)),
            evicted=int(document.get("evicted", 0)),
            evicted_bytes=int(document.get("evicted_bytes", 0)),
            compaction=CompactionReport(**document.get("compaction", {})),
        )

    @property
    def dropped_writes(self) -> int:
        """Writes this client dropped in degraded mode (puts and mput records).

        These values never reached the server: campaigns that ran through
        an outage report them so an operator knows the shared store is
        *missing* results that look locally complete.
        """
        return self.dropped_puts

    def remote_stats(self) -> Dict[str, object]:
        """Client-side transport counters for reports and the CLI."""
        return {
            "url": self.url,
            "requests": self.requests,
            "transport_retries": self.transport_retries,
            "dropped_puts": self.dropped_puts,
            "offline_trips": self.offline_trips,
            "offline": self.offline,
        }
