"""Unified content-addressed storage layer.

One abstraction — :class:`~repro.store.backend.StoreBackend` — behind both
persistence paths of the engine: the evaluation cache
(:mod:`repro.engine.cache`, numbers as JSON-lines records) and the mapping
artifact store (:mod:`repro.engine.artifacts`, structures as pickles).
Three backends implement it:

``MemoryBackend``
    A plain in-process dictionary: tests, one-shot runs, and the in-memory
    front of the persistent stores.

``ShardedJsonlBackend``
    N append-only JSON-lines shard files selected by a stable key hash.
    Appends are single ``O_APPEND`` writes under an advisory ``fcntl``
    lock, so any number of processes can share one cache directory.  The
    pre-shard single-file layout is read transparently as shard 0.

``PickleDirBackend``
    Pickle-per-entry directories (the artifact layout), with sharded
    subdirectories, write-then-rename stores under advisory locks, and the
    pre-shard flat layout read transparently as shard 0.

Two composable backends extend the reach of the local three:

``RemoteBackend``
    The store protocol over HTTP against a ``repro.service`` store
    server — keep-alive connections, batch ``mget``/``mput``,
    retry/backoff and an offline-tolerant degraded mode.

``TieredBackend``
    A read-through :class:`MemoryBackend` front with write-behind
    batching over any backend (typically a remote one).

On top, :class:`~repro.store.janitor.StoreJanitor` provides age-based GC
and shard compaction, and every backend can snapshot itself as a
:class:`~repro.store.backend.StoreStats` for reports.
"""

from repro.store.backend import (
    CompactionReport,
    MemoryBackend,
    StoreBackend,
    StoreEntry,
    StoreStats,
    shard_index,
)
from repro.store.janitor import JanitorReport, StoreJanitor
from repro.store.jsonl import ShardedJsonlBackend
from repro.store.locks import locked
from repro.store.pickledir import PickleDirBackend
from repro.store.remote import RemoteBackend, StoreServiceError
from repro.store.tiered import TieredBackend

__all__ = [
    "CompactionReport",
    "JanitorReport",
    "MemoryBackend",
    "PickleDirBackend",
    "RemoteBackend",
    "ShardedJsonlBackend",
    "StoreBackend",
    "StoreEntry",
    "StoreJanitor",
    "StoreServiceError",
    "StoreStats",
    "TieredBackend",
    "locked",
    "shard_index",
]
