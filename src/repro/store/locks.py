"""Advisory file locking for multi-process store access.

POSIX ``fcntl.flock`` locks guard every mutation of a shared store
directory: shard appends, write-then-rename stores and whole-shard
compaction rewrites.  Locks are taken on a dedicated ``*.lock`` sibling of
the data path — never on the data file itself — so compaction can atomically
``os.replace`` the data file while the lock identity stays stable.

On platforms without ``fcntl`` (Windows) the lock degrades to a no-op;
single-process use remains correct there and multi-process sharing is a
documented POSIX-only feature.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path
from typing import Iterator, Union

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

#: Suffix appended to a data path to form its lock-file path.
LOCK_SUFFIX = ".lock"


def lock_path_for(data_path: Union[str, Path]) -> Path:
    """The lock file guarding ``data_path`` (a sibling, never the file itself)."""
    data_path = Path(data_path)
    return data_path.with_name(data_path.name + LOCK_SUFFIX)


@contextlib.contextmanager
def locked_all(data_paths) -> Iterator[None]:
    """Hold the locks of many data paths at once.

    Callers must pass a consistently ordered sequence (sort it) so two
    multi-lock holders cannot deadlock each other; single-lock holders
    can never participate in a cycle.
    """
    with contextlib.ExitStack() as stack:
        for data_path in data_paths:
            stack.enter_context(locked(data_path))
        yield


@contextlib.contextmanager
def locked(data_path: Union[str, Path], shared: bool = False) -> Iterator[None]:
    """Hold an advisory lock guarding ``data_path`` for the ``with`` body.

    The lock file is created on demand and left in place (removing it
    would race with other lockers).  ``shared=True`` takes a read lock;
    the default is exclusive.
    """
    if fcntl is None:  # pragma: no cover - POSIX everywhere we run
        yield
        return
    path = lock_path_for(data_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        fcntl.flock(descriptor, fcntl.LOCK_SH if shared else fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(descriptor, fcntl.LOCK_UN)
    finally:
        os.close(descriptor)
