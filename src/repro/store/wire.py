"""Wire encoding shared by the store service and its remote client.

The store protocol's value domain is heterogeneous: evaluation records
are flat JSON objects, mapping artifacts are arbitrary picklables.  On
the wire both travel as one of two content types:

``application/json``
    Values that survive a JSON round trip *exactly* (the check is a
    re-parse comparison, so dicts with non-string keys, tuples and NaNs
    all fall through to pickle instead of being silently mangled).

``application/octet-stream``
    A pickle stream produced by the client.  The server stores these as
    opaque ``bytes`` and never unpickles them — only the trusting client
    that wrote a payload decodes it, so a store service is not an
    arbitrary-code-execution endpoint.

Batch endpoints carry many values inside one JSON envelope; there each
value becomes a *cell* — ``{"ct": "json", "v": value}`` or ``{"ct":
"pkl", "v": base64}`` — with the same json-first rule.

ETags are the SHA-256 of the encoded body.  Keys are content hashes, so
a value can never change under its key: an ETag match is permanent and
``If-None-Match`` revalidation always short-circuits.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import pickle
from typing import Any, Tuple

JSON_CONTENT_TYPE = "application/json"
BINARY_CONTENT_TYPE = "application/octet-stream"


class WireError(ValueError):
    """A payload that cannot be decoded under the wire contract."""


def _as_json_bytes(value: Any) -> bytes:
    """Canonical JSON bytes of ``value``, or raise when lossy/impossible."""
    body = json.dumps(value, sort_keys=True).encode("utf-8")
    if json.loads(body) != value:
        raise WireError("value does not survive a JSON round trip")
    return body


def encode_value(value: Any) -> Tuple[str, bytes]:
    """Client-side body encoding: ``(content_type, body)`` for a PUT."""
    if not isinstance(value, bytes):
        try:
            return JSON_CONTENT_TYPE, _as_json_bytes(value)
        except (TypeError, ValueError):
            pass
    return BINARY_CONTENT_TYPE, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def decode_body(content_type: str, body: bytes, *, unpickle: bool) -> Any:
    """Decode a request/response body.

    The server passes ``unpickle=False`` (binary payloads stay opaque
    ``bytes``); the client passes ``unpickle=True`` to get its object
    back.
    """
    base_type = content_type.split(";", 1)[0].strip().lower()
    if base_type == JSON_CONTENT_TYPE:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"malformed JSON body: {exc}") from exc
    if base_type == BINARY_CONTENT_TYPE:
        if not unpickle:
            return body
        try:
            return pickle.loads(body)
        except Exception as exc:  # pickle raises a zoo of types
            raise WireError(f"undecodable binary body: {exc}") from exc
    raise WireError(f"unsupported content type {content_type!r}")


def server_body(value: Any) -> Tuple[str, bytes]:
    """Server-side body encoding for a GET: stored ``bytes`` pass through."""
    if isinstance(value, bytes):
        return BINARY_CONTENT_TYPE, value
    try:
        return JSON_CONTENT_TYPE, _as_json_bytes(value)
    except (TypeError, ValueError):
        # A local backend can hold values the service did not store
        # (e.g. a pre-seeded PickleDirBackend); ship them pickled.
        return BINARY_CONTENT_TYPE, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def encode_cell(value: Any) -> dict:
    """One value inside a batch JSON envelope."""
    content_type, body = (
        server_body(value) if isinstance(value, bytes) else encode_value(value)
    )
    if content_type == JSON_CONTENT_TYPE:
        return {"ct": "json", "v": json.loads(body.decode("utf-8"))}
    return {"ct": "pkl", "v": base64.b64encode(body).decode("ascii")}


def decode_cell(cell: Any, *, unpickle: bool) -> Any:
    """Inverse of :func:`encode_cell` (see :func:`decode_body` for modes)."""
    if not isinstance(cell, dict) or "ct" not in cell or "v" not in cell:
        raise WireError(f"malformed batch cell: {cell!r}")
    if cell["ct"] == "json":
        return cell["v"]
    if cell["ct"] == "pkl":
        try:
            body = base64.b64decode(cell["v"], validate=True)
        except (binascii.Error, TypeError, ValueError) as exc:
            raise WireError(f"malformed base64 cell: {exc}") from exc
        return decode_body(BINARY_CONTENT_TYPE, body, unpickle=unpickle)
    raise WireError(f"unknown cell content type {cell['ct']!r}")


def etag_of(body: bytes) -> str:
    """Content-hash ETag (quoted, per RFC 9110) of an encoded body."""
    return f'"{hashlib.sha256(body).hexdigest()}"'
