"""Sharded pickle-per-entry directory backend.

The value domain is arbitrary picklables — one file per entry, which is
the right shape for the mapping pipeline's large structured artifacts
(schedules, profiles, configuration contexts).

Layout
------
``root`` holds one directory per namespace.  With one shard the layout is
the pre-shard flat one, unchanged; with N shards entries live in hashed
subdirectories and flat files are still read as shard 0::

    <root>/<ns>/<prefix>.pkl           num_shards == 1 (legacy layout)
    <root>/<ns>/s03/<prefix>.pkl       num_shards > 1

``prefix`` is the first :attr:`key_prefix_length` characters of the key —
file names stay short, and the shard hash is computed over the prefix so
a scan (which only sees file names) agrees with a lookup (which has the
full key) about where an entry lives.

Concurrency
-----------
Stores are write-then-rename: every writer pickles into its own temp file
and atomically replaces the final name, under the shard directory's
advisory lock.  Reads take no lock — a rename is atomic, so a reader sees
either the old complete file or the new complete file.  A disk hit
touches the file's mtime, which is the cross-process last-access signal
age-based GC honours ("recently read" can be observed by a janitor
running in a different process).
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.store.backend import (
    CompactionReport,
    StoreBackend,
    StoreEntry,
    StoreStats,
    _Counters,
    shard_index,
)
from repro.store.locks import locked, locked_all

#: Default file-name prefix length: 32 hex digits (128 bits) keeps paths
#: short while making collisions implausible.
DEFAULT_KEY_PREFIX_LENGTH = 32

_PICKLE_ERRORS = (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError)

#: Hidden stem the advisory lock of a directory is derived from; the lock
#: file lives *inside* the directory (``<dir>/.dir.lock``) so sibling
#: listings of the namespace root stay clean.
_DIR_LOCK_STEM = ".dir"


def _dir_lock_target(directory: Path) -> Path:
    return directory / _DIR_LOCK_STEM


class PickleDirBackend(StoreBackend):
    """Pickle files in (optionally sharded) namespace directories.

    Parameters
    ----------
    root:
        Directory holding the namespace subdirectories.
    num_shards:
        Shard-directory count (1 reproduces the flat legacy layout).
    key_prefix_length:
        Key characters used for file names and shard hashing.
    clock:
        Time source for access stamps (injectable for GC tests).
    """

    name = "pickle"

    def __init__(
        self,
        root: Union[str, Path],
        num_shards: int = 1,
        key_prefix_length: int = DEFAULT_KEY_PREFIX_LENGTH,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if not 1 <= num_shards <= 99:
            raise ValueError(f"num_shards must be in 1..99, got {num_shards}")
        self.root = Path(root)
        self.num_shards = num_shards
        self.key_prefix_length = key_prefix_length
        self._clock = clock
        self.counters = _Counters()
        self._shard_dir_probe: Dict[str, Tuple[bool, float]] = {}

    #: How long a namespace's has-shard-dirs probe stays cached.
    _SHARD_PROBE_TTL_SECONDS = 5.0

    #: A ``*.tmp`` file younger than this may belong to a live writer in
    #: a shard directory created after compaction took its locks; older
    #: ones are orphans of interrupted runs and are swept.
    _TMP_ORPHAN_AGE_SECONDS = 60.0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _prefix(self, key: str) -> str:
        return key[: self.key_prefix_length]

    def _shard_of(self, key: str) -> int:
        # Hash the prefix, not the full key: scans and compaction only see
        # file names, and both must agree with lookups on the shard.
        return shard_index(self._prefix(key), self.num_shards)

    def shard_dir(self, namespace: str, shard: int) -> Path:
        """Directory of ``shard`` (the namespace dir itself for a flat layout)."""
        base = self.root / namespace
        if self.num_shards <= 1:
            return base
        return base / f"s{shard:02d}"

    def path_for(self, namespace: str, key: str) -> Path:
        """Where a ``put`` of ``(namespace, key)`` writes."""
        return self.shard_dir(namespace, self._shard_of(key)) / f"{self._prefix(key)}.pkl"

    def _legacy_path(self, namespace: str, key: str) -> Path:
        """The pre-shard flat location, read as "shard 0" of sharded stores."""
        return self.root / namespace / f"{self._prefix(key)}.pkl"

    def _candidate_paths(self, namespace: str, key: str) -> Iterator[Path]:
        """Everywhere ``(namespace, key)`` may live, current layout first.

        Besides the current layout's location (and the flat legacy path
        when sharded), the entry may sit in the shard directory of a
        *different* shard count — a directory written by a differently
        configured run.  A targeted glob finds those, so any layout reads
        any other layout's entries until a compaction normalises them.
        The glob is reached lazily — lookups served by the expected
        locations never pay for it — and skipped entirely while the
        namespace has no shard directories at all (the common
        single-layout case; the probe is cached briefly).
        """
        yielded = []
        primary = self.path_for(namespace, key)
        yielded.append(primary)
        yield primary
        if self.num_shards > 1:
            legacy = self._legacy_path(namespace, key)
            yielded.append(legacy)
            yield legacy
        if not self._has_shard_dirs(namespace):
            return
        foreign = sorted(
            (self.root / namespace).glob(f"s[0-9][0-9]/{self._prefix(key)}.pkl")
        )
        for path in foreign:
            if path not in yielded:
                yield path

    def _has_shard_dirs(self, namespace: str) -> bool:
        """Whether any ``sNN/`` directory exists under the namespace.

        Cached for a few seconds so repeated fetch misses in a cold
        campaign do not re-scan the directory; the short TTL still picks
        up a concurrently created sharded layout promptly.
        """
        cached = self._shard_dir_probe.get(namespace)
        now = time.monotonic()
        if cached is not None and now - cached[1] < self._SHARD_PROBE_TTL_SECONDS:
            return cached[0]
        present = any(
            child.is_dir() and len(child.name) == 3 and child.name[0] == "s"
            for child in (self.root / namespace).iterdir()
        ) if (self.root / namespace).is_dir() else False
        self._shard_dir_probe[namespace] = (present, now)
        return present

    # ------------------------------------------------------------------
    # Protocol: get / put / delete / scan / stats
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Logical entry count (cross-layout copies of a key count once)."""
        return sum(1 for _ in self.scan())

    def contains(self, namespace: str, key: str) -> bool:
        """Availability check that counts neither a hit nor a miss."""
        return any(path.exists() for path in self._candidate_paths(namespace, key))

    def get(self, namespace: str, key: str) -> Tuple[bool, Any]:
        for path in self._candidate_paths(namespace, key):
            if not path.exists():
                continue
            try:
                with path.open("rb") as handle:
                    value = pickle.load(handle)
            except FileNotFoundError:
                # Vanished between exists() and open(): a concurrent GC
                # eviction or compaction migration, not corruption.
                continue
            except _PICKLE_ERRORS:
                self.counters.corrupt += 1
                continue
            now = self._clock()
            try:
                os.utime(path, times=(now, now))  # last-access stamp for GC
            except OSError:
                pass
            self.counters.hits += 1
            return True, value
        self.counters.misses += 1
        return False, None

    def put(self, namespace: str, key: str, value: Any) -> None:
        path = self.path_for(namespace, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so neither an interrupted run nor two writers
        # racing on the same key ever leave a truncated file under the
        # final name (mkstemp gives every writer its own temp file).
        with locked(_dir_lock_target(path.parent)):
            descriptor, temporary = tempfile.mkstemp(
                prefix=f"{path.name}.", suffix=".tmp", dir=path.parent
            )
            try:
                with os.fdopen(descriptor, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temporary, path)
                now = self._clock()
                try:
                    os.utime(path, times=(now, now))  # write stamp for GC ages
                except OSError:
                    pass
            except BaseException:
                try:
                    os.unlink(temporary)
                except OSError:
                    pass
                raise
        self.counters.stores += 1

    def put_many(self, namespace: str, records) -> int:
        """Batch store that skips keys already on disk.

        Keys are content hashes, so an existing entry already holds the
        value being offered — skipping saves the pickle+rename work when
        a second writer re-offers a whole wave.  Returns the number of
        records actually written.
        """
        stored = 0
        for key, value in records.items():
            if self.contains(namespace, key):
                continue
            self.put(namespace, key, value)
            stored += 1
        return stored

    def delete(self, namespace: str, key: str) -> bool:
        removed = False
        for path in self._candidate_paths(namespace, key):
            try:
                path.unlink()
                removed = True
            except OSError:
                continue
        if removed:
            self.counters.evicted += 1
        return removed

    def _namespace_dirs(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(child for child in self.root.iterdir() if child.is_dir())

    def _entry_files(self, namespace_dir: Path) -> Iterator[Tuple[Path, int]]:
        """Every ``.pkl`` file under one namespace with its shard location.

        Flat files report shard 0; files inside any ``sNN`` directory —
        including strays from a different shard count — report ``NN``.
        """
        for child in sorted(namespace_dir.iterdir()):
            if child.is_file() and child.suffix == ".pkl":
                yield child, 0
            elif child.is_dir() and len(child.name) == 3 and child.name[0] == "s":
                try:
                    shard = int(child.name[1:])
                except ValueError:
                    continue
                for grandchild in sorted(child.iterdir()):
                    if grandchild.is_file() and grandchild.suffix == ".pkl":
                        yield grandchild, shard

    def scan(self, namespace: Optional[str] = None) -> Iterator[StoreEntry]:
        """One entry per *logical* key, even when layouts hold copies.

        A key duplicated across layouts (flat + sharded) reports the age
        of its freshest copy and the byte total of all copies: GC judges
        the key by the copy most recently written or read — so a read of
        either copy protects the key — and ``delete`` reclaims every
        copy.
        """
        now = self._clock()
        for namespace_dir in self._namespace_dirs():
            if namespace is not None and namespace_dir.name != namespace:
                continue
            merged: Dict[str, Tuple[float, int]] = {}
            for path, _ in self._entry_files(namespace_dir):
                try:
                    status = path.stat()
                except OSError:
                    continue
                age = max(0.0, now - status.st_mtime)
                previous = merged.get(path.stem)
                if previous is None:
                    merged[path.stem] = (age, status.st_size)
                else:
                    merged[path.stem] = (min(previous[0], age), previous[1] + status.st_size)
            for stem, (age, size_bytes) in merged.items():
                yield StoreEntry(
                    namespace=namespace_dir.name,
                    key=stem,
                    shard=self._shard_of(stem),
                    size_bytes=size_bytes,
                    age_seconds=age,
                )

    def stats(self) -> StoreStats:
        # One walk: files and bytes are physical, entries are logical
        # (cross-layout copies of one key count once).
        stems: set = set()
        disk_files = 0
        disk_bytes = 0
        for namespace_dir in self._namespace_dirs():
            for path, _ in self._entry_files(namespace_dir):
                disk_files += 1
                stems.add((namespace_dir.name, path.stem))
                try:
                    disk_bytes += path.stat().st_size
                except OSError:
                    pass
        entries = len(stems)
        return StoreStats(
            backend=self.name,
            shards=self.num_shards,
            entries=entries,
            disk_files=disk_files,
            disk_bytes=disk_bytes,
            hits=self.counters.hits,
            misses=self.counters.misses,
            stores=self.counters.stores,
            corrupt=self.counters.corrupt,
            evicted=self.counters.evicted,
        )

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> CompactionReport:
        """Normalise the physical layout without changing logical contents.

        Migrates entries into their hashed shard directory for the
        *current* shard count (flat legacy files and strays from other
        counts alike), drops leftover temp files and undecodable pickles,
        and keeps the sharded copy when a key exists in two locations.

        The pass holds the namespace-directory lock *and* every existing
        shard-directory lock (sorted, so concurrent compactors cannot
        deadlock): sharded writers lock their shard directory during
        write-then-rename, so no writer can be mid-``put`` anywhere the
        sweep looks.  Temp files are additionally only removed once they
        are old enough to be orphans, which covers a writer creating a
        brand-new shard directory while this pass runs.
        """
        report = CompactionReport()
        for namespace_dir in self._namespace_dirs():
            lock_targets = [_dir_lock_target(namespace_dir)] + sorted(
                _dir_lock_target(child)
                for child in namespace_dir.iterdir()
                if child.is_dir()
            )
            with locked_all(lock_targets):
                now = self._clock()
                for stray in namespace_dir.rglob("*.tmp"):
                    try:
                        status = stray.stat()
                        if now - status.st_mtime < self._TMP_ORPHAN_AGE_SECONDS:
                            continue  # possibly a live writer's in-flight file
                        report.reclaimed_bytes += status.st_size
                        stray.unlink()
                    except OSError:
                        pass
                seen: Dict[str, Path] = {}
                for path, _ in list(self._entry_files(namespace_dir)):
                    try:
                        with path.open("rb") as handle:
                            pickle.load(handle)
                    except _PICKLE_ERRORS:
                        report.dropped_corrupt += 1
                        report.reclaimed_bytes += path.stat().st_size if path.exists() else 0
                        path.unlink(missing_ok=True)
                        continue
                    target = (
                        self.shard_dir(namespace_dir.name, self._shard_of(path.stem)) / path.name
                    )
                    if path.stem in seen:
                        if path == seen[path.stem]:
                            # The earlier entry was migrated onto this very
                            # path; it is the same file, not a duplicate.
                            continue
                        # Duplicate across layouts (flat + sharded copy of
                        # one key): keep the copy at the hashed target.
                        keep_current = path == target and seen[path.stem] != target
                        drop = seen[path.stem] if keep_current else path
                        report.reclaimed_bytes += drop.stat().st_size if drop.exists() else 0
                        drop.unlink(missing_ok=True)
                        if keep_current:
                            seen[path.stem] = path
                        report.dropped_duplicates += 1
                        continue
                    if path != target:
                        target.parent.mkdir(parents=True, exist_ok=True)
                        if target.exists():
                            # The hashed location already holds this key:
                            # the migration collapses a duplicate pair.
                            report.dropped_duplicates += 1
                            report.reclaimed_bytes += target.stat().st_size
                        os.replace(path, target)
                        report.migrated_legacy += 1
                        seen[path.stem] = target
                    else:
                        seen[path.stem] = path
                report.entries_kept += len(seen)
                # Shard directories emptied by migration are left in place
                # (with their lock files): removing a directory another
                # writer may be blocked-locking races its mkstemp, and
                # unlinking a lock file breaks lock identity for later
                # holders.  Empty directories cost nothing.
            report.shards_rewritten += 1
        return report
