"""Sharded append-only JSON-lines backend.

The record domain is flat JSON objects (one per line).  Three field names
are reserved and managed by the backend: ``key`` (the content-hash key,
required on every line), ``ns`` (namespace, omitted when empty) and ``ts``
(write timestamp, used for age-based GC of records that were never read
in this process).

Layout
------
``base_path`` names the pre-shard single file, which doubles as shard 0::

    <dir>/<name>.jsonl            shard 0  (the legacy layout, unchanged)
    <dir>/<name>.s01.jsonl        shard 1
    ...
    <dir>/<name>.s<N-1>.jsonl     shard N-1

A key's shard is :func:`repro.store.backend.shard_index` — a stable hash,
so every process sharing the directory agrees on it.  Opening a backend
loads *every* shard file present (including files from a run configured
with more shards), which is what makes legacy single-file directories and
shard-count changes read transparently: lookups are served from the
merged in-memory map, writes append to the key's current shard.

Concurrency
-----------
Appends are one ``write`` to an ``O_APPEND`` descriptor while holding the
shard's advisory lock (:func:`repro.store.locks.locked`), so concurrent
writers interleave whole lines, never bytes.  Compaction re-reads each
shard under every shard lock at once before rewriting, so records
appended by other processes since this backend loaded are preserved, not
lost.  Readers need no lock: a torn line is impossible under the append
protocol, and anything else is counted as corrupt and skipped.

Read-access stamps (which age-based GC honours) live in process memory —
persisted records carry only their write ``ts``.  A janitor therefore
sees the reads of its own process, not those of other live readers; run
GC from the process that did the reading (the engine's post-campaign
janitor pass) or against directories nothing else is actively reading.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.store.backend import (
    CompactionReport,
    StoreBackend,
    StoreEntry,
    StoreStats,
    _Counters,
    shard_index,
)
from repro.store.locks import locked, locked_all

_Entry = Tuple[str, str]  # (namespace, key)


def _parse_lines(
    text: str, validate: Optional[Callable[[dict], bool]]
) -> Tuple[Dict[_Entry, dict], Dict[_Entry, int], int]:
    """Parse JSON-lines ``text``; returns ``(records, line_sizes, corrupt)``.

    Later lines supersede earlier ones (same content-hash key, so the
    values agree; superseding just deduplicates).  Blank lines are not
    corruption, anything unparsable or failing ``validate`` is.  Line
    sizes are kept so :meth:`ShardedJsonlBackend.scan` never has to
    re-serialize records.
    """
    records: Dict[_Entry, dict] = {}
    sizes: Dict[_Entry, int] = {}
    corrupt = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            key = record["key"]
        except (ValueError, KeyError, TypeError):
            corrupt += 1
            continue
        if not isinstance(key, str) or (validate is not None and not validate(record)):
            corrupt += 1
            continue
        entry = (record.get("ns", ""), key)
        records[entry] = record
        sizes[entry] = len(line.encode("utf-8")) + 1
    return records, sizes, corrupt


class ShardedJsonlBackend(StoreBackend):
    """N append-only JSON-lines shards behind the store protocol.

    Parameters
    ----------
    base_path:
        The shard-0 file; shards 1..N-1 are ``.sNN`` siblings.  Parent
        directories are created on demand.
    num_shards:
        Shard-file count new writes spread over (1 reproduces the legacy
        single-file layout exactly).
    validate:
        Optional record predicate; records failing it count as corrupt
        and are dropped on load and on compaction.
    clock:
        Time source for ``ts`` stamps and access ages (injectable for
        deterministic GC tests).
    """

    name = "jsonl"

    def __init__(
        self,
        base_path: Union[str, Path],
        num_shards: int = 1,
        validate: Optional[Callable[[dict], bool]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if not 1 <= num_shards <= 99:
            raise ValueError(f"num_shards must be in 1..99, got {num_shards}")
        self.base_path = Path(base_path)
        self.num_shards = num_shards
        self._validate = validate
        self._clock = clock
        self.counters = _Counters()
        #: Corrupt/foreign lines skipped across all shard files on load.
        self.corrupt_lines = 0
        self._records: Dict[_Entry, dict] = {}
        self._sizes: Dict[_Entry, int] = {}  # encoded line bytes (for scan)
        self._stamp: Dict[_Entry, float] = {}  # write time (record ts / file mtime)
        self._access: Dict[_Entry, float] = {}  # last read in this process
        self._deleted: set = set()  # tombstones applied at compaction
        self._load()

    # ------------------------------------------------------------------
    # Shard file naming
    # ------------------------------------------------------------------
    def shard_path(self, shard: int) -> Path:
        """The file of ``shard`` (shard 0 is the legacy ``base_path`` itself)."""
        if shard == 0:
            return self.base_path
        return self.base_path.with_name(
            f"{self.base_path.stem}.s{shard:02d}{self.base_path.suffix}"
        )

    def _shard_files_present(self) -> List[Path]:
        """Every shard file on disk, shard 0 first then ascending ``.sNN``.

        Includes stray shards beyond :attr:`num_shards` (a directory
        written by a run configured with more shards): their records must
        load and survive compaction.
        """
        files: List[Path] = []
        if self.base_path.exists():
            files.append(self.base_path)
        pattern = re.compile(
            re.escape(self.base_path.stem) + r"\.s(\d\d)" + re.escape(self.base_path.suffix) + r"$"
        )
        numbered = []
        for candidate in self.base_path.parent.glob(f"{self.base_path.stem}.s??*"):
            match = pattern.match(candidate.name)
            if match:
                numbered.append((int(match.group(1)), candidate))
        files.extend(path for _, path in sorted(numbered))
        return files

    def _load(self) -> None:
        for path in self._shard_files_present():
            try:
                text = path.read_text(encoding="utf-8")
                mtime = path.stat().st_mtime
            except OSError:
                continue
            records, sizes, corrupt = _parse_lines(text, self._validate)
            self.corrupt_lines += corrupt
            self.counters.corrupt += corrupt
            for entry, record in records.items():
                self._records[entry] = record
                self._sizes[entry] = sizes[entry]
                self._stamp[entry] = float(record.get("ts", mtime))

    # ------------------------------------------------------------------
    # Protocol: get / put / delete / scan / stats
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, entry: _Entry) -> bool:
        return entry in self._records

    def contains(self, namespace: str, key: str) -> bool:
        """Availability check that counts neither a hit nor a miss."""
        return (namespace, key) in self._records

    def get(self, namespace: str, key: str) -> Tuple[bool, Any]:
        entry = (namespace, key)
        record = self._records.get(entry)
        if record is None:
            self.counters.misses += 1
            return False, None
        self._access[entry] = self._clock()
        self.counters.hits += 1
        return True, record

    def _admit(self, namespace: str, key: str, value: Any) -> Optional[dict]:
        """Register a new record in memory; ``None`` when the key exists.

        The stored line carries the reserved fields; ``value`` itself is
        left untouched.  Re-putting an existing key is a no-op (keys are
        content hashes, so the value cannot have changed).
        """
        entry = (namespace, key)
        if entry in self._records:
            return None
        if not isinstance(value, dict):
            raise TypeError(f"jsonl records must be flat JSON objects, got {type(value).__name__}")
        record = dict(value)
        record["key"] = key
        if namespace:
            record["ns"] = namespace
        record["ts"] = round(self._clock(), 3)
        self._records[entry] = record
        self._stamp[entry] = record["ts"]
        self._deleted.discard(entry)
        self.counters.stores += 1
        return record

    def put(self, namespace: str, key: str, value: Any) -> None:
        """Record the JSON object ``value`` under ``key`` and append it."""
        record = self._admit(namespace, key, value)
        if record is None:
            return
        written = self._append(shard_index(key, self.num_shards), [record])
        self._sizes[(namespace, key)] = written[0]

    def put_many(self, namespace: str, records: Mapping[str, Any]) -> int:
        """Batch store: group new records by shard, one lock+append per shard.

        The sharded override of the protocol's per-key loop — batch HTTP
        endpoints and local callers share this code path, and a campaign
        wave costs one advisory lock per touched shard instead of one per
        record.
        """
        # Validate the whole batch before admitting anything: _admit
        # registers records in memory ahead of the shard appends, so a
        # mid-loop domain error would otherwise leave earlier records
        # readable in this process but never written to disk.
        for key, value in records.items():
            if not isinstance(value, dict):
                raise TypeError(
                    f"jsonl records must be flat JSON objects, got {type(value).__name__}"
                )
        grouped: Dict[int, List[Tuple[str, dict]]] = {}
        stored = 0
        for key, value in records.items():
            record = self._admit(namespace, key, value)
            if record is None:
                continue
            stored += 1
            grouped.setdefault(shard_index(key, self.num_shards), []).append((key, record))
        for shard, members in grouped.items():
            written = self._append(shard, [record for _, record in members])
            for (key, _), size in zip(members, written):
                self._sizes[(namespace, key)] = size
        return stored

    def get_many(self, namespace: str, keys: Sequence[str]) -> Dict[str, Any]:
        """Batch lookup served from the merged in-memory map (one clock read)."""
        found: Dict[str, Any] = {}
        now = self._clock()
        for key in keys:
            entry = (namespace, key)
            record = self._records.get(entry)
            if record is None:
                self.counters.misses += 1
                continue
            self._access[entry] = now
            self.counters.hits += 1
            found[key] = record
        return found

    def _append(self, shard: int, records: Sequence[dict]) -> List[int]:
        """Append record lines to one shard; returns the bytes per line."""
        path = self.shard_path(shard)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [
            (json.dumps(record, sort_keys=True) + "\n").encode("utf-8") for record in records
        ]
        with locked(path):
            descriptor = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
            try:
                os.write(descriptor, b"".join(lines))
            finally:
                os.close(descriptor)
        return [len(line) for line in lines]

    def delete(self, namespace: str, key: str) -> bool:
        """Drop the entry from this backend; the line disappears on compaction."""
        entry = (namespace, key)
        if entry not in self._records:
            return False
        del self._records[entry]
        self._stamp.pop(entry, None)
        self._sizes.pop(entry, None)
        self._access.pop(entry, None)
        self._deleted.add(entry)
        self.counters.evicted += 1
        return True

    def scan(self, namespace: Optional[str] = None) -> Iterator[StoreEntry]:
        now = self._clock()
        for entry_namespace, key in list(self._records):
            if namespace is not None and entry_namespace != namespace:
                continue
            entry = (entry_namespace, key)
            freshest = max(self._stamp.get(entry, 0.0), self._access.get(entry, 0.0))
            yield StoreEntry(
                namespace=entry_namespace,
                key=key,
                shard=shard_index(key, self.num_shards),
                size_bytes=self._sizes.get(entry, 0),
                age_seconds=max(0.0, now - freshest),
            )

    def _disk_usage(self) -> Tuple[int, int]:
        files = self._shard_files_present()
        return len(files), sum(path.stat().st_size for path in files if path.exists())

    def stats(self) -> StoreStats:
        disk_files, disk_bytes = self._disk_usage()
        return StoreStats(
            backend=self.name,
            shards=self.num_shards,
            entries=len(self._records),
            disk_files=disk_files,
            disk_bytes=disk_bytes,
            hits=self.counters.hits,
            misses=self.counters.misses,
            stores=self.counters.stores,
            corrupt=self.counters.corrupt,
            evicted=self.counters.evicted,
        )

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> CompactionReport:
        """Rewrite every shard: dedup, drop corrupt lines, apply deletes.

        All shard locks are held for the whole pass (single lock order, so
        concurrent appenders — which take one lock — cannot deadlock
        against it).  Shard files are re-read first, so records appended
        by other processes after this backend loaded are merged in, then
        everything is rewritten sorted by key: a second compaction of an
        unchanged store is byte-identical.  Records found in the wrong
        file (the legacy single file, or strays from a different shard
        count) migrate to their hashed shard; stray files are removed.
        """
        report = CompactionReport()
        on_disk = self._shard_files_present()
        lock_targets = sorted(
            {path for path in on_disk} | {self.shard_path(index) for index in range(self.num_shards)}
        )
        with locked_all(lock_targets):
            _, bytes_before = self._disk_usage()
            # Phase 1: fresh read of every file so no other writer's
            # records are dropped by the rewrite.
            lines_seen = 0
            disk_entries: set = set()
            for path in on_disk:
                try:
                    text = path.read_text(encoding="utf-8")
                    mtime = path.stat().st_mtime
                except OSError:
                    continue
                lines_seen += sum(1 for line in text.splitlines() if line.strip())
                records, sizes, corrupt = _parse_lines(text, self._validate)
                report.dropped_corrupt += corrupt
                for entry, record in records.items():
                    disk_entries.add(entry)
                    if entry in self._deleted:
                        continue
                    if entry not in self._records:
                        self._records[entry] = record
                        self._sizes[entry] = sizes[entry]
                        self._stamp[entry] = float(record.get("ts", mtime))
                    if self.shard_path(shard_index(entry[1], self.num_shards)) != path:
                        report.migrated_legacy += 1
            report.dropped_duplicates = max(
                0, lines_seen - report.dropped_corrupt - len(disk_entries)
            )
            # Phase 2: deterministic rewrite, one file per configured shard.
            grouped: Dict[int, List[dict]] = {index: [] for index in range(self.num_shards)}
            for (namespace, key), record in sorted(self._records.items()):
                grouped[shard_index(key, self.num_shards)].append(record)
            for index in range(self.num_shards):
                path = self.shard_path(index)
                payload = "".join(
                    json.dumps(record, sort_keys=True) + "\n" for record in grouped[index]
                )
                if not payload and not path.exists():
                    continue
                temporary = path.with_name(path.name + ".compact.tmp")
                temporary.write_text(payload, encoding="utf-8")
                os.replace(temporary, path)
                report.shards_rewritten += 1
            for stray in on_disk:
                if stray not in {self.shard_path(index) for index in range(self.num_shards)}:
                    stray.unlink(missing_ok=True)
            _, bytes_after = self._disk_usage()
        self._deleted.clear()
        report.entries_kept = len(self._records)
        report.reclaimed_bytes = max(0, bytes_before - bytes_after)
        return report
