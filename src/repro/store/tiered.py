"""Read-through / write-behind tiering of a memory front over any backend.

``TieredBackend`` composes two stores:

* a *front* (:class:`~repro.store.backend.MemoryBackend` by default) that
  absorbs every repeat read — a key fetched once is never requested from
  the slow tier again in this process, which is what keeps a fleet worker
  from hammering its store service with the same artifact lookups;
* the *slow tier* (typically a :class:`~repro.store.remote.RemoteBackend`,
  but any backend works) that is the durable source of truth.

Writes land in the front immediately and are acknowledged; the actual
slow-tier write is *deferred*: queued in a bounded buffer and flushed by
a background thread in batches (one :meth:`put_many` per namespace per
batch — over HTTP that is one round trip instead of one per record).
``flush()`` drains synchronously, ``close()`` drains and stops the
flusher, and a full queue flushes inline on the writer's thread so the
buffer stays bounded.

Because keys are content hashes, the front can never serve a *stale*
value — at worst it serves a value the slow tier has since evicted, which
is indistinguishable from having cached the recomputation.  That is why
read-through caching needs no invalidation protocol here.
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.store.backend import (
    CompactionReport,
    MemoryBackend,
    StoreBackend,
    StoreEntry,
    StoreStats,
)
from repro.store.janitor import JanitorReport, StoreJanitor


class TieredBackend(StoreBackend):
    """A memory front with write-behind batching over a slower backend.

    Parameters
    ----------
    backend:
        The durable slow tier.
    front:
        The fast tier; a fresh :class:`MemoryBackend` when omitted.
    max_queue:
        Pending-write bound; a ``put`` finding the queue full flushes
        inline instead of growing it.
    batch_size:
        Largest batch the flusher hands to ``backend.put_many`` at once.
    flush_interval:
        How long the background flusher sleeps between looking for work.
    auto_flush:
        ``False`` disables the background thread entirely — writes then
        reach the slow tier only on explicit :meth:`flush`/:meth:`close`
        (deterministic mode for tests).
    """

    name = "tiered"

    def __init__(
        self,
        backend: StoreBackend,
        front: Optional[StoreBackend] = None,
        *,
        max_queue: int = 1024,
        batch_size: int = 128,
        flush_interval: float = 0.05,
        auto_flush: bool = True,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be at least 1, got {max_queue}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be at least 1, got {batch_size}")
        self.backend = backend
        self.front = front if front is not None else MemoryBackend()
        self.max_queue = max_queue
        self.batch_size = batch_size
        self.flush_interval = flush_interval
        self.auto_flush = auto_flush
        self._queue: Deque[Tuple[str, str, Any]] = deque()
        self._condition = threading.Condition()
        self._in_flight = 0
        self._closed = False
        self._flusher: Optional[threading.Thread] = None
        # Tier counters (reported via tier_stats / the CLI summary line).
        self.front_hits = 0
        self.front_misses = 0
        self.flush_batches = 0
        self.flushed_records = 0
        self.flush_errors = 0
        #: Records in flush batches the slow tier rejected — they stayed
        #: in the front but never reached durable storage.
        self.dropped_records = 0
        self.inline_flushes = 0

    # ------------------------------------------------------------------
    # Write-behind machinery
    # ------------------------------------------------------------------
    @property
    def counters(self):
        """Operation counters of the slow tier (corruption lives there)."""
        return self.backend.counters  # type: ignore[attr-defined]

    @property
    def pending(self) -> int:
        """Writes queued or in flight toward the slow tier."""
        with self._condition:
            return len(self._queue) + self._in_flight

    def _ensure_flusher(self) -> None:
        if not self.auto_flush or self._closed:
            return
        if self._flusher is None or not self._flusher.is_alive():
            self._flusher = threading.Thread(
                target=self._flush_loop, name="tiered-store-flusher", daemon=True
            )
            self._flusher.start()

    def _take_batch(self) -> List[Tuple[str, str, Any]]:
        batch: List[Tuple[str, str, Any]] = []
        while self._queue and len(batch) < self.batch_size:
            batch.append(self._queue.popleft())
        self._in_flight += len(batch)
        return batch

    def _write_out(self, batch: List[Tuple[str, str, Any]]) -> None:
        grouped: Dict[str, Dict[str, Any]] = {}
        for namespace, key, value in batch:
            grouped.setdefault(namespace, {})[key] = value
        try:
            for namespace, records in grouped.items():
                self.backend.put_many(namespace, records)
            self.flush_batches += 1
            self.flushed_records += len(batch)
        except Exception:
            # The slow tier is allowed to fail (a strict remote, a full
            # disk); the batch is dropped, not retried forever — the
            # values are content-addressed recomputables, not ledgers.
            self.flush_errors += 1
            self.dropped_records += len(batch)
        finally:
            with self._condition:
                self._in_flight -= len(batch)
                self._condition.notify_all()

    def _flush_loop(self) -> None:
        while True:
            with self._condition:
                if self._closed and not self._queue:
                    return
                if not self._queue:
                    self._condition.wait(timeout=self.flush_interval)
                batch = self._take_batch()
            if batch:
                self._write_out(batch)

    def flush(self) -> None:
        """Drain every pending write to the slow tier before returning."""
        while True:
            with self._condition:
                batch = self._take_batch()
                if not batch and self._in_flight:
                    # The flusher owns the remaining writes; wait them out.
                    self._condition.wait(timeout=self.flush_interval)
                    continue
            if not batch:
                return
            self._write_out(batch)

    def close(self, timeout: float = 5.0) -> None:
        """Drain pending writes, bounded by ``timeout``; never drop silently.

        The drain runs on the caller's thread (like :meth:`flush`) against
        a deadline.  A healthy slow tier empties the queue and the close is
        clean; a wedged one (a remote hanging inside its socket timeout)
        cannot hold the campaign hostage — at the deadline the records
        still *queued* are counted into :attr:`dropped_records` and
        reported with a :class:`RuntimeWarning`.  Batches already in
        flight are not double-counted: :meth:`_write_out` accounts for
        them itself when the slow tier finally answers (or fails).
        """
        deadline = time.monotonic() + timeout
        with self._condition:
            self._closed = True
            self._condition.notify_all()
        stranded = 0
        in_flight = 0
        while True:
            batch: List[Tuple[str, str, Any]] = []
            with self._condition:
                if not self._queue and not self._in_flight:
                    break
                if time.monotonic() >= deadline:
                    stranded = len(self._queue)
                    in_flight = self._in_flight
                    self.dropped_records += stranded
                    self._queue.clear()
                    break
                batch = self._take_batch()
                if not batch:
                    # The flusher owns the in-flight writes; wait them out
                    # (but never past the deadline).
                    self._condition.wait(
                        timeout=min(
                            self.flush_interval,
                            max(deadline - time.monotonic(), 0.001),
                        )
                    )
                    continue
            if batch:
                self._write_out(batch)
        if self._flusher is not None:
            self._flusher.join(timeout=max(deadline - time.monotonic(), 0.0))
            self._flusher = None
        if stranded or in_flight:
            warnings.warn(
                f"tiered store closed with {stranded} queued record(s) dropped"
                + (
                    f" and {in_flight} record(s) still in flight toward the slow tier"
                    if in_flight
                    else ""
                )
                + f" after the {timeout:.1f}s drain deadline — the slow tier "
                "did not keep up; the values stay recomputable (content-"
                "addressed) but this worker's results did not all reach "
                "durable storage",
                RuntimeWarning,
                stacklevel=2,
            )

    def __enter__(self) -> "TieredBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Protocol: get / put / delete / scan / stats / compact
    # ------------------------------------------------------------------
    def contains(self, namespace: str, key: str) -> bool:
        return self.front.contains(namespace, key) or self.backend.contains(namespace, key)

    def get(self, namespace: str, key: str) -> Tuple[bool, Any]:
        hit, value = self.front.get(namespace, key)
        if hit:
            self.front_hits += 1
            return True, value
        self.front_misses += 1
        hit, value = self.backend.get(namespace, key)
        if hit:
            self.front.put(namespace, key, value)
        return hit, value

    def _read_through(
        self, namespace: str, keys: Sequence[str], charge_counters: bool
    ) -> Dict[str, Any]:
        """Front probe + one slow-tier batch + front install (shared body)."""
        found: Dict[str, Any] = {}
        missing: List[str] = []
        for key in keys:
            hit, value = self.front.get(namespace, key)
            if hit:
                if charge_counters:
                    self.front_hits += 1
                found[key] = value
            else:
                if charge_counters:
                    self.front_misses += 1
                missing.append(key)
        if missing:
            fetched = self.backend.get_many(namespace, missing)
            for key, value in fetched.items():
                self.front.put(namespace, key, value)
            found.update(fetched)
        return found

    def get_many(self, namespace: str, keys: Sequence[str]) -> Dict[str, Any]:
        return self._read_through(namespace, keys, charge_counters=True)

    def prefetch(self, namespace: str, keys: Sequence[str]) -> Dict[str, Any]:
        """Warm the front for ``keys`` without charging front counters.

        A background prefetch is not a read the campaign asked for: keys
        already in the front are returned silently, the rest are pulled
        from the slow tier in one batch and installed — the later real
        ``get`` then counts its front hit as usual.
        """
        return self._read_through(namespace, keys, charge_counters=False)

    def put(self, namespace: str, key: str, value: Any) -> None:
        self.front.put(namespace, key, value)
        self._enqueue([(namespace, key, value)])

    def put_many(self, namespace: str, records: Mapping[str, Any]) -> int:
        for key, value in records.items():
            self.front.put(namespace, key, value)
        self._enqueue([(namespace, key, value) for key, value in records.items()])
        return len(records)

    def _enqueue(self, items: List[Tuple[str, str, Any]]) -> None:
        overflow = False
        with self._condition:
            self._queue.extend(items)
            if len(self._queue) > self.max_queue:
                overflow = True
            self._condition.notify_all()
        self._ensure_flusher()
        if overflow:
            # Bounded buffer: the writer pays for its own burst instead of
            # growing the queue without limit.
            self.inline_flushes += 1
            self.flush()

    def delete(self, namespace: str, key: str) -> bool:
        with self._condition:
            # Drop pending writes of the key, then wait out any batch the
            # flusher already took, so no flush — queued or in flight —
            # can resurrect what this delete removed.
            self._queue = deque(
                item for item in self._queue if item[:2] != (namespace, key)
            )
            while self._in_flight:
                self._condition.wait(timeout=self.flush_interval)
        front_removed = self.front.delete(namespace, key)
        backend_removed = self.backend.delete(namespace, key)
        return front_removed or backend_removed

    def scan(self, namespace: Optional[str] = None) -> Iterator[StoreEntry]:
        """Slow-tier metadata (pending writes are flushed first)."""
        self.flush()
        yield from self.backend.scan(namespace)

    def stats(self) -> StoreStats:
        """The slow tier's snapshot, relabelled as the tier's own."""
        snapshot = self.backend.stats()
        snapshot.backend = f"tiered({snapshot.backend})"
        return snapshot

    def __len__(self) -> int:
        return self.stats().entries

    def compact(self) -> CompactionReport:
        self.flush()
        return self.backend.compact()

    def sweep_remote(
        self, max_age_seconds: Optional[float] = None, compact: bool = True
    ) -> JanitorReport:
        """Flush, then run the slow tier's janitor (remotely when it can).

        The front keeps whatever GC evicted on the slow tier: content-hash
        keys cannot go stale, so a front hit on an evicted key is simply a
        cache of the recomputation GC asked for.
        """
        self.flush()
        delegate = getattr(self.backend, "sweep_remote", None)
        if delegate is not None:
            return delegate(max_age_seconds, compact)
        return StoreJanitor(self.backend, max_age_seconds=max_age_seconds).sweep(compact=compact)

    def tier_stats(self) -> Dict[str, object]:
        """Front hit/miss and flush counters for reports and the CLI."""
        return {
            "front_hits": self.front_hits,
            "front_misses": self.front_misses,
            "front_entries": self.front.stats().entries,
            "flush_batches": self.flush_batches,
            "flushed_records": self.flushed_records,
            "flush_errors": self.flush_errors,
            "dropped_records": self.dropped_records,
            "inline_flushes": self.inline_flushes,
            "pending": self.pending,
        }
