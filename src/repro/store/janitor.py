"""Garbage collection and compaction over any store backend.

The stores only grow: every new kernel, architecture or calibration adds
records that are never superseded in place (keys are content hashes).
The janitor is the counterweight — an explicit maintenance pass that

1. evicts entries whose *age* (seconds since they were last written or
   read) exceeds a configured bound, and
2. compacts the physical layout (rewrites JSONL shards dropping
   superseded and corrupt lines, migrates legacy files into their hashed
   shard locations, removes temp strays).

Because a hit refreshes an entry's access stamp in every backend, an
entry that was just read is never evicted regardless of when it was
written — the LRU-flavoured invariant the property tests pin down.

Scope of that guarantee: :class:`~repro.store.pickledir.PickleDirBackend`
stamps reads on the file itself (mtime), so it holds across processes;
the memory and JSONL backends track reads in process memory, so their
guarantee covers the janitor running in the process that did the reading
— which is exactly the engine's usage (the post-campaign janitor pass
runs after its own campaign's reads).  Run a standalone JSONL janitor
only against directories no other campaign is actively reading.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.store.backend import CompactionReport, StoreBackend


@dataclass
class JanitorReport:
    """Outcome of one :meth:`StoreJanitor.sweep`."""

    scanned: int = 0
    evicted: int = 0
    evicted_bytes: int = 0
    compaction: CompactionReport = field(default_factory=CompactionReport)

    @property
    def kept(self) -> int:
        return self.scanned - self.evicted


class StoreJanitor:
    """Age-based GC plus compaction for one backend.

    Parameters
    ----------
    backend:
        Any :class:`~repro.store.backend.StoreBackend`.
    max_age_seconds:
        Entries older than this (since last write *or* read) are evicted
        by :meth:`sweep`; ``None`` disables eviction and leaves only
        compaction.
    """

    def __init__(self, backend: StoreBackend, max_age_seconds: Optional[float] = None) -> None:
        if max_age_seconds is not None and max_age_seconds < 0:
            raise ValueError(f"max_age_seconds must be non-negative, got {max_age_seconds}")
        self.backend = backend
        self.max_age_seconds = max_age_seconds

    def sweep(self, compact: bool = True) -> JanitorReport:
        """One maintenance pass: evict over-age entries, then compact.

        Eviction consults the backend's own age accounting (record
        timestamps, file mtimes refreshed on read, in-process access
        times), so a key read just before the sweep always survives it.

        A sweep that evicted anything always compacts, regardless of
        ``compact``: JSONL deletion is a tombstone until its shard is
        rewritten, so skipping compaction there would report evictions
        that resurrect on the next open.  ``compact=False`` only skips
        the pure layout-normalisation pass when nothing was evicted.

        A backend that can run the whole pass closer to the data — the
        remote client's single ``POST /janitor``, the tiered store's
        flush-then-delegate — exposes ``sweep_remote`` and is handed the
        sweep outright, so every caller keeps one code path.
        """
        delegate = getattr(self.backend, "sweep_remote", None)
        if delegate is not None:
            return delegate(self.max_age_seconds, compact)
        report = JanitorReport()
        entries = list(self.backend.scan())
        report.scanned = len(entries)
        if self.max_age_seconds is not None:
            for entry in entries:
                if entry.age_seconds > self.max_age_seconds:
                    if self.backend.delete(entry.namespace, entry.key):
                        report.evicted += 1
                        report.evicted_bytes += entry.size_bytes
        if compact or report.evicted:
            report.compaction = self.backend.compact()
        return report
