"""Livermore-loop kernels used in paper Table 4.

The paper evaluates five kernels of the Livermore loops benchmark suite:

* **Hydro** (kernel 1, hydrodynamics fragment), 32 iterations,
* **ICCG** (kernel 2, incomplete Cholesky conjugate gradient), 32 iterations,
* **Tri-diagonal** (kernel 5, tri-diagonal elimination), 64 iterations,
* **Inner product** (kernel 3), 128 iterations,
* **State** (kernel 7, equation-of-state fragment), 16 iterations.

The loop bodies below follow the classic Livermore C/Fortran formulations;
their operation sets match paper Table 3 (Hydro/Inner product/State use
``mult`` and ``add``, ICCG and Tri-diagonal use ``mult`` and ``sub``).
The paper's authors mapped compiled C kernels with an in-house tool; here
the same computations are expressed directly as dataflow graphs, which is
the substitution documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.builder import DFGBuilder
from repro.ir.loops import Kernel

#: Iteration counts reported in paper Table 4 headers.
PAPER_ITERATIONS = {
    "Hydro": 32,
    "ICCG": 32,
    "Tri-diagonal": 64,
    "Inner product": 128,
    "State": 16,
}

#: Number of parallel partial-sum accumulators used by reduction kernels.
#: Two accumulators per array row keep the accumulation chains short enough
#: for loop pipelining while staying faithful to "accumulate into a scalar".
DEFAULT_PARTIAL_SUMS = 16


def hydro_fragment(iterations: int = PAPER_ITERATIONS["Hydro"]) -> Kernel:
    """Livermore kernel 1: ``x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])``.

    Constants ``q``, ``r`` and ``t`` live in the configuration cache; each
    iteration loads ``y[k]``, ``z[k+10]`` and ``z[k+11]``, performs three
    multiplications and two additions and stores ``x[k]``.
    """

    def body(builder: DFGBuilder, k: int, state: Dict[str, str]) -> None:
        if "q" not in state:
            state["q"] = builder.const(5, comment="q")
            state["r"] = builder.const(3, comment="r")
            state["t"] = builder.const(2, comment="t")
        y_value = builder.load("y", k)
        z_plus_10 = builder.load("z", k + 10)
        z_plus_11 = builder.load("z", k + 11)
        r_term = builder.mul(state["r"], z_plus_10, comment="r*z[k+10]")
        t_term = builder.mul(state["t"], z_plus_11, comment="t*z[k+11]")
        inner = builder.add(r_term, t_term)
        scaled = builder.mul(y_value, inner, comment="y[k]*(...)")
        result = builder.add(state["q"], scaled, comment="q + ...")
        builder.store("x", k, result)

    return Kernel(
        name="Hydro",
        body=body,
        iterations=iterations,
        description="Livermore kernel 1, hydrodynamics fragment",
        source="livermore",
    )


def iccg(iterations: int = PAPER_ITERATIONS["ICCG"]) -> Kernel:
    """Livermore kernel 2 (ICCG excerpt): ``x[i] = x[2i] - v[i]*x[2i+1]``.

    The full ICCG kernel is a reduction over a binary tree; the paper maps
    its innermost loop, whose body performs one multiplication and one
    subtraction per element (operation set ``mult, sub`` in Table 3).
    """

    def body(builder: DFGBuilder, i: int, state: Dict[str, str]) -> None:
        x_even = builder.load("x", 2 * i)
        x_odd = builder.load("x", 2 * i + 1)
        v_value = builder.load("v", i)
        product = builder.mul(v_value, x_odd, comment="v[i]*x[2i+1]")
        result = builder.sub(x_even, product, comment="x[2i] - v[i]*x[2i+1]")
        builder.store("xnew", i, result)

    return Kernel(
        name="ICCG",
        body=body,
        iterations=iterations,
        description="Livermore kernel 2, incomplete Cholesky conjugate gradient (inner loop)",
        source="livermore",
    )


def tri_diagonal(iterations: int = PAPER_ITERATIONS["Tri-diagonal"]) -> Kernel:
    """Livermore kernel 5: ``x[i] = z[i]*(y[i] - x[i-1])``.

    The original kernel carries a true recurrence on ``x``.  A strictly
    serial recurrence cannot finish 64 iterations in the 17 cycles the
    paper reports, so — like the paper's mapper, which relies on memory
    operation sharing [7] — the reproduction maps the Jacobi-style form in
    which ``x[i-1]`` is read from the previous sweep's array, making the
    iterations independent.  The operation set (``mult``, ``sub``) and the
    per-iteration work are unchanged; the substitution is recorded in
    DESIGN.md/EXPERIMENTS.md.
    """

    def body(builder: DFGBuilder, i: int, state: Dict[str, str]) -> None:
        y_value = builder.load("y", i)
        z_value = builder.load("z", i)
        x_previous = builder.load("x", i, comment="x[i-1] from the previous sweep")
        difference = builder.sub(y_value, x_previous, comment="y[i] - x[i-1]")
        result = builder.mul(z_value, difference, comment="z[i]*(y[i]-x[i-1])")
        builder.store("xnew", i + 1, result)

    return Kernel(
        name="Tri-diagonal",
        body=body,
        iterations=iterations,
        description="Livermore kernel 5, tri-diagonal elimination below diagonal",
        source="livermore",
    )


def inner_product(
    iterations: int = PAPER_ITERATIONS["Inner product"],
    partial_sums: int = DEFAULT_PARTIAL_SUMS,
) -> Kernel:
    """Livermore kernel 3: ``q += z[k] * x[k]``.

    The scalar accumulation is re-associated into ``partial_sums`` parallel
    accumulators (one per array row) that are reduced by a balanced tree in
    the loop epilogue — the standard transformation a loop-pipelining mapper
    applies to a reduction so the iterations become independent.
    """

    def body(builder: DFGBuilder, k: int, state: Dict[str, str]) -> None:
        z_value = builder.load("z", k)
        x_value = builder.load("x", k)
        product = builder.mul(z_value, x_value, comment="z[k]*x[k]")
        slot = f"psum{k % partial_sums}"
        if slot in state:
            state[slot] = builder.add(state[slot], product, comment=f"accumulate {slot}")
        else:
            state[slot] = product

    def finalize(builder: DFGBuilder, state: Dict[str, str]) -> None:
        partials: List[str] = [state[key] for key in sorted(state) if key.startswith("psum")]
        total = builder.sum_tree(partials, comment="reduce partial sums")
        builder.store("q", 0, total, comment="q")

    return Kernel(
        name="Inner product",
        body=body,
        iterations=iterations,
        finalize=finalize,
        description="Livermore kernel 3, inner product with row-parallel partial sums",
        source="livermore",
    )


def state_fragment(iterations: int = PAPER_ITERATIONS["State"]) -> Kernel:
    """Livermore kernel 7: equation-of-state fragment.

    ``x[i] = u[i] + r*(z[i] + r*y[i])
            + t*(u[i+3] + r*(u[i+2] + r*u[i+1])
            + t*(u[i+6] + r*(u[i+5] + r*u[i+4])))``

    Eight multiplications and seven additions per iteration; the
    multiplication-heaviest of the Livermore kernels evaluated by the
    paper, which is why RS#1 (a single shared multiplier per row) stalls
    badly on it (paper Table 4).
    """

    def body(builder: DFGBuilder, i: int, state: Dict[str, str]) -> None:
        if "r" not in state:
            state["r"] = builder.const(3, comment="r")
            state["t"] = builder.const(2, comment="t")
        r_const = state["r"]
        t_const = state["t"]
        u_0 = builder.load("u", i)
        u_1 = builder.load("u", i + 1)
        u_2 = builder.load("u", i + 2)
        u_3 = builder.load("u", i + 3)
        u_4 = builder.load("u", i + 4)
        u_5 = builder.load("u", i + 5)
        u_6 = builder.load("u", i + 6)
        y_value = builder.load("y", i)
        z_value = builder.load("z", i)

        inner_first = builder.add(z_value, builder.mul(r_const, y_value), comment="z + r*y")
        term_first = builder.mul(r_const, inner_first, comment="r*(z + r*y)")

        inner_second = builder.add(u_2, builder.mul(r_const, u_1), comment="u[i+2] + r*u[i+1]")
        term_second = builder.add(u_3, builder.mul(r_const, inner_second))

        inner_third = builder.add(u_5, builder.mul(r_const, u_4), comment="u[i+5] + r*u[i+4]")
        term_third = builder.add(u_6, builder.mul(r_const, inner_third))

        nested = builder.add(term_second, builder.mul(t_const, term_third))
        outer = builder.mul(t_const, nested, comment="t*(...)")
        result = builder.add(u_0, builder.add(term_first, outer))
        builder.store("x", i, result)

    return Kernel(
        name="State",
        body=body,
        iterations=iterations,
        description="Livermore kernel 7, equation-of-state fragment",
        source="livermore",
    )


def livermore_kernels() -> List[Kernel]:
    """The five Livermore kernels of paper Table 4, in table order."""
    return [
        hydro_fragment(),
        iccg(),
        tri_diagonal(),
        inner_product(),
        state_fragment(),
    ]
