"""DSP kernels used in paper Table 5.

* **2D-FDCT in H.263 enc** — the forward discrete cosine transform applied
  to an 8x8 block (rows then columns); operation set ``mult, shift, add,
  sub`` and the highest multiplication pressure of all kernels (16
  multiplications mapped in a cycle, paper Table 3).
* **SAD in H.263 enc** — sum of absolute differences for 16x16 motion
  estimation; the only kernel without multiplications, hence the kernel
  that benefits most from the higher clock frequency of the RSP designs
  (35.7% improvement in paper Table 5).
* **MVM** — matrix-vector multiplication, 64 iterations.
* **Multiplication loop in FFT** — the complex twiddle-factor
  multiplication of an FFT butterfly, 32 iterations.

The kernels are synthetic re-creations of the corresponding H.263/DSP loop
bodies (see DESIGN.md for the substitution rationale); their operation
mixes match paper Table 3.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.builder import DFGBuilder
from repro.ir.loops import Kernel

#: Iteration counts reported in paper Table 5 headers (2D-FDCT and SAD work
#: on fixed-size blocks, hence no explicit count in the paper).
PAPER_ITERATIONS = {
    "2D-FDCT": 16,
    "SAD": 16,
    "MVM": 64,
    "FFT": 32,
}


def fdct_2d(iterations: int = PAPER_ITERATIONS["2D-FDCT"]) -> Kernel:
    """2D forward DCT of an 8x8 block, as used by the H.263 encoder.

    The transform is separable: iterations 0–7 apply a fast 8-point DCT to
    the rows of the pixel block, iterations 8–15 apply it to the columns of
    the intermediate result.  Each 8-point transform follows the classic
    butterfly decomposition: a first stage of additions/subtractions, a
    small number of constant multiplications for the even/odd parts and
    scaling shifts before the coefficients are stored.
    """

    def dct_8point(builder: DFGBuilder, source: str, destination: str, line: int,
                   stride_in: int, stride_out: int, base_in: int, base_out: int,
                   state: Dict[str, str]) -> None:
        if "c1" not in state:
            # Fixed-point cosine constants kept in the configuration cache.
            for index, value in enumerate((181, 98, 139, 251, 142, 212, 49)):
                state[f"c{index + 1}"] = builder.const(value, comment=f"cos constant {index + 1}")
        samples = [
            builder.load(source, base_in + position * stride_in, comment=f"{source}[{line},{position}]")
            for position in range(8)
        ]
        # Stage 1: butterflies on mirrored sample pairs.
        sums = [builder.add(samples[position], samples[7 - position]) for position in range(4)]
        diffs = [builder.sub(samples[position], samples[7 - position]) for position in range(4)]
        # Even part (coefficients 0, 2, 4, 6).
        even_sum = builder.add(sums[0], sums[3])
        even_diff = builder.sub(sums[0], sums[3])
        mid_sum = builder.add(sums[1], sums[2])
        mid_diff = builder.sub(sums[1], sums[2])
        coeff0 = builder.shift(builder.add(even_sum, mid_sum), -3, comment="DC scaling")
        coeff4 = builder.shift(builder.sub(even_sum, mid_sum), -3)
        rot2 = builder.add(
            builder.mul(state["c2"], even_diff),
            builder.mul(state["c6"], mid_diff),
        )
        coeff2 = builder.shift(rot2, -8)
        rot6 = builder.sub(
            builder.mul(state["c6"], even_diff),
            builder.mul(state["c2"], mid_diff),
        )
        coeff6 = builder.shift(rot6, -8)
        # Odd part (coefficients 1, 3, 5, 7): four rotations by the
        # remaining cosine constants.
        odd0 = builder.add(
            builder.mul(state["c1"], diffs[0]),
            builder.mul(state["c3"], diffs[1]),
        )
        odd1 = builder.add(
            builder.mul(state["c5"], diffs[2]),
            builder.mul(state["c7"], diffs[3]),
        )
        coeff1 = builder.shift(builder.add(odd0, odd1), -8)
        odd2 = builder.sub(
            builder.mul(state["c3"], diffs[0]),
            builder.mul(state["c7"], diffs[1]),
        )
        odd3 = builder.sub(
            builder.mul(state["c1"], diffs[2]),
            builder.mul(state["c5"], diffs[3]),
        )
        coeff3 = builder.shift(builder.sub(odd2, odd3), -8)
        odd4 = builder.add(
            builder.mul(state["c5"], diffs[0]),
            builder.mul(state["c1"], diffs[3]),
        )
        coeff5 = builder.shift(builder.sub(odd4, builder.mul(state["c7"], diffs[2])), -8)
        odd5 = builder.sub(
            builder.mul(state["c7"], diffs[0]),
            builder.mul(state["c5"], diffs[1]),
        )
        coeff7 = builder.shift(builder.add(odd5, builder.mul(state["c3"], diffs[3])), -8)
        coefficients = [coeff0, coeff1, coeff2, coeff3, coeff4, coeff5, coeff6, coeff7]
        for position, coefficient in enumerate(coefficients):
            builder.store(
                destination,
                base_out + position * stride_out,
                coefficient,
                comment=f"{destination}[{line},{position}]",
            )

    def body(builder: DFGBuilder, iteration: int, state: Dict[str, str]) -> None:
        if iteration < 8:
            # Row pass: read pixel row, write intermediate row.
            dct_8point(
                builder,
                source="block",
                destination="temp",
                line=iteration,
                stride_in=1,
                stride_out=1,
                base_in=iteration * 8,
                base_out=iteration * 8,
                state=state,
            )
        else:
            # Column pass: read intermediate column, write coefficient column.
            column = iteration - 8
            dct_8point(
                builder,
                source="temp",
                destination="coeff",
                line=column,
                stride_in=8,
                stride_out=8,
                base_in=column,
                base_out=column,
                state=state,
            )

    return Kernel(
        name="2D-FDCT",
        body=body,
        iterations=iterations,
        description="8x8 forward DCT of the H.263 encoder (separable row/column passes)",
        source="dsp",
    )


def sad_16x16(iterations: int = PAPER_ITERATIONS["SAD"], width: int = 16) -> Kernel:
    """Sum of absolute differences of a 16x16 block (H.263 motion estimation).

    Each iteration processes one row of the block: it loads the current and
    reference pixels, computes the absolute differences and accumulates
    them with a balanced adder tree; the per-row sums are reduced in the
    epilogue.  No multiplications at all (paper Table 3), so its execution
    time scales purely with the clock period.
    """

    def body(builder: DFGBuilder, row: int, state: Dict[str, str]) -> None:
        absolute_differences: List[str] = []
        for column in range(width):
            current = builder.load("cur", row * width + column)
            reference = builder.load("ref", row * width + column)
            difference = builder.sub(current, reference)
            absolute_differences.append(builder.abs(difference))
        state[f"row{row}"] = builder.sum_tree(absolute_differences, comment=f"row {row} SAD")

    def finalize(builder: DFGBuilder, state: Dict[str, str]) -> None:
        row_sums = [state[key] for key in sorted(state) if key.startswith("row")]
        total = builder.sum_tree(row_sums, comment="total SAD")
        builder.store("sad", 0, total)

    return Kernel(
        name="SAD",
        body=body,
        iterations=iterations,
        finalize=finalize,
        description="16x16 sum of absolute differences of the H.263 encoder",
        source="dsp",
    )


def matrix_vector_multiplication(
    iterations: int = PAPER_ITERATIONS["MVM"],
    vector_length: int = 8,
) -> Kernel:
    """Matrix-vector multiplication ``y[i] = sum_j A[i][j] * x[j]``.

    The paper evaluates MVM with 64 iterations, i.e. at the granularity of
    the fused multiply-accumulate of the innermost loop (an 8x8 matrix
    against an 8-vector).  Each iteration loads one matrix element and one
    vector element, multiplies them and accumulates into the partial sum of
    its output row; finished rows are stored in the epilogue.
    """

    def body(builder: DFGBuilder, iteration: int, state: Dict[str, str]) -> None:
        row = iteration // vector_length
        column = iteration % vector_length
        matrix_value = builder.load("A", iteration, comment=f"A[{row}][{column}]")
        vector_value = builder.load("x", column, comment=f"x[{column}]")
        product = builder.mul(matrix_value, vector_value)
        accumulator = f"acc{row}"
        if accumulator in state:
            state[accumulator] = builder.add(state[accumulator], product)
        else:
            state[accumulator] = product

    def finalize(builder: DFGBuilder, state: Dict[str, str]) -> None:
        for key in sorted(state):
            if not key.startswith("acc"):
                continue
            row = int(key[len("acc"):])
            builder.store("y", row, state[key], comment=f"y[{row}]")

    return Kernel(
        name="MVM",
        body=body,
        iterations=iterations,
        finalize=finalize,
        description="matrix-vector multiplication at multiply-accumulate granularity",
        source="dsp",
    )


def fft_multiplication_loop(iterations: int = PAPER_ITERATIONS["FFT"]) -> Kernel:
    """The twiddle-factor multiplication loop of an FFT butterfly stage.

    Each iteration performs one complex multiplication
    ``(ar + j*ai) * (wr + j*wi)`` followed by the butterfly add/subtract
    against the even-indexed element: four multiplications, additions and
    subtractions (operation set ``add, sub, mult`` in paper Table 3).
    """

    def body(builder: DFGBuilder, k: int, state: Dict[str, str]) -> None:
        a_real = builder.load("ar", k)
        a_imag = builder.load("ai", k)
        w_real = builder.load("wr", k)
        w_imag = builder.load("wi", k)
        b_real = builder.load("br", k)
        b_imag = builder.load("bi", k)
        # Complex multiplication t = a * w.
        t_real = builder.sub(
            builder.mul(a_real, w_real),
            builder.mul(a_imag, w_imag),
        )
        t_imag = builder.add(
            builder.mul(a_real, w_imag),
            builder.mul(a_imag, w_real),
        )
        # Butterfly: out0 = b + t, out1 = b - t.
        builder.store("or0", k, builder.add(b_real, t_real))
        builder.store("oi0", k, builder.add(b_imag, t_imag))
        builder.store("or1", k, builder.sub(b_real, t_real))
        builder.store("oi1", k, builder.sub(b_imag, t_imag))

    return Kernel(
        name="FFT",
        body=body,
        iterations=iterations,
        description="complex twiddle-factor multiplication loop of an FFT butterfly stage",
        source="dsp",
    )


def dsp_kernels() -> List[Kernel]:
    """The four DSP kernels of paper Table 5, in table order."""
    return [
        fdct_2d(),
        sad_16x16(),
        matrix_vector_multiplication(),
        fft_multiplication_loop(),
    ]
