"""Kernel registry and the paper's Table 3 reference data.

The registry maps kernel names (as printed in the paper's tables) to
factories so benchmarks, examples and tests all obtain identical kernel
instances.  :data:`PAPER_TABLE3` records the published operation sets and
maximum multiplications-per-cycle for comparison in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import UnknownKernelError
from repro.ir.loops import Kernel
from repro.kernels.dsp import (
    fdct_2d,
    fft_multiplication_loop,
    matrix_vector_multiplication,
    sad_16x16,
)
from repro.kernels.livermore import (
    hydro_fragment,
    iccg,
    inner_product,
    state_fragment,
    tri_diagonal,
)
from repro.kernels.matmul import matrix_multiplication, matrix_multiplication_column

#: Factories for every kernel evaluated in the paper, keyed by table name.
_KERNEL_FACTORIES: Dict[str, Callable[[], Kernel]] = {
    "Hydro": hydro_fragment,
    "ICCG": iccg,
    "Tri-diagonal": tri_diagonal,
    "Inner product": inner_product,
    "State": state_fragment,
    "2D-FDCT": fdct_2d,
    "SAD": sad_16x16,
    "MVM": matrix_vector_multiplication,
    "FFT": fft_multiplication_loop,
}

#: Names of the Livermore kernels (paper Table 4) in table order.
LIVERMORE_KERNEL_NAMES: Tuple[str, ...] = (
    "Hydro",
    "ICCG",
    "Tri-diagonal",
    "Inner product",
    "State",
)

#: Names of the DSP kernels (paper Table 5) in table order.
DSP_KERNEL_NAMES: Tuple[str, ...] = ("2D-FDCT", "SAD", "MVM", "FFT")

#: All nine evaluated kernels in the order of paper Table 3.
ALL_KERNEL_NAMES: Tuple[str, ...] = LIVERMORE_KERNEL_NAMES + DSP_KERNEL_NAMES


@dataclass(frozen=True)
class Table3Row:
    """One row of paper Table 3: kernel, operation set, max multiplications."""

    kernel: str
    operation_set: Tuple[str, ...]
    max_multiplications: int


#: Paper Table 3 reference data (operation set and the maximum number of
#: multiplications mapped to the array in a single cycle).
PAPER_TABLE3: Dict[str, Table3Row] = {
    "Hydro": Table3Row("Hydro", ("mult", "add"), 6),
    "ICCG": Table3Row("ICCG", ("mult", "sub"), 4),
    "Tri-diagonal": Table3Row("Tri-diagonal", ("mult", "sub"), 4),
    "Inner product": Table3Row("Inner product", ("mult", "add"), 8),
    "State": Table3Row("State", ("mult", "add"), 7),
    "2D-FDCT": Table3Row("2D-FDCT", ("mult", "shift", "add", "sub"), 16),
    "SAD": Table3Row("SAD", ("abs", "add"), 0),
    "MVM": Table3Row("MVM", ("mult", "add"), 8),
    "FFT": Table3Row("FFT", ("add", "sub", "mult"), 8),
}


def kernel_names() -> List[str]:
    """Names of all registered kernels in paper-table order."""
    return list(ALL_KERNEL_NAMES)


def get_kernel(name: str) -> Kernel:
    """Instantiate the registered kernel called ``name``.

    Raises :class:`~repro.errors.UnknownKernelError` for unknown names.
    """
    try:
        factory = _KERNEL_FACTORIES[name]
    except KeyError as exc:
        known = ", ".join(sorted(_KERNEL_FACTORIES))
        raise UnknownKernelError(f"unknown kernel {name!r}; known kernels: {known}") from exc
    return factory()


def livermore_suite() -> List[Kernel]:
    """The Livermore kernels of paper Table 4."""
    return [get_kernel(name) for name in LIVERMORE_KERNEL_NAMES]


def dsp_suite() -> List[Kernel]:
    """The DSP kernels of paper Table 5."""
    return [get_kernel(name) for name in DSP_KERNEL_NAMES]


def paper_suite() -> List[Kernel]:
    """All nine kernels evaluated by the paper, in Table 3 order."""
    return [get_kernel(name) for name in ALL_KERNEL_NAMES]


def example_kernels() -> List[Kernel]:
    """Additional kernels used by examples and figures (not in the tables)."""
    return [matrix_multiplication(order=4), matrix_multiplication_column(order=4)]
