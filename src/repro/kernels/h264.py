"""H.264 encoder kernels (the paper's stated future work).

The paper closes with "we are currently working on implementing H.264
encoder on our architecture template".  This module provides two of the
H.264 baseline-encoder loops so the RSP flow can be exercised on that
domain as well:

* the **4x4 forward integer transform** used for residual coding — a
  multiplier-free butterfly (additions, subtractions and shifts only),
  which, like SAD, benefits purely from the RSP clock-period reduction;
* the **quarter-pel interpolation** 6-tap FIR filter of the motion
  compensation path — multiplication heavy, which stresses the shared
  multipliers like 2D-FDCT does.

Neither kernel appears in the paper's tables; they extend the evaluated
domain and are used by the ``bench_extension_h264`` benchmark.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.builder import DFGBuilder
from repro.ir.loops import Kernel


def integer_transform_4x4(iterations: int = 8) -> Kernel:
    """H.264 4x4 forward integer transform (rows then columns of one block).

    Iterations 0–3 transform the rows of the 4x4 residual block, iterations
    4–7 the columns of the intermediate result.  The butterfly uses only
    additions, subtractions and shifts (the factor-2 multiplications of the
    transform matrix are strength-reduced to shifts), so the kernel contains
    no array-multiplier operations at all.
    """

    def transform_line(builder: DFGBuilder, source: str, destination: str,
                       base: int, stride: int) -> None:
        samples = [builder.load(source, base + position * stride) for position in range(4)]
        sum03 = builder.add(samples[0], samples[3])
        sum12 = builder.add(samples[1], samples[2])
        diff03 = builder.sub(samples[0], samples[3])
        diff12 = builder.sub(samples[1], samples[2])
        out0 = builder.add(sum03, sum12)
        out2 = builder.sub(sum03, sum12)
        out1 = builder.add(builder.shift(diff03, 1), diff12)
        out3 = builder.sub(diff03, builder.shift(diff12, 1))
        for position, value in enumerate((out0, out1, out2, out3)):
            builder.store(destination, base + position * stride, value)

    def body(builder: DFGBuilder, iteration: int, state: Dict[str, str]) -> None:
        if iteration < 4:
            transform_line(builder, "residual", "horiz", base=iteration * 4, stride=1)
        else:
            column = iteration - 4
            transform_line(builder, "horiz", "coeff", base=column, stride=4)

    return Kernel(
        name="H264-IT4x4",
        body=body,
        iterations=iterations,
        description="H.264 4x4 forward integer transform (multiplier-free butterfly)",
        source="h264",
    )


def quarter_pel_interpolation(iterations: int = 16, taps: int = 6) -> Kernel:
    """H.264 six-tap half-pel interpolation filter (one output pixel per iteration).

    ``out[n] = sum_k w[k] * pel[n + k]`` with the (1, -5, 20, 20, -5, 1)
    weights held as constants in the configuration cache; the rounding shift
    is applied before the store.  One multiplication per tap makes this the
    multiplication-heavy member of the H.264 pair.
    """

    def body(builder: DFGBuilder, n: int, state: Dict[str, str]) -> None:
        if "w0" not in state:
            for index, weight in enumerate((1, -5, 20, 20, -5, 1)[:taps]):
                state[f"w{index}"] = builder.const(weight, comment=f"tap weight {index}")
        products: List[str] = []
        for tap in range(taps):
            pixel = builder.load("pel", n + tap)
            products.append(builder.mul(state[f"w{tap}"], pixel))
        total = builder.sum_tree(products)
        builder.store("half", n, builder.shift(total, -5, comment="rounding shift"))

    return Kernel(
        name="H264-QPEL",
        body=body,
        iterations=iterations,
        description="H.264 six-tap half-pel interpolation filter",
        source="h264",
    )


def h264_kernels() -> List[Kernel]:
    """The H.264 extension kernels (future-work domain)."""
    return [integer_transform_4x4(), quarter_pel_interpolation()]
