"""Matrix-multiplication kernel — the paper's running example (Figs. 2 and 6).

The paper illustrates loop pipelining and resource sharing with

.. math::

    Z(i, j) = C \\times \\sum_{k=0}^{N-1} X(i, k) \\cdot Y(k, j)

executed on an ``N x N`` array (Figure 1), where ``C`` is a constant held
in the configuration cache.  Each loop iteration of the kernel computes one
output element: it loads the operand pairs, multiplies them, reduces the
products and scales the sum by ``C`` before storing it.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import KernelError
from repro.ir.builder import DFGBuilder
from repro.ir.loops import Kernel


def matrix_multiplication(order: int = 4, constant: int = 1) -> Kernel:
    """Kernel computing ``Z = C * (X @ Y)`` for square matrices of ``order``.

    Parameters
    ----------
    order:
        Matrix order ``N``; the kernel has ``N * N`` iterations, one per
        output element.
    constant:
        The constant ``C`` of paper Eq. 1, stored in the configuration
        cache and applied as a final scaling multiplication.
    """
    if order < 1:
        raise KernelError(f"matrix order must be positive, got {order}")

    def body(builder: DFGBuilder, iteration: int, state: Dict[str, str]) -> None:
        row = iteration // order
        col = iteration % order
        products = []
        for k in range(order):
            x_value = builder.load("X", row * order + k, comment=f"X({row},{k})")
            y_value = builder.load("Y", k * order + col, comment=f"Y({k},{col})")
            products.append(builder.mul(x_value, y_value, comment=f"X({row},{k})*Y({k},{col})"))
        total = builder.sum_tree(products, comment=f"sum Z({row},{col})")
        if constant != 1:
            scale = builder.const(constant, comment="C")
            total = builder.mul(total, scale, comment=f"C*Z({row},{col})")
        builder.store("Z", row * order + col, total, comment=f"Z({row},{col})")

    return Kernel(
        name=f"MatMul{order}x{order}",
        body=body,
        iterations=order * order,
        description=(
            f"order-{order} matrix multiplication Z = C*(X@Y), the paper's "
            "loop-pipelining example (Figures 2 and 6)"
        ),
        source="example",
    )


def matrix_multiplication_column(order: int = 4, constant: int = 1) -> Kernel:
    """Variant with one iteration per *output column*, as drawn in Figure 2.

    Paper Figure 2 maps one column of the result matrix to each column of
    the 4x4 array, with the PEs of that column each producing one element.
    This kernel mirrors that granularity: iteration ``j`` computes the
    ``order`` elements of output column ``j``.
    """
    if order < 1:
        raise KernelError(f"matrix order must be positive, got {order}")

    def body(builder: DFGBuilder, iteration: int, state: Dict[str, str]) -> None:
        col = iteration
        for row in range(order):
            products = []
            for k in range(order):
                x_value = builder.load("X", row * order + k, comment=f"X({row},{k})")
                y_value = builder.load("Y", k * order + col, comment=f"Y({k},{col})")
                products.append(builder.mul(x_value, y_value))
            total = builder.sum_tree(products)
            if constant != 1:
                scale = builder.const(constant, comment="C")
                total = builder.mul(total, scale)
            builder.store("Z", row * order + col, total, comment=f"Z({row},{col})")

    return Kernel(
        name=f"MatMulCol{order}",
        body=body,
        iterations=order,
        description=(
            f"order-{order} matrix multiplication with one output column per "
            "iteration (Figure 2 granularity)"
        ),
        source="example",
    )
