"""Benchmark kernels: Livermore loops, DSP kernels and the matmul example."""

from repro.kernels.livermore import (
    hydro_fragment,
    iccg,
    inner_product,
    livermore_kernels,
    state_fragment,
    tri_diagonal,
)
from repro.kernels.dsp import (
    dsp_kernels,
    fdct_2d,
    fft_multiplication_loop,
    matrix_vector_multiplication,
    sad_16x16,
)
from repro.kernels.matmul import matrix_multiplication, matrix_multiplication_column
from repro.kernels.h264 import h264_kernels, integer_transform_4x4, quarter_pel_interpolation
from repro.kernels.registry import (
    ALL_KERNEL_NAMES,
    DSP_KERNEL_NAMES,
    LIVERMORE_KERNEL_NAMES,
    PAPER_TABLE3,
    Table3Row,
    dsp_suite,
    example_kernels,
    get_kernel,
    kernel_names,
    livermore_suite,
    paper_suite,
)

__all__ = [
    "hydro_fragment",
    "iccg",
    "inner_product",
    "livermore_kernels",
    "state_fragment",
    "tri_diagonal",
    "dsp_kernels",
    "fdct_2d",
    "fft_multiplication_loop",
    "matrix_vector_multiplication",
    "sad_16x16",
    "matrix_multiplication",
    "matrix_multiplication_column",
    "h264_kernels",
    "integer_transform_4x4",
    "quarter_pel_interpolation",
    "ALL_KERNEL_NAMES",
    "DSP_KERNEL_NAMES",
    "LIVERMORE_KERNEL_NAMES",
    "PAPER_TABLE3",
    "Table3Row",
    "dsp_suite",
    "example_kernels",
    "get_kernel",
    "kernel_names",
    "livermore_suite",
    "paper_suite",
]
