"""Incremental Pareto frontiers for streaming design-space exploration.

The seed's exploration collected every feasible design first and then ran
an O(n²) all-pairs dominance scan.  This module provides the replacement
used across the code base:

* :func:`pareto_front_indices` — a one-shot front extraction that runs in
  O(n log n) for the ubiquitous two-objective (area vs. execution time)
  case via a sort-based sweep, and in O(n · |front|) for higher
  dimensions;
* :class:`ParetoFrontier` — a streaming frontier with incremental
  insertion, used by the evaluation engine to reject dominated candidates
  *while* a campaign is still running (the dominance-based early-reject
  filter) and to keep a live front without rescanning.

All objectives are minimised, matching :mod:`repro.core.pareto`.  Points
with identical objective vectors are mutually non-dominated and are all
retained, exactly like the naive scan.

The module is deliberately dependency-free (no imports from the rest of
the package) so the low-level :mod:`repro.core.pareto` helpers can build
on it without an import cycle.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterator, List, Optional, Sequence, Tuple


def _dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when vector ``a`` Pareto-dominates ``b`` (minimisation)."""
    no_worse = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return no_worse and strictly_better


def _front_indices_2d(vectors: Sequence[Sequence[float]]) -> List[int]:
    """Sort-based sweep for the two-objective case, O(n log n).

    After sorting by (x, y), a point is non-dominated iff its y equals the
    minimum y of its equal-x group and every strictly-smaller x seen so far
    has a strictly larger y.
    """
    order = sorted(range(len(vectors)), key=lambda index: (vectors[index][0], vectors[index][1]))
    keep: List[int] = []
    best_y = float("inf")
    position = 0
    while position < len(order):
        group_x = vectors[order[position]][0]
        group_end = position
        group_min_y = float("inf")
        while group_end < len(order) and vectors[order[group_end]][0] == group_x:
            group_min_y = min(group_min_y, vectors[order[group_end]][1])
            group_end += 1
        if group_min_y < best_y:
            keep.extend(
                order[index]
                for index in range(position, group_end)
                if vectors[order[index]][1] == group_min_y
            )
            best_y = group_min_y
        position = group_end
    keep.sort()
    return keep


def _front_indices_general(vectors: Sequence[Sequence[float]]) -> List[int]:
    """Incremental front maintenance for any number of objectives.

    Each point is compared against the current front only; dominance is
    transitive, so a point dominated by *any* point is dominated by a front
    member.  Worst case O(n · |front|), typically far below O(n²).
    """
    front: List[int] = []
    for index, vector in enumerate(vectors):
        if any(_dominates(vectors[member], vector) for member in front):
            continue
        front = [member for member in front if not _dominates(vector, vectors[member])]
        front.append(index)
    front.sort()
    return front


def pareto_front_indices(vectors: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated vectors (minimisation), in input order.

    Semantically identical to the naive all-pairs scan, including duplicate
    handling (equal vectors are all kept).
    """
    if not vectors:
        return []
    width = len(vectors[0])
    if any(len(vector) != width for vector in vectors):
        raise ValueError("objective vectors must have the same length")
    if width == 2:
        return _front_indices_2d(vectors)
    return _front_indices_general(vectors)


class ParetoFrontier:
    """A Pareto frontier supporting streaming insertion (minimisation).

    For two objectives the frontier is kept sorted by the first objective,
    so the second objective is strictly decreasing across distinct first
    values; insertion and dominance queries cost O(log n) plus the number
    of newly dominated points removed.  Higher dimensions fall back to a
    linear scan over the (small) front.

    ``add`` returns ``True`` when the point joined the frontier and
    ``False`` when it was dominated by an existing member.  Equal vectors
    never dominate each other, so duplicates accumulate — matching the
    one-shot :func:`pareto_front_indices` semantics.
    """

    def __init__(self, num_objectives: int = 2) -> None:
        if num_objectives < 1:
            raise ValueError("a frontier needs at least one objective")
        self.num_objectives = num_objectives
        # 2-objective representation: entries sorted by (x, y); items kept
        # in a parallel list.  General representation: unsorted pairs.
        self._keys: List[Tuple[float, ...]] = []
        self._items: List[Any] = []

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Tuple[Tuple[float, ...], Any]]:
        return iter(zip(self._keys, self._items))

    def items(self) -> List[Any]:
        """The frontier members, sorted by the first objective (2-obj case)."""
        return list(self._items)

    def vectors(self) -> List[Tuple[float, ...]]:
        """Objective vectors of the frontier members."""
        return list(self._keys)

    # ------------------------------------------------------------------
    # Snapshot / restore (campaign checkpoints)
    # ------------------------------------------------------------------
    def snapshot(self) -> List[List[float]]:
        """JSON-serialisable frontier state: the member vectors, in order.

        Frontier members are mutually non-dominated, so the vectors alone
        reconstruct the frontier exactly — and because every dominated
        point was already rejected at insertion time, restoring a snapshot
        is equivalent to replaying the full point stream it was built from
        (the checkpoint/restore property test pins this down).  Items are
        deliberately not snapshotted; checkpoints carry evaluation records
        separately and re-associate them on resume.
        """
        return [list(key) for key in self._keys]

    @classmethod
    def restore(cls, vectors: Sequence[Sequence[float]], num_objectives: int = 2) -> "ParetoFrontier":
        """Rebuild a frontier from a :meth:`snapshot` payload."""
        frontier = cls(num_objectives=num_objectives)
        for vector in vectors:
            frontier.add(vector)
        return frontier

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def dominated(self, vector: Sequence[float]) -> bool:
        """True when ``vector`` is dominated by a current frontier member."""
        key = self._check(vector)
        if self.num_objectives != 2:
            return any(_dominates(member, key) for member in self._keys)
        if not self._keys:
            return False
        position = bisect_left(self._keys, key)
        if position == 0:
            return False
        # bisect_left guarantees keys[position - 1] < key strictly, and on
        # a frontier the closest such entry carries the minimal y over all
        # entries with (x', y') < (x, y); it dominates iff y' <= y.  An
        # exact duplicate sits *at* ``position`` and is never consulted, so
        # duplicates correctly come back non-dominated.
        left_y = self._keys[position - 1][1]
        return left_y <= key[1]

    def min_second_objective_at_or_below(self, first: float) -> float:
        """Smallest second objective over members with first objective <= ``first``.

        Returns ``inf`` when no member qualifies.  Only defined for the
        two-objective frontier; used by the early-reject filter to compare
        a candidate's execution-time lower bound against completed points.
        """
        if self.num_objectives != 2:
            raise ValueError("second-objective queries need a two-objective frontier")
        position = bisect_left(self._keys, (first, float("inf")))
        if position == 0:
            return float("inf")
        return self._keys[position - 1][1]

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def add(self, vector: Sequence[float], item: Any = None) -> bool:
        """Insert ``item`` with objective ``vector``; True when non-dominated."""
        key = self._check(vector)
        if self.num_objectives != 2:
            return self._add_general(key, item)
        if self.dominated(key):
            return False
        position = bisect_left(self._keys, key)
        # Drop members the new point dominates: they sit to the right with
        # y >= new y (skipping exact duplicates, which are never dominated).
        cursor = position
        while cursor < len(self._keys) and self._keys[cursor][1] >= key[1]:
            if self._keys[cursor] == key:
                cursor += 1
                continue
            del self._keys[cursor]
            del self._items[cursor]
        self._keys.insert(position, key)
        self._items.insert(position, item)
        return True

    def add_many(
        self, vectors: Sequence[Sequence[float]], items: Optional[Sequence[Any]] = None
    ) -> int:
        """Bulk-insert a wave of points; returns how many joined the frontier.

        Equivalent to calling :meth:`add` once per vector — dominance is
        transitive, so the final frontier is the non-dominated subset of
        the union regardless of insertion order — but computed as a
        single merge of two sorted lists plus one linear sweep instead of
        ``m`` binary insertions with element shifting.  Used by the
        evaluation engine to fold a whole wave of computed results into
        the early-reject frontier at once.
        """
        if items is not None and len(items) != len(vectors):
            raise ValueError("items must align one-to-one with vectors")
        if not vectors:
            return 0
        if self.num_objectives != 2:
            added = 0
            for position, vector in enumerate(vectors):
                item = items[position] if items is not None else None
                if self.add(vector, item):
                    added += 1
            return added
        incoming = sorted(
            (
                (self._check(vector), items[position] if items is not None else None, True)
                for position, vector in enumerate(vectors)
            ),
            key=lambda entry: entry[0],
        )
        existing = [
            (key, item, False) for key, item in zip(self._keys, self._items)
        ]
        # Merge the two sorted runs (existing entries first on key ties,
        # mirroring sequential-add behaviour for duplicates), then sweep:
        # on a (x, y)-sorted sequence a point survives iff its y strictly
        # improves the best y seen so far, or it duplicates the point
        # that set that best — the same front-with-duplicates semantics
        # as sequential insertion.
        merged: List[Tuple[Tuple[float, ...], Any, bool]] = []
        i = j = 0
        while i < len(existing) and j < len(incoming):
            if existing[i][0] <= incoming[j][0]:
                merged.append(existing[i])
                i += 1
            else:
                merged.append(incoming[j])
                j += 1
        merged.extend(existing[i:])
        merged.extend(incoming[j:])
        keys: List[Tuple[float, ...]] = []
        kept_items: List[Any] = []
        added = 0
        best_y = float("inf")
        best_key: Optional[Tuple[float, ...]] = None
        for key, item, is_new in merged:
            if key[1] < best_y:
                best_y = key[1]
                best_key = key
            elif key != best_key:
                continue
            keys.append(key)
            kept_items.append(item)
            if is_new:
                added += 1
        self._keys = keys
        self._items = kept_items
        return added

    def _add_general(self, key: Tuple[float, ...], item: Any) -> bool:
        if any(_dominates(member, key) for member in self._keys):
            return False
        survivors = [
            index for index, member in enumerate(self._keys) if not _dominates(key, member)
        ]
        if len(survivors) != len(self._keys):
            self._keys = [self._keys[index] for index in survivors]
            self._items = [self._items[index] for index in survivors]
        self._keys.append(key)
        self._items.append(item)
        return True

    def _check(self, vector: Sequence[float]) -> Tuple[float, ...]:
        key = tuple(vector)
        if len(key) != self.num_objectives:
            raise ValueError(
                f"expected {self.num_objectives} objectives, got {len(key)}"
            )
        return key
