"""repro.engine — parallel, cache-backed exploration campaigns.

The seed's :meth:`~repro.core.exploration.RSPDesignSpaceExplorer.explore`
mirrors the paper's Figure 7 literally: every candidate is evaluated
serially, from scratch, and the Pareto front is recomputed with an O(n²)
scan.  This package turns that one-shot loop into an exploration
*service*:

Campaign lifecycle
    A :class:`~repro.engine.jobs.CampaignSpec` names the kernel suites,
    the candidate grid, the feasibility constraints and the executor.
    The :class:`~repro.engine.runner.CampaignRunner` profiles each
    suite's kernels on the base architecture, evaluates the grid through
    the engine and emits a :class:`~repro.engine.runner.CampaignReport`
    (a dataclass tree that serialises via
    :func:`repro.utils.serialization.to_json`).

Content-hashed jobs and the persistent cache
    Every candidate evaluation is an
    :class:`~repro.engine.jobs.EvaluationJob` whose SHA-256 identity
    covers the candidate parameters *and* the full evaluation context
    (schedule profiles, array, model calibration).  The JSON-lines
    :class:`~repro.engine.cache.EvaluationCache` memoises completed
    evaluations by that key, so repeated sweeps and overlapping grids
    never recompute — and a record can never be stale, because any input
    change changes the key.

Unified storage layer
    Both persistent stores sit on :mod:`repro.store`: sharded,
    lock-protected backends that multiple processes can write
    concurrently, plus a :class:`~repro.store.StoreJanitor` for
    age-based GC and compaction (``--store-shards``, ``--gc-max-age``
    and ``--compact`` on the CLI).

Executor selection
    :class:`~repro.engine.executor.ExecutorConfig` picks the backend:
    ``serial`` (the seed's behaviour), ``thread`` or ``process``
    (a :class:`~concurrent.futures.ProcessPoolExecutor`; candidates are
    dispatched in chunks, the evaluation context ships to each worker
    once).  A dominance-based early-reject filter can skip provably
    dominated candidates before the expensive stall estimation.

Incremental Pareto frontiers
    :class:`~repro.engine.frontier.ParetoFrontier` supports streaming
    insertion (a sorted sweep for the two-objective area/time case) and
    backs both the early-reject filter and the O(n log n)
    :func:`~repro.core.pareto.pareto_front_vectors` replacement.

Command line::

    python -m repro.engine --suite paper --workers 4 --output report.json

runs a campaign and writes the JSON report; an identical second
invocation is served almost entirely from the cache.
"""

from repro.engine.artifacts import ArtifactStore, ArtifactStoreStats
from repro.engine.cache import CacheStats, EvaluationCache
from repro.engine.checkpoint import (
    CampaignCheckpoint,
    SuiteCheckpoint,
    campaign_fingerprint,
)
from repro.engine.executor import (
    BACKENDS,
    EngineExplorationOutcome,
    EngineRunStats,
    EvaluationEngine,
    ExecutorConfig,
    WaveObserver,
    WaveOutcome,
    WaveResult,
    run_exploration,
)
from repro.engine.frontier import ParetoFrontier, pareto_front_indices
from repro.engine.stream import (
    EVENT_TYPES,
    AsyncPrefetcher,
    CampaignEvent,
    CampaignStreamController,
    EventLog,
    StreamReplay,
    deterministic_report_payload,
    replay_events,
    write_stream_report,
)
from repro.engine.jobs import (
    SUITE_NAMES,
    CampaignSpec,
    EvaluationJob,
    evaluation_context_hash,
    hash_payload,
    suite_kernels,
)
from repro.engine.runner import CampaignReport, CampaignRunner, SuiteReport
from repro.store import StoreJanitor, StoreStats

__all__ = [
    "BACKENDS",
    "EVENT_TYPES",
    "SUITE_NAMES",
    "ArtifactStore",
    "ArtifactStoreStats",
    "AsyncPrefetcher",
    "CacheStats",
    "CampaignCheckpoint",
    "CampaignEvent",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStreamController",
    "EngineExplorationOutcome",
    "EngineRunStats",
    "EvaluationCache",
    "EvaluationEngine",
    "EvaluationJob",
    "EventLog",
    "ExecutorConfig",
    "ParetoFrontier",
    "StoreJanitor",
    "StoreStats",
    "StreamReplay",
    "SuiteCheckpoint",
    "SuiteReport",
    "WaveObserver",
    "WaveOutcome",
    "WaveResult",
    "campaign_fingerprint",
    "deterministic_report_payload",
    "evaluation_context_hash",
    "hash_payload",
    "pareto_front_indices",
    "replay_events",
    "run_exploration",
    "suite_kernels",
    "write_stream_report",
]
