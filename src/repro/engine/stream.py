"""Streaming campaign mode: event logs, wave checkpoints, async prefetch.

Long campaigns used to be a black box that produced one JSON report at
the very end — a crash at wave N-1 lost everything except what the store
had cached.  This module makes a campaign *observable*, *interruptible*
and *resumable*:

Event log
    Every wave emits structured events (``campaign_start``,
    ``wave_start``, ``result``, ``frontier_update``, ``wave_end``,
    ``campaign_end``) to an append-only JSON-lines file next to the
    report.  Each line is self-contained, flushed as soon as it is
    emitted, and replayable (:func:`replay_events` validates the schema
    and rebuilds the campaign's trajectory).

Checkpoint
    After every wave the :class:`~repro.engine.checkpoint.CampaignCheckpoint`
    snapshots the completed-job records and the incremental Pareto
    frontier with a write-then-rename (crash-atomic) store.  A campaign
    killed at any point and restarted with ``resume=True`` re-enqueues
    only unfinished jobs and converges to a final report byte-identical
    to an uninterrupted run's (:func:`write_stream_report`).

Async prefetch
    :class:`AsyncPrefetcher` is a single background worker that overlaps
    store round trips with compute: while wave N evaluates, wave N+1's
    batched evaluation-cache ``mget`` is already in flight, and while a
    suite explores, the next suite's mapping-stage artifact keys
    (:meth:`repro.mapping.pipeline.MappingPipeline.stage_keys`) are
    fetched into the artifact store's memory front.

Determinism note: the streaming final report deliberately contains only
*reproducible* fields (selections, fronts, candidate counts, metric
values).  Wall times and hit/miss counters necessarily differ between an
uninterrupted run and a killed-and-resumed one, so they live in the event
log — which is a faithful journal, not a comparison target.
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple, Union

from repro.engine.cache import evaluation_record
from repro.engine.checkpoint import (
    CHECKPOINT_FILENAME,
    CampaignCheckpoint,
    SuiteCheckpoint,
    campaign_fingerprint,
)
from repro.engine.executor import WaveObserver, WaveOutcome
from repro.engine.frontier import ParetoFrontier
from repro.engine.jobs import CampaignSpec
from repro.errors import ExplorationError
from repro.store.locks import lock_path_for

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.exploration import DesignPointEvaluation
    from repro.engine.runner import CampaignReport

#: Event types a campaign stream may emit, in their natural order.
#: ``lease`` and ``requeue`` are the coordinator's journal entries
#: (:mod:`repro.service.coordinator`): a ``lease`` opens a wave exactly as
#: a ``wave_start`` does, a ``requeue`` marks a lease whose worker missed
#: its heartbeat deadline.
EVENT_TYPES: Tuple[str, ...] = (
    "campaign_start",
    "wave_start",
    "lease",
    "result",
    "frontier_update",
    "requeue",
    "wave_end",
    "campaign_end",
)

#: Default event-log file name inside a stream directory.
EVENTS_FILENAME = "events.jsonl"

#: Schema marker stamped into every event line.
EVENT_VERSION = 1


# ----------------------------------------------------------------------
# Events and the append-only log
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignEvent:
    """One line of the campaign event log."""

    sequence: int
    type: str
    timestamp: float
    data: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "v": EVENT_VERSION,
            "seq": self.sequence,
            "type": self.type,
            "ts": self.timestamp,
            "data": self.data,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignEvent":
        if not isinstance(payload, dict):
            raise ValueError(f"event lines are JSON objects, got {type(payload).__name__}")
        event_type = payload.get("type")
        if event_type not in EVENT_TYPES:
            raise ValueError(f"unknown event type {event_type!r}")
        data = payload.get("data", {})
        if not isinstance(data, dict):
            raise ValueError("event data must be an object")
        return cls(
            sequence=int(payload["seq"]),
            type=str(event_type),
            timestamp=float(payload.get("ts", 0.0)),
            data=data,
        )


class EventLog:
    """Append-only JSON-lines event writer/reader.

    Each event is one line, written and flushed atomically enough for a
    SIGKILL to lose at most the line being written; readers skip a torn
    trailing line.  Reopening an existing log continues the sequence
    numbering (and heals a missing trailing newline first), so a resumed
    campaign appends to the same journal.

    Event logs are **single-writer**: the torn-tail heal and the sequence
    continuation both assume exactly one appender, so opening one takes a
    non-blocking exclusive ``flock`` on a ``.lock`` sibling (held for the
    handle's lifetime, released automatically if the process is killed)
    and :meth:`emit` additionally refuses to run in a forked child — the
    same convention as :class:`repro.trace.db.TraceDB`.  Readers are
    unaffected; fleet workers route their results through the coordinator
    instead of sharing one stream directory.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.emitted = 0
        self._sequence = -1
        self._pid = os.getpid()
        self._lock_descriptor: Optional[int] = None
        self._acquire_writer_lock()
        needs_newline = False
        if self.path.is_file() and self.path.stat().st_size:
            raw = self.path.read_bytes()
            needs_newline = not raw.endswith(b"\n")
            for event in self._parse_lines(
                raw.decode("utf-8", errors="replace").splitlines()
            ):
                self._sequence = max(self._sequence, event.sequence)
        self._handle = self.path.open("a", encoding="utf-8")
        if needs_newline:
            # A previous run died mid-line; terminate the torn line so the
            # next event starts clean (readers drop the torn one).
            self._handle.write("\n")
            self._handle.flush()

    def _acquire_writer_lock(self) -> None:
        """Take the exclusive writer lock, or fail with the holder's pid."""
        if fcntl is None:  # pragma: no cover - POSIX everywhere we run
            return
        lock_path = lock_path_for(self.path)
        descriptor = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(descriptor, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            holder = b""
            try:
                holder = os.read(descriptor, 64)
            except OSError:
                pass
            os.close(descriptor)
            owner = holder.decode("utf-8", errors="replace").strip()
            raise ExplorationError(
                f"event log {self.path} is already open for writing"
                + (f" by pid {owner}" if owner else "")
                + "; event logs are single-writer — two processes appending "
                "to one journal would interleave and corrupt its sequence. "
                "Use a separate stream directory per process, or route "
                "fleet results through the campaign coordinator."
            )
        os.ftruncate(descriptor, 0)
        os.write(descriptor, f"{self._pid}\n".encode("utf-8"))
        self._lock_descriptor = descriptor

    def emit(self, event_type: str, **data: Any) -> CampaignEvent:
        """Append one event and flush it to the OS immediately."""
        if event_type not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {event_type!r}; known: {', '.join(EVENT_TYPES)}"
            )
        if os.getpid() != self._pid:
            raise ExplorationError(
                f"event log {self.path} belongs to pid {self._pid}; this "
                f"process (pid {os.getpid()}) inherited the handle across a "
                "fork — event logs are single-writer, so forked workers must "
                "ship results through the parent instead of emitting directly"
            )
        self._sequence += 1
        event = CampaignEvent(
            sequence=self._sequence, type=event_type, timestamp=time.time(), data=data
        )
        self._handle.write(
            json.dumps(event.as_dict(), sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._handle.flush()
        self.emitted += 1
        return event

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()
        if self._lock_descriptor is not None and os.getpid() == self._pid:
            try:
                if fcntl is not None:
                    fcntl.flock(self._lock_descriptor, fcntl.LOCK_UN)
                os.close(self._lock_descriptor)
            except OSError:  # pragma: no cover - descriptor already gone
                pass
            self._lock_descriptor = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _parse_lines(lines, strict: bool = False) -> List[CampaignEvent]:
        events: List[CampaignEvent] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(CampaignEvent.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError):
                if strict:
                    raise
        return events

    @staticmethod
    def read(path: Union[str, Path], strict: bool = False) -> List[CampaignEvent]:
        """Parse the events stored at ``path``.

        Torn or foreign lines are skipped (a crash can truncate the final
        line); ``strict=True`` raises on them instead — the schema
        round-trip tests use that to prove every emitted line parses.
        """
        path = Path(path)
        if not path.is_file():
            return []
        with path.open("r", encoding="utf-8") as handle:
            return EventLog._parse_lines(handle, strict)


# ----------------------------------------------------------------------
# Replay: schema validation + trajectory reconstruction
# ----------------------------------------------------------------------
@dataclass
class StreamReplay:
    """What a validated event log describes."""

    events: int = 0
    campaigns: int = 0
    completed_campaigns: int = 0
    waves_started: Dict[str, int] = field(default_factory=dict)
    waves_completed: Dict[str, int] = field(default_factory=dict)
    results: Dict[str, int] = field(default_factory=dict)
    frontiers: Dict[str, ParetoFrontier] = field(default_factory=dict)
    #: Coordinator journals only: leases granted / requeued per suite.
    leases: Dict[str, int] = field(default_factory=dict)
    requeues: Dict[str, int] = field(default_factory=dict)

    def frontier_vectors(self, suite: str) -> List[List[float]]:
        frontier = self.frontiers.get(suite)
        return frontier.snapshot() if frontier is not None else []


def replay_events(events: List[CampaignEvent]) -> StreamReplay:
    """Validate an event stream and rebuild the campaign trajectory.

    Raises :class:`~repro.errors.ExplorationError` on schema violations:
    non-monotonic sequence numbers, wave events before any campaign
    started, or a ``wave_end`` without its ``wave_start``.  Frontiers are
    rebuilt by replaying every ``frontier_update`` in order, which must
    reproduce the checkpoint's snapshot exactly.
    """
    replay = StreamReplay()
    last_sequence = -1
    open_waves: Dict[Tuple[str, int], int] = {}
    for event in events:
        if event.sequence <= last_sequence:
            raise ExplorationError(
                f"event sequence went backwards: {event.sequence} after {last_sequence}"
            )
        last_sequence = event.sequence
        replay.events += 1
        if event.type == "campaign_start":
            replay.campaigns += 1
            continue
        if replay.campaigns == 0:
            raise ExplorationError(
                f"event {event.type!r} before any campaign_start"
            )
        if event.type == "campaign_end":
            replay.completed_campaigns += 1
            continue
        suite = event.data.get("suite")
        if not isinstance(suite, str) or not suite:
            raise ExplorationError(f"event {event.type!r} names no suite")
        if event.type in ("wave_start", "wave_end", "lease", "requeue"):
            try:
                wave = int(event.data["wave"])
            except (KeyError, TypeError, ValueError):
                raise ExplorationError(
                    f"{event.type} event carries no usable wave number: {event.data!r}"
                )
        if event.type == "wave_start":
            open_waves[(suite, wave)] = event.sequence
            replay.waves_started[suite] = replay.waves_started.get(suite, 0) + 1
        elif event.type == "lease":
            # A coordinator lease opens the wave exactly as wave_start does
            # (a requeued wave is simply leased — and opened — again).
            open_waves[(suite, wave)] = event.sequence
            replay.waves_started[suite] = replay.waves_started.get(suite, 0) + 1
            replay.leases[suite] = replay.leases.get(suite, 0) + 1
        elif event.type == "requeue":
            if (suite, wave) not in open_waves:
                raise ExplorationError(
                    f"requeue for {suite!r} wave {wave} without a lease"
                )
            del open_waves[(suite, wave)]
            replay.requeues[suite] = replay.requeues.get(suite, 0) + 1
        elif event.type == "wave_end":
            if (suite, wave) not in open_waves:
                raise ExplorationError(
                    f"wave_end for {suite!r} wave {wave} without a wave_start"
                )
            del open_waves[(suite, wave)]
            replay.waves_completed[suite] = replay.waves_completed.get(suite, 0) + 1
        elif event.type == "result":
            replay.results[suite] = replay.results.get(suite, 0) + 1
        elif event.type == "frontier_update":
            vector = event.data.get("vector")
            if not isinstance(vector, (list, tuple)) or len(vector) != 2:
                raise ExplorationError("frontier_update events carry a 2-objective vector")
            frontier = replay.frontiers.setdefault(suite, ParetoFrontier(num_objectives=2))
            frontier.add(tuple(float(value) for value in vector))
    return replay


# ----------------------------------------------------------------------
# Async prefetch
# ----------------------------------------------------------------------
class PrefetchHandle:
    """Completion handle of one submitted prefetch task.

    A thin view over the underlying future: the task's exception (if any)
    was already captured into :attr:`error` by the submission wrapper, so
    :meth:`wait` never raises — prefetch is advisory and a failure simply
    means the synchronous path serves the miss later.
    """

    __slots__ = ("label", "_future", "_error_cell")

    def __init__(
        self, label: str, future: "Future[Any]", error_cell: List[Optional[BaseException]]
    ) -> None:
        self.label = label
        self._future = future
        self._error_cell = error_cell

    @property
    def error(self) -> Optional[BaseException]:
        """The exception the task raised, if any (captured, never re-raised)."""
        return self._error_cell[0]

    @property
    def done(self) -> bool:
        return self._future.done()

    @property
    def result(self) -> Any:
        """The task's return value, or ``None`` while pending / on error."""
        return self._future.result() if self._future.done() else None

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until the task finished; returns its result (``None`` on error)."""
        try:
            return self._future.result(timeout)
        except FuturesTimeoutError:
            return None


class AsyncPrefetcher:
    """A single background worker that overlaps store I/O with compute.

    A ``ThreadPoolExecutor(max_workers=1)`` in strict submission order —
    the point is overlap with the *main* thread, not parallel fan-out,
    and a single worker keeps the backend's request pattern identical to
    the synchronous path (one batched round trip at a time).  Errors are
    recorded on the handle and counted, never raised into the campaign.
    """

    def __init__(self, name: str = "engine-prefetcher") -> None:
        self.name = name
        self.submitted = 0
        self.completed = 0
        self.errors = 0
        self._pool = ThreadPoolExecutor(max_workers=1, thread_name_prefix=name)
        self._pending: List[PrefetchHandle] = []
        self._lock = threading.Lock()
        self._closed = False

    def submit(self, task: Callable[[], Any], label: str = "") -> PrefetchHandle:
        """Queue ``task`` for the background worker; returns its handle."""
        if self._closed:
            raise RuntimeError("the prefetcher is closed")
        error_cell: List[Optional[BaseException]] = [None]

        def run() -> Any:
            try:
                return task()
            except BaseException as error:  # noqa: BLE001 - advisory path
                error_cell[0] = error
                self.errors += 1
                return None
            finally:
                self.completed += 1

        handle = PrefetchHandle(label, self._pool.submit(run), error_cell)
        self.submitted += 1
        with self._lock:
            self._pending = [pending for pending in self._pending if not pending.done]
            self._pending.append(handle)
        return handle

    def drain(self) -> None:
        """Wait for every submitted task to finish."""
        with self._lock:
            pending, self._pending = self._pending, []
        for handle in pending:
            handle.wait()

    def close(self) -> None:
        """Drain outstanding tasks and stop the worker thread."""
        self.drain()
        self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "AsyncPrefetcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "errors": self.errors,
        }


# ----------------------------------------------------------------------
# Deterministic final report
# ----------------------------------------------------------------------
def deterministic_report_payload(report: "CampaignReport") -> dict:
    """The reproducible subset of a campaign report.

    Contains exactly the fields that are a pure function of the campaign
    spec and the evaluation semantics: suite selections, front sizes,
    metric values and candidate counts.  Wall times and hit/miss counters
    are excluded — they describe *how* the campaign ran, not what it
    found, and necessarily differ between an uninterrupted run and a
    killed-and-resumed one.  With ``early_reject`` on, the feasible-count
    field is additionally dropped: the set of provably dominated
    candidates that get skipped depends on wave timing, while the front
    and the selection provably do not.
    """
    suites = []
    for suite in report.suites:
        entry: Dict[str, Any] = {
            "suite": suite.suite,
            "kernels": list(suite.kernels),
            "num_candidates": suite.num_candidates,
            "num_pareto": suite.num_pareto,
            "selected": suite.selected,
            "selected_kind": suite.selected_kind,
            "base_area_slices": suite.base_area_slices,
            "base_execution_time_ns": suite.base_execution_time_ns,
            "selected_area_slices": suite.selected_area_slices,
            "selected_execution_time_ns": suite.selected_execution_time_ns,
            "area_reduction_percent": suite.area_reduction_percent,
        }
        if not report.early_reject:
            entry["num_feasible"] = suite.num_feasible
        suites.append(entry)
    return {
        "campaign": report.campaign,
        "backend": report.backend,
        "workers": report.workers,
        "chunk_size": report.chunk_size,
        "early_reject": report.early_reject,
        "total_jobs": report.total_jobs,
        "suites": suites,
    }


def write_stream_report(path: Union[str, Path], report: "CampaignReport") -> bytes:
    """Write the canonical (byte-stable) streaming report; returns its bytes.

    Canonical form: sorted keys, two-space indent, trailing newline — so
    two campaigns that found the same results produce the same file, byte
    for byte, regardless of interruption, caching or machine speed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(deterministic_report_payload(report), sort_keys=True, indent=2) + "\n"
    data = text.encode("utf-8")
    path.write_bytes(data)
    return data


# ----------------------------------------------------------------------
# The controller driving one streamed campaign
# ----------------------------------------------------------------------
class _SuiteStreamObserver(WaveObserver):
    """Relays one suite's waves into events + checkpoint updates."""

    def __init__(self, controller: "CampaignStreamController", state: SuiteCheckpoint) -> None:
        self.controller = controller
        self.state = state
        #: Live frontier of feasible points, seeded from the checkpoint.
        self.frontier = ParetoFrontier.restore(state.frontier)
        #: Wave numbering continues across runs of the same checkpoint.
        self._wave_offset = state.waves_done
        #: Set mirror of the checkpoint's rejected list (O(1) dedup).
        self._rejected = set(state.rejected)

    def _wave(self, wave_index: int) -> int:
        return self._wave_offset + wave_index

    def base_evaluated(
        self,
        key: str,
        evaluation: "DesignPointEvaluation",
        source: str,
        feasible: bool,
    ) -> None:
        self.state.records[key] = evaluation_record(evaluation)
        self.controller.events.emit(
            "result",
            suite=self.state.suite,
            wave=None,
            key=key,
            label=evaluation.architecture.name,
            source=source,
            feasible=feasible,
            area_slices=evaluation.area_slices,
            execution_time_ns=evaluation.total_execution_time_ns,
        )
        self.controller.save_checkpoint()

    def wave_started(self, wave_index: int, job_count: int) -> None:
        self.controller.events.emit(
            "wave_start", suite=self.state.suite, wave=self._wave(wave_index), jobs=job_count
        )

    def wave_finished(self, outcome: WaveOutcome) -> None:
        wave = self._wave(outcome.wave_index)
        events = self.controller.events
        for result in outcome.results:
            self.state.records[result.key] = evaluation_record(result.evaluation)
            vector = (
                result.evaluation.area_slices,
                result.evaluation.total_execution_time_ns,
            )
            events.emit(
                "result",
                suite=self.state.suite,
                wave=wave,
                key=result.key,
                label=result.label,
                source=result.source,
                feasible=result.feasible,
                area_slices=vector[0],
                execution_time_ns=vector[1],
            )
            if result.feasible and self.frontier.add(vector):
                events.emit(
                    "frontier_update",
                    suite=self.state.suite,
                    key=result.key,
                    vector=list(vector),
                    size=len(self.frontier),
                )
        for _, key in outcome.rejected:
            if key not in self._rejected:
                self._rejected.add(key)
                self.state.rejected.append(key)
        self.state.frontier = self.frontier.snapshot()
        self.state.waves_done += 1
        self.controller.waves_run += 1
        events.emit(
            "wave_end",
            suite=self.state.suite,
            wave=wave,
            results=len(outcome.results),
            rejected=len(outcome.rejected),
            frontier_size=len(self.frontier),
        )
        self.controller.save_checkpoint()


class CampaignStreamController:
    """Owns the event log and checkpoint of one streamed campaign.

    Parameters
    ----------
    directory:
        Stream directory; holds ``events.jsonl`` (appended across runs)
        and ``checkpoint.json`` (atomically replaced after every wave).
    spec:
        The campaign being streamed; its fingerprint guards the
        checkpoint against resuming a different campaign.
    resume:
        Load an existing checkpoint and serve its completed jobs instead
        of re-enqueuing them.  With no checkpoint on disk the campaign
        simply starts fresh (so retry loops can pass ``resume=True``
        unconditionally); a checkpoint from a *different* spec is refused.
    """

    def __init__(
        self, directory: Union[str, Path], spec: CampaignSpec, resume: bool = False
    ) -> None:
        self.directory = Path(directory)
        self.spec = spec
        self.fingerprint = campaign_fingerprint(spec)
        self.checkpoint_path = self.directory / CHECKPOINT_FILENAME
        self.resumed = False
        # Validate the checkpoint *before* touching the directory: a
        # --resume pointed at another campaign's stream must be refused
        # without creating directories or appending to its journal.
        checkpoint: Optional[CampaignCheckpoint] = None
        if resume:
            checkpoint = CampaignCheckpoint.load(self.checkpoint_path)
            if checkpoint is not None:
                checkpoint.require_fingerprint(self.fingerprint, self.checkpoint_path)
                self.resumed = True
        self.directory.mkdir(parents=True, exist_ok=True)
        self.events = EventLog(self.directory / EVENTS_FILENAME)
        self.checkpoint = checkpoint or CampaignCheckpoint(fingerprint=self.fingerprint)
        self.resumed_records = self.checkpoint.total_records
        self.waves_run = 0
        self.checkpoint_hits = 0

    # ------------------------------------------------------------------
    # Campaign lifecycle
    # ------------------------------------------------------------------
    def campaign_started(self) -> None:
        self.events.emit(
            "campaign_start",
            campaign=self.spec.name,
            suites=list(self.spec.suites),
            fingerprint=self.fingerprint,
            resumed=self.resumed,
            checkpoint_records=self.resumed_records,
            backend=self.spec.backend,
            workers=self.spec.workers,
            chunk_size=self.spec.chunk_size,
            early_reject=self.spec.early_reject,
        )

    def completed_records(self, suite: str) -> Dict[str, dict]:
        """The checkpointed evaluation records of ``suite`` (resume input)."""
        return dict(self.checkpoint.suite(suite).records)

    def suite_observer(self, suite: str) -> _SuiteStreamObserver:
        """The wave observer that journals and checkpoints ``suite``."""
        return _SuiteStreamObserver(self, self.checkpoint.suite(suite))

    def suite_finished(self, suite: str) -> None:
        self.checkpoint.suite(suite).complete = True
        self.save_checkpoint()

    def campaign_finished(self, checkpoint_hits: int = 0) -> None:
        self.checkpoint_hits = checkpoint_hits
        self.events.emit(
            "campaign_end",
            campaign=self.spec.name,
            resumed=self.resumed,
            checkpoint_hits=checkpoint_hits,
            waves=self.waves_run,
            suites=[name for name, suite in self.checkpoint.suites.items() if suite.complete],
        )

    def save_checkpoint(self) -> None:
        self.checkpoint.save(self.checkpoint_path)

    def close(self) -> None:
        self.events.close()

    def __enter__(self) -> "CampaignStreamController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def summary(self) -> Dict[str, Any]:
        """One-line facts for the CLI's ``stream:`` summary."""
        return {
            "directory": str(self.directory),
            "resumed": self.resumed,
            "events": self.events.emitted,
            "waves": self.waves_run,
            "checkpoint_hits": self.checkpoint_hits,
            "records": self.checkpoint.total_records,
        }
