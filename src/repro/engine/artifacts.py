"""Persistent, content-addressed store for pipeline stage artifacts.

The evaluation cache (:mod:`repro.engine.cache`) memoises *numbers* — the
derived metrics of a design-point evaluation.  The artifact store is its
sibling for *structures*: the per-stage products of the mapping pipeline
(base schedules, schedule profiles, rearranged schedules, configuration
contexts) that are expensive to recompute but deterministic functions of
their inputs.

Layout
------
The store shares the evaluation cache's directory layout: pointing both at
the same ``cache_dir`` gives one self-contained exploration cache on disk::

    <cache_dir>/evals-<context_hash>.jsonl          (evaluation cache)
    <cache_dir>/artifacts/<stage>/<key>.pkl         (flat, shards=1)
    <cache_dir>/artifacts/<stage>/sNN/<key>.pkl     (sharded)

Persistence is a :class:`repro.store.PickleDirBackend`: write-then-rename
pickles under advisory file locks, optionally spread over hashed shard
subdirectories so many processes can populate one directory, with the
pre-shard flat layout read transparently as shard 0.  Each artifact file
is the pickled stage output, addressed by the stage name and the SHA-256
*input* hash computed by the pipeline
(:func:`repro.mapping.pipeline.stage_key`).  Because keys are content
hashes over the full upstream input chain, a record can never be stale:
any change to the kernel DFG, the architecture or an upstream stage
changes the key.  Corrupt or truncated files (e.g. from an interrupted
run) are treated as misses, counted in :attr:`ArtifactStoreStats.corrupt`
and reported via :class:`RuntimeWarning`; the next store overwrites them
and a janitor compaction removes them.

An in-memory layer fronts the disk so a value is unpickled at most once
per process; with no root directory the store is purely in-memory, which
is what gives :class:`~repro.mapping.pipeline.MappingPipeline` (and the
:class:`~repro.mapping.mapper.RSPMapper` facade over it) the seed's
within-run memoisation behaviour for free.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.store import PickleDirBackend, StoreBackend, StoreJanitor, StoreStats
from repro.store.pickledir import DEFAULT_KEY_PREFIX_LENGTH
from repro.trace.spans import get_tracer

#: Artifact stat events mirrored into campaign trace counters.
_TRACE_COUNTERS = {
    "hits": "store.artifact.hit",
    "misses": "store.artifact.miss",
    "stores": "store.artifact.store",
}

#: Length of the key prefix used in artifact file names.  32 hex digits
#: (128 bits) keeps paths short while making collisions implausible.
KEY_PREFIX_LENGTH = DEFAULT_KEY_PREFIX_LENGTH

#: Subdirectory of the shared cache directory holding artifact files.
ARTIFACT_SUBDIR = "artifacts"


@dataclass
class ArtifactStoreStats:
    """Hit/miss counters of one artifact store, total and per stage."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    by_stage: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def record(self, stage: str, event: str) -> None:
        """Bump the ``event`` counter (``"hits"``/``"misses"``/``"stores"``)."""
        setattr(self, event, getattr(self, event) + 1)
        counters = self.by_stage.setdefault(stage, {"hits": 0, "misses": 0, "stores": 0})
        counters[event] += 1
        # Every artifact hit/miss/store funnels through here, making this
        # the one mirror point into a traced campaign's counters.
        tracer = get_tracer()
        if tracer.active and event in _TRACE_COUNTERS:
            tracer.counter(_TRACE_COUNTERS[event])


class ArtifactStore:
    """A keyed store of pipeline stage outputs.

    Parameters
    ----------
    root:
        Cache directory shared with :class:`~repro.engine.cache.EvaluationCache`;
        artifacts live under ``<root>/artifacts/``.  ``None`` keeps the
        store purely in memory.
    shards:
        Shard-directory count per stage for new writes (1 reproduces the
        flat legacy layout).  Flat files are always readable regardless,
        so a directory written with any shard count loads warm.
    backend:
        Any ready-made :class:`~repro.store.StoreBackend` to persist into
        instead of opening a pickle directory under ``root`` — this is how
        a campaign points its artifact store at a shared store service
        (:class:`~repro.store.RemoteBackend` /
        :class:`~repro.store.TieredBackend`).  Namespaces are the stage
        names either way.  Mutually exclusive with ``root``.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        shards: int = 1,
        backend: Optional[StoreBackend] = None,
    ) -> None:
        if root is not None and backend is not None:
            raise ValueError("pass either a store root or a backend, not both")
        self.root = Path(root) if root is not None else None
        self.shards = shards
        self.stats = ArtifactStoreStats()
        self._memory: Dict[Tuple[str, str], Any] = {}
        self.backend: Optional[StoreBackend] = backend
        if self.root is not None:
            self.backend = PickleDirBackend(self.root / ARTIFACT_SUBDIR, num_shards=shards)

    @property
    def persistent(self) -> bool:
        return self.backend is not None

    @property
    def directory(self) -> Optional[Path]:
        """On-disk artifact directory (``None`` for in-memory/remote stores)."""
        if self.root is None:
            return None
        return self.root / ARTIFACT_SUBDIR

    def _path(self, stage: str, key: str) -> Path:
        assert isinstance(self.backend, PickleDirBackend)
        return self.backend.path_for(stage, key)

    def __len__(self) -> int:
        return len(self._memory)

    def contains(self, stage: str, key: str) -> bool:
        """True when the artifact is available without recomputation."""
        if (stage, key) in self._memory:
            return True
        return self.backend is not None and self.backend.contains(stage, key)

    # ------------------------------------------------------------------
    # Fetch / store
    # ------------------------------------------------------------------
    def fetch(self, stage: str, key: str) -> Tuple[bool, Any]:
        """Look up the artifact of ``(stage, key)``.

        Returns ``(True, value)`` on a hit and ``(False, None)`` on a miss
        (so ``None`` remains a storable value).  Disk hits populate the
        in-memory layer, making repeated fetches return the same object.
        Corrupt files count as misses, bump :attr:`ArtifactStoreStats.corrupt`
        and raise a :class:`RuntimeWarning` naming the artifact.
        """
        memory_key = (stage, key)
        if memory_key in self._memory:
            self.stats.record(stage, "hits")
            return True, self._memory[memory_key]
        if self.backend is not None:
            corrupt_before = self.backend.counters.corrupt
            hit, value = self.backend.get(stage, key)
            corrupt_delta = self.backend.counters.corrupt - corrupt_before
            if corrupt_delta:
                self.stats.corrupt += corrupt_delta
                outcome = (
                    "served from a fallback copy"
                    if hit
                    else "treated as a miss; the stage will be recomputed"
                )
                location = self.directory or getattr(self.backend, "url", self.backend.name)
                warnings.warn(
                    f"artifact store {location}: corrupt artifact "
                    f"{stage}/{key[:KEY_PREFIX_LENGTH]} {outcome}",
                    RuntimeWarning,
                    stacklevel=2,
                )
            if hit:
                self._memory[memory_key] = value
                self.stats.record(stage, "hits")
                return True, value
        self.stats.record(stage, "misses")
        return False, None

    def prefetch(self, keys_by_stage: Mapping[str, Sequence[str]]) -> int:
        """Batch-warm the in-memory layer ahead of per-key :meth:`fetch` calls.

        One backend ``prefetch`` (a single ``mget`` round trip per stage on
        a remote store) pulls every available artifact into the memory
        front; the later real ``fetch`` then hits memory and records its
        hit as usual — prefetching itself charges no hit/miss counters, so
        a background warm-up never skews the per-stage statistics.
        Returns the number of artifacts fetched; in-memory-only stores
        (nothing to prefetch from) return 0.
        """
        if self.backend is None:
            return 0
        fetched = 0
        for stage, keys in keys_by_stage.items():
            missing = [key for key in keys if (stage, key) not in self._memory]
            if not missing:
                continue
            for key, value in self.backend.prefetch(stage, missing).items():
                self._memory[(stage, key)] = value
                fetched += 1
        return fetched

    def put(self, stage: str, key: str, value: Any, persist: bool = True) -> None:
        """Record ``value`` under ``(stage, key)``, persisting when backed.

        ``persist=False`` keeps the value in the in-memory layer only —
        used for stages declared non-persistent in the pipeline.
        """
        self._memory[(stage, key)] = value
        self.stats.record(stage, "stores")
        if self.backend is None or not persist:
            return
        self.backend.put(stage, key, value)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def janitor(self, max_age_seconds: Optional[float] = None) -> StoreJanitor:
        """A GC/compaction janitor over the persistent backend."""
        if self.backend is None:
            raise ValueError("an in-memory artifact store has nothing to garbage-collect")
        return StoreJanitor(self.backend, max_age_seconds=max_age_seconds)

    def store_stats(self) -> StoreStats:
        """Snapshot of the backing store (shards, entries, disk usage)."""
        if self.backend is not None:
            return self.backend.stats()
        return StoreStats(
            backend="memory",
            shards=1,
            entries=len(self._memory),
            hits=self.stats.hits,
            misses=self.stats.misses,
            stores=self.stats.stores,
            corrupt=self.stats.corrupt,
        )
