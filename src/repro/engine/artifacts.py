"""Persistent, content-addressed store for pipeline stage artifacts.

The evaluation cache (:mod:`repro.engine.cache`) memoises *numbers* — the
derived metrics of a design-point evaluation.  The artifact store is its
sibling for *structures*: the per-stage products of the mapping pipeline
(base schedules, schedule profiles, rearranged schedules, configuration
contexts) that are expensive to recompute but deterministic functions of
their inputs.

Layout
------
The store shares the evaluation cache's directory layout: pointing both at
the same ``cache_dir`` gives one self-contained exploration cache on disk::

    <cache_dir>/evals-<context_hash>.jsonl     (evaluation cache)
    <cache_dir>/artifacts/<stage>/<key>.pkl    (artifact store)

Each artifact file is the pickled stage output, addressed by the stage name
and the SHA-256 *input* hash computed by the pipeline
(:func:`repro.mapping.pipeline.stage_key`).  Because keys are content
hashes over the full upstream input chain, a record can never be stale:
any change to the kernel DFG, the architecture or an upstream stage
changes the key.  Corrupt or truncated files (e.g. from an interrupted
run) are treated as misses and silently overwritten by the next store.

An in-memory layer fronts the disk so a value is unpickled at most once
per process; with no root directory the store is purely in-memory, which
is what gives :class:`~repro.mapping.pipeline.MappingPipeline` (and the
:class:`~repro.mapping.mapper.RSPMapper` facade over it) the seed's
within-run memoisation behaviour for free.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

#: Length of the key prefix used in artifact file names.  32 hex digits
#: (128 bits) keeps paths short while making collisions implausible.
KEY_PREFIX_LENGTH = 32

#: Subdirectory of the shared cache directory holding artifact files.
ARTIFACT_SUBDIR = "artifacts"


@dataclass
class ArtifactStoreStats:
    """Hit/miss counters of one artifact store, total and per stage."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    by_stage: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def record(self, stage: str, event: str) -> None:
        """Bump the ``event`` counter (``"hits"``/``"misses"``/``"stores"``)."""
        setattr(self, event, getattr(self, event) + 1)
        counters = self.by_stage.setdefault(stage, {"hits": 0, "misses": 0, "stores": 0})
        counters[event] += 1


class ArtifactStore:
    """A keyed store of pipeline stage outputs.

    Parameters
    ----------
    root:
        Cache directory shared with :class:`~repro.engine.cache.EvaluationCache`;
        artifacts live under ``<root>/artifacts/``.  ``None`` keeps the
        store purely in memory.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else None
        self.stats = ArtifactStoreStats()
        self._memory: Dict[Tuple[str, str], Any] = {}

    @property
    def persistent(self) -> bool:
        return self.root is not None

    @property
    def directory(self) -> Optional[Path]:
        """On-disk artifact directory (``None`` for in-memory stores)."""
        if self.root is None:
            return None
        return self.root / ARTIFACT_SUBDIR

    def _path(self, stage: str, key: str) -> Path:
        assert self.directory is not None
        return self.directory / stage / f"{key[:KEY_PREFIX_LENGTH]}.pkl"

    def __len__(self) -> int:
        return len(self._memory)

    def contains(self, stage: str, key: str) -> bool:
        """True when the artifact is available without recomputation."""
        if (stage, key) in self._memory:
            return True
        return self.persistent and self._path(stage, key).exists()

    # ------------------------------------------------------------------
    # Fetch / store
    # ------------------------------------------------------------------
    def fetch(self, stage: str, key: str) -> Tuple[bool, Any]:
        """Look up the artifact of ``(stage, key)``.

        Returns ``(True, value)`` on a hit and ``(False, None)`` on a miss
        (so ``None`` remains a storable value).  Disk hits populate the
        in-memory layer, making repeated fetches return the same object.
        """
        memory_key = (stage, key)
        if memory_key in self._memory:
            self.stats.record(stage, "hits")
            return True, self._memory[memory_key]
        if self.persistent:
            path = self._path(stage, key)
            if path.exists():
                try:
                    with path.open("rb") as handle:
                        value = pickle.load(handle)
                except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
                    self.stats.corrupt += 1
                else:
                    self._memory[memory_key] = value
                    self.stats.record(stage, "hits")
                    return True, value
        self.stats.record(stage, "misses")
        return False, None

    def put(self, stage: str, key: str, value: Any, persist: bool = True) -> None:
        """Record ``value`` under ``(stage, key)``, persisting when backed.

        ``persist=False`` keeps the value in the in-memory layer only —
        used for stages declared non-persistent in the pipeline.
        """
        self._memory[(stage, key)] = value
        self.stats.record(stage, "stores")
        if not self.persistent or not persist:
            return
        path = self._path(stage, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so neither an interrupted run nor two writers
        # racing on the same key ever leave a truncated artifact under the
        # final name (mkstemp gives every writer its own temp file).
        descriptor, temporary = tempfile.mkstemp(
            prefix=f"{path.name}.", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temporary, path)
        except BaseException:
            try:
                os.unlink(temporary)
            except OSError:
                pass
            raise
