"""Command-line entry point: ``python -m repro.engine``.

Runs a multi-suite exploration campaign and writes a JSON report, e.g.::

    python -m repro.engine --suite paper --workers 4 --output report.json
    python -m repro.engine --suite livermore --suite dsp --backend process \\
        --workers 8 --early-reject --cache-dir .repro_engine_cache

The cache directory persists across invocations; a second identical run
is served almost entirely from it (the report's ``cache_hits`` /
``cache_misses`` counters show the effect).  The mapping-artifact store
(``--artifact-dir``, defaulting to the cache directory) does the same for
the mapping stages: warm runs fetch base schedules and profiles by
content hash instead of re-scheduling, which the report's
``artifact_hits`` counter and per-stage ``mapping_stages`` timings show.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.exploration import ExplorationConstraints
from repro.engine.jobs import SUITE_NAMES, CampaignSpec
from repro.engine.runner import SUMMARY_HEADERS, CampaignRunner
from repro.engine.stream import write_stream_report
from repro.errors import ReproError
from repro.utils.serialization import to_json
from repro.utils.tabulate import format_table


def _shard_count(text: str) -> int:
    """Argparse type for ``--store-shards``: an int in the backends' 1..99."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid shard count: {text!r}")
    if not 1 <= value <= 99:
        raise argparse.ArgumentTypeError(f"store shards must be in 1..99, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine",
        description="Run an RSP design-space exploration campaign.",
    )
    parser.add_argument(
        "--suite",
        action="append",
        choices=SUITE_NAMES,
        dest="suites",
        help="kernel suite to explore (repeatable; default: paper)",
    )
    parser.add_argument("--name", default="campaign", help="campaign name used in the report")
    parser.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default="thread",
        help="evaluation backend (default: thread; serial is forced when --workers 1)",
    )
    parser.add_argument("--workers", type=int, default=1, help="parallel workers (default: 1)")
    parser.add_argument("--chunk-size", type=int, default=8, help="candidates per dispatch chunk")
    parser.add_argument(
        "--max-rows-shared", type=int, default=2, help="largest shr in the candidate grid"
    )
    parser.add_argument(
        "--max-cols-shared", type=int, default=2, help="largest shc in the candidate grid"
    )
    parser.add_argument(
        "--stages",
        type=int,
        nargs="+",
        default=(1, 2),
        help="pipeline-stage options of the grid (default: 1 2)",
    )
    parser.add_argument(
        "--max-execution-time-ratio",
        type=float,
        default=None,
        help="reject candidates slower than this multiple of the base",
    )
    parser.add_argument(
        "--max-stall-cycles",
        type=int,
        default=None,
        help="reject candidates with more total estimated stall cycles",
    )
    parser.add_argument(
        "--early-reject",
        action="store_true",
        help="skip provably dominated candidates before stall estimation",
    )
    parser.add_argument(
        "--batch",
        dest="batch",
        action="store_true",
        default=None,
        help="request the vectorized (numpy) evaluation fast path; the "
        "default engages it automatically whenever numpy is available and "
        "the backend is serial or thread (results are identical either way)",
    )
    parser.add_argument(
        "--no-batch",
        dest="batch",
        action="store_false",
        help="force the scalar per-candidate evaluation path",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=Path(".repro_engine_cache"),
        help="persistent evaluation cache directory (default: .repro_engine_cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the persistent evaluation cache"
    )
    parser.add_argument(
        "--artifact-dir",
        type=Path,
        default=None,
        help="persistent mapping-artifact store directory (default: the "
        "evaluation cache directory; --no-cache therefore also disables "
        "the store unless an explicit --artifact-dir is given)",
    )
    parser.add_argument(
        "--no-artifact-cache",
        action="store_true",
        help="disable the persistent mapping-artifact store "
        "(base schedules and profiles are recomputed every run)",
    )
    parser.add_argument(
        "--store-shards",
        type=_shard_count,
        default=1,
        help="shard count of the persistent stores: evaluation records and "
        "artifacts spread over this many lock-protected shard files/dirs so "
        "concurrent campaigns can share one cache directory (default: 1, "
        "the legacy single-file layout; existing layouts always load)",
    )
    parser.add_argument(
        "--gc-max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="after the campaign, evict store entries not written or read "
        "for this many seconds",
    )
    parser.add_argument(
        "--compact",
        action="store_true",
        help="after the campaign, compact the stores (drop superseded and "
        "corrupt records, migrate legacy layouts into their shards)",
    )
    parser.add_argument(
        "--store-url",
        default=None,
        metavar="URL",
        help="use a shared repro.service store server for BOTH the "
        "evaluation cache and the artifact store (replaces --cache-dir/"
        "--artifact-dir); e.g. http://127.0.0.1:8731",
    )
    parser.add_argument(
        "--store-tier",
        action="store_true",
        help="front the remote store with an in-memory read-through/"
        "write-behind tier (repeat reads skip the server, writes batch); "
        "requires --store-url",
    )
    parser.add_argument(
        "--stream",
        type=Path,
        default=None,
        metavar="DIR",
        help="streaming mode: append wave-level events to DIR/events.jsonl, "
        "checkpoint after every wave (crash-atomic), prefetch the next "
        "wave's cache lookups and the next suite's artifacts in the "
        "background, and write --output as the canonical deterministic "
        "report (byte-identical across interrupted-and-resumed runs)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the checkpoint inside --stream DIR: completed "
        "jobs are served from it, only unfinished work is re-enqueued "
        "(no checkpoint on disk simply starts fresh)",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="DIR",
        help="span-based tracing: drain campaign/suite/wave/stage/eval "
        "spans and counters into DIR/trace.db (may be the same DIR as "
        "--stream); inspect with python -m repro.trace summary DIR",
    )
    parser.add_argument(
        "--coordinator",
        default=None,
        metavar="URL",
        help="campaign coordinator URL (a repro.service started with "
        "--coordinator DIR); requires --worker",
    )
    parser.add_argument(
        "--worker",
        action="store_true",
        help="worker mode: submit the campaign to --coordinator, lease "
        "waves, heartbeat while evaluating, and report results; when the "
        "campaign completes, derive the canonical report from the merged "
        "checkpoint (byte-identical to a serial --stream run)",
    )
    parser.add_argument(
        "--worker-name",
        default=None,
        help="display name this worker registers under (default: host-pid)",
    )
    parser.add_argument(
        "--wave-size",
        type=int,
        default=None,
        help="jobs per leased wave (default: the campaign's --chunk-size)",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="worker-mode sleep between lease polls while every wave is "
        "leased elsewhere (default: 0.5s)",
    )
    parser.add_argument(
        "--lease-delay",
        type=float,
        default=0.0,
        help="worker-mode pause between lease grant and evaluation "
        "(failure-injection hook: widens the mid-wave kill window)",
    )
    parser.add_argument(
        "--flow",
        type=Path,
        default=None,
        metavar="PATH",
        help="custom mapping-flow config (JSON; see repro.flowgraph.config): "
        "the campaign's pipeline executes this flow instead of the "
        "canonical five-node mapping flow, after each suite the kernels "
        "are mapped onto the selected design point so routed/raced nodes "
        "land in mapping_stages, and the report gains a 'flow' block",
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="write the JSON campaign report here"
    )
    parser.add_argument("--quiet", action="store_true", help="suppress the summary table")
    return parser


def _store_summary(report) -> str:
    """One ``store:`` line: shard config, entry/disk totals, janitor outcome.

    Against a shared store server the line shows the server snapshot plus
    the remote transport counters and — when tiered — the tier's front
    hit/miss and flush counters.
    """
    stats = report.store_stats
    janitor = stats.get("janitor")
    if stats.get("store_url"):
        remote = stats.get("remote") or {}
        server = stats.get("artifacts")
        line = f"store: {stats['store_url']}"
        if server is not None:
            line += f"  server: {server.entries} entries / {server.disk_bytes} B"
        line += (
            f"  remote: {remote.get('requests', 0)} requests / "
            f"{remote.get('transport_retries', 0)} retries / "
            f"{stats.get('dropped_writes', 0)} dropped writes"
        )
        tier = stats.get("tier")
        if tier is not None:
            line += (
                f"  tier: {tier['front_hits']}h/{tier['front_misses']}m, "
                f"flushed {tier['flushed_records']} in {tier['flush_batches']} batch(es)"
            )
        if janitor and janitor.get("remote") is not None:
            sweep = janitor["remote"]
            line += f"  janitor: {sweep.evicted} evicted, compacted={janitor.get('compacted')}"
        return line
    artifacts = stats.get("artifacts")
    evaluations = stats.get("evaluations") or []
    entries = sum(snapshot.entries for snapshot in evaluations)
    disk = sum(snapshot.disk_bytes for snapshot in evaluations)
    line = f"store: {stats.get('shards', 1)} shard(s)"
    if artifacts is not None:
        line += f"  artifacts: {artifacts.entries} entries / {artifacts.disk_bytes} B"
    line += f"  evaluations: {entries} records / {disk} B"
    if janitor:
        evicted = sum(
            sweep.evicted
            for sweep in list(janitor.get("evaluations") or [])
            + ([janitor["artifacts"]] if janitor.get("artifacts") else [])
        )
        line += f"  janitor: {evicted} evicted, compacted={janitor.get('compacted')}"
    return line


def _run_worker_mode(args: argparse.Namespace, spec, artifact_dir) -> int:
    """Fleet worker: lease waves from the coordinator until the campaign ends."""
    import os
    import socket
    import tempfile

    from repro.engine.worker import run_worker

    stream_dir = args.stream or Path(tempfile.mkdtemp(prefix="repro-worker-stream-"))
    worker_name = args.worker_name or f"{socket.gethostname()}-{os.getpid()}"
    collector = None
    if args.trace is not None:
        from repro.trace.collect import TraceCollector

        collector = TraceCollector(args.trace, campaign=spec.name).install()
    try:
        summary = run_worker(
            spec,
            args.coordinator,
            stream_dir=stream_dir,
            worker_name=worker_name,
            wave_size=args.wave_size,
            output=args.output,
            cache_dir=None if args.no_cache or args.store_url else args.cache_dir,
            artifact_dir=artifact_dir,
            store_url=args.store_url,
            store_tier=args.store_tier,
            store_shards=args.store_shards,
            batch=args.batch,
            poll_interval=args.poll_interval,
            lease_delay=args.lease_delay,
        )
    finally:
        if collector is not None:
            collector.uninstall()
            collector.close()
    if not args.quiet:
        print(
            f"worker {summary['worker']} on campaign {summary['campaign']}: "
            f"{summary['waves_completed']} wave(s), "
            f"{summary['records_reported']} record(s) reported, "
            f"{summary['evaluated']} evaluated / {summary['cache_hits']} cache hits, "
            f"{summary['leases_lost']} lease(s) lost, "
            f"{summary['requeues']} requeue(s) campaign-wide"
        )
        if args.output is not None:
            print(f"report written to {args.output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _run(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _run(args: argparse.Namespace) -> int:
    if args.store_tier and args.store_url is None:
        raise ReproError("--store-tier tiers a remote store; it requires --store-url")
    if args.store_url is not None and (args.no_cache or args.no_artifact_cache):
        raise ReproError(
            "--store-url replaces the local stores; drop --no-cache/--no-artifact-cache"
        )
    if args.worker != (args.coordinator is not None):
        raise ReproError("worker mode needs both --worker and --coordinator URL")
    if args.worker and args.resume:
        raise ReproError(
            "--resume is implicit in worker mode (the report is always "
            "derived from the coordinator's merged checkpoint)"
        )
    if args.resume and args.stream is None:
        raise ReproError("--resume replays a stream directory; it requires --stream DIR")
    spec = CampaignSpec(
        name=args.name,
        suites=tuple(args.suites or ("paper",)),
        max_rows_shared=args.max_rows_shared,
        max_cols_shared=args.max_cols_shared,
        stage_options=tuple(args.stages),
        constraints=ExplorationConstraints(
            max_execution_time_ratio=args.max_execution_time_ratio,
            max_stall_cycles=args.max_stall_cycles,
        ),
        backend=args.backend,
        workers=args.workers,
        chunk_size=args.chunk_size,
        early_reject=args.early_reject,
    )
    artifact_dir = None
    if args.store_url is None and not args.no_artifact_cache:
        if args.artifact_dir is not None:
            artifact_dir = args.artifact_dir
        elif not args.no_cache:
            artifact_dir = args.cache_dir
    if args.worker:
        if args.flow is not None:
            raise ReproError("--flow is not supported in worker mode yet")
        return _run_worker_mode(args, spec, artifact_dir)
    runner = CampaignRunner(
        spec,
        cache_dir=None if args.no_cache or args.store_url else args.cache_dir,
        artifact_dir=artifact_dir,
        store_shards=args.store_shards,
        gc_max_age=args.gc_max_age,
        compact=args.compact,
        store_url=args.store_url,
        store_tier=args.store_tier,
        stream_dir=args.stream,
        resume=args.resume,
        trace_dir=args.trace,
        batch=args.batch,
        flow=args.flow,
    )
    try:
        report, _ = runner.run()
    finally:
        runner.close()

    if not args.quiet:
        print(
            format_table(
                report.summary_rows(),
                headers=list(SUMMARY_HEADERS),
                title=f"campaign {report.campaign!r} "
                f"[{report.backend} x{report.workers}, chunk {report.chunk_size}]",
            )
        )
        print(
            f"jobs: {report.total_jobs}  cache: {report.cache_hits} hits / "
            f"{report.cache_misses} misses ({100.0 * report.cache_hit_rate:.1f}% hit rate)  "
            f"early-rejected: {report.early_rejected}  "
            f"batched: {report.batch_evaluations}  wall: {report.wall_seconds:.2f}s"
        )
        stage_summary = "  ".join(
            f"{stage}: {timing['seconds']:.3f}s"
            f" ({timing['hits']}h/{timing['misses']}m"
            f", p50 {1e3 * timing.get('p50', 0.0):.2f}ms"
            f"/p95 {1e3 * timing.get('p95', 0.0):.2f}ms)"
            for stage, timing in report.mapping_stages.items()
        )
        print(
            f"artifacts: {report.artifact_hits} hits / {report.artifact_misses} misses  "
            f"mapping: {report.mapping_seconds:.3f}s"
            + (f"  [{stage_summary}]" if stage_summary else "")
        )
        print(_store_summary(report))
        if report.flow:
            print(
                f"flow: {report.flow['name']}  "
                f"nodes: {', '.join(report.flow['nodes'])}  "
                f"edges: {' ; '.join(report.flow['edges'])}"
            )
        if runner.stream_summary is not None:
            facts = runner.stream_summary
            print(
                f"stream: {facts['directory']}  events: {facts['events']}  "
                f"waves: {facts['waves']}  checkpoint: {facts['records']} records / "
                f"{facts['checkpoint_hits']} served  resumed={facts['resumed']}"
            )
        if runner.trace_summary is not None:
            facts = runner.trace_summary
            counters = facts.get("counters", {})
            print(
                f"trace: {facts['db']}  spans: {facts['spans']}  "
                f"waves: {counters.get('wave.count', 0)}  "
                f"results: {counters.get('result.count', 0)}  "
                f"(python -m repro.trace summary {args.trace})"
            )

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        if args.stream is not None:
            # Streaming mode writes the canonical deterministic report:
            # an interrupted-and-resumed campaign produces byte-identical
            # output; the live trajectory lives in the event log.
            write_stream_report(args.output, report)
        else:
            payload = {
                "report": report,
                "cache_hit_rate": report.cache_hit_rate,
                "suite_selections": {
                    suite.suite: {"selected": suite.selected, "kind": suite.selected_kind}
                    for suite in report.suites
                },
            }
            args.output.write_text(to_json(payload) + "\n", encoding="utf-8")
        if not args.quiet:
            print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
