"""Campaign checkpoints: crash-safe wave-granular resume state.

A streaming campaign (:mod:`repro.engine.stream`) snapshots its progress
after every completed wave: the evaluation records of every finished job
(the same flat JSON format the evaluation cache persists, see
:func:`repro.engine.cache.evaluation_record`), the incremental Pareto
frontier of the feasible points seen so far, and per-suite wave counters.
The snapshot is one JSON document written with the same write-then-rename
discipline as the store layer, so a SIGKILL at any instant leaves either
the previous checkpoint or the new one — never a torn file.

On resume (:class:`~repro.engine.runner.CampaignRunner` with
``resume=True``) the checkpoint's records are handed back to the engine
as *completed* jobs: they are never re-enqueued, the frontier is rebuilt
from them deterministically, and the campaign converges to the exact
report an uninterrupted run would have produced.

Checkpoints are guarded by a *fingerprint* — a content hash over the
campaign spec — so a checkpoint can never silently resume a different
campaign (grid, suites, constraints or executor changed: the fingerprint
changes, the resume is refused).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.engine.jobs import CampaignSpec
from repro.errors import ExplorationError
from repro.utils.serialization import content_hash

#: Format marker written into every checkpoint document.
CHECKPOINT_VERSION = 1

#: Default checkpoint file name inside a stream directory.
CHECKPOINT_FILENAME = "checkpoint.json"


def campaign_fingerprint(spec: CampaignSpec) -> str:
    """Content hash identifying a campaign for checkpoint compatibility."""
    return content_hash({"campaign_spec": spec})


@dataclass
class SuiteCheckpoint:
    """Resume state of one suite within a campaign."""

    suite: str
    #: Completed evaluations: job content hash -> flat evaluation record.
    records: Dict[str, dict] = field(default_factory=dict)
    #: Job content hashes skipped by the dominance early-reject filter.
    rejected: List[str] = field(default_factory=list)
    #: Snapshot of the feasible-point Pareto frontier (objective vectors).
    frontier: List[List[float]] = field(default_factory=list)
    #: Waves this suite has fully completed (live waves, checkpoint
    #: replays excluded) across all runs that contributed to the state.
    waves_done: int = 0
    #: True once the suite's exploration finished end to end.
    complete: bool = False

    def as_dict(self) -> dict:
        return {
            "suite": self.suite,
            "records": self.records,
            "rejected": list(self.rejected),
            "frontier": [list(vector) for vector in self.frontier],
            "waves_done": self.waves_done,
            "complete": self.complete,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SuiteCheckpoint":
        return cls(
            suite=str(payload["suite"]),
            records=dict(payload.get("records", {})),
            rejected=[str(key) for key in payload.get("rejected", [])],
            frontier=[list(vector) for vector in payload.get("frontier", [])],
            waves_done=int(payload.get("waves_done", 0)),
            complete=bool(payload.get("complete", False)),
        )


@dataclass
class CampaignCheckpoint:
    """The resumable state of one streaming campaign."""

    fingerprint: str
    suites: Dict[str, SuiteCheckpoint] = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION
    #: Serialisation cache: suite name -> (change marker, JSON fragment).
    #: A suite that has not changed since the last save (every already
    #: completed suite, in particular) reuses its serialised form, so the
    #: per-wave checkpoint cost tracks the *active* suite instead of the
    #: whole campaign history.
    _fragments: Dict[str, Tuple[Tuple[int, int, bool, int, int], str]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def suite(self, name: str) -> SuiteCheckpoint:
        """The (created-on-demand) checkpoint of one suite."""
        if name not in self.suites:
            self.suites[name] = SuiteCheckpoint(suite=name)
        return self.suites[name]

    @property
    def total_records(self) -> int:
        return sum(len(suite.records) for suite in self.suites.values())

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "fingerprint": self.fingerprint,
            "suites": {name: suite.as_dict() for name, suite in self.suites.items()},
        }

    def _suite_fragment(self, name: str) -> str:
        """The suite's JSON fragment, re-serialised only when it changed.

        The marker covers every mutation path of a :class:`SuiteCheckpoint`
        (records only ever grow, ``waves_done`` bumps every wave,
        ``complete`` flips once); completed suites therefore serialise
        exactly once more after finishing, however many waves the rest of
        the campaign still runs.
        """
        suite = self.suites[name]
        marker = (
            len(suite.records),
            suite.waves_done,
            suite.complete,
            len(suite.rejected),
            len(suite.frontier),
        )
        cached = self._fragments.get(name)
        if cached is None or cached[0] != marker:
            cached = (
                marker,
                json.dumps(suite.as_dict(), sort_keys=True, separators=(",", ":")),
            )
            self._fragments[name] = cached
        return cached[1]

    def _document_text(self) -> str:
        """The canonical document — byte-identical to ``json.dumps`` of
        :meth:`as_dict` with sorted keys and compact separators."""
        fragments = ",".join(
            f"{json.dumps(name)}:{self._suite_fragment(name)}"
            for name in sorted(self.suites)
        )
        return (
            f'{{"fingerprint":{json.dumps(self.fingerprint)},'
            f'"suites":{{{fragments}}},'
            f'"version":{self.version}}}'
        )

    # ------------------------------------------------------------------
    # Persistence (write-then-rename, same discipline as the store layer)
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Atomically replace ``path`` with this checkpoint."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        scratch = path.with_name(path.name + f".tmp.{os.getpid()}")
        scratch.write_text(self._document_text() + "\n", encoding="utf-8")
        os.replace(scratch, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> Optional["CampaignCheckpoint"]:
        """The checkpoint stored at ``path``, or ``None`` when absent/unreadable.

        A checkpoint that fails to parse is treated as absent (resume then
        starts fresh — losing progress, never correctness); a parseable
        checkpoint of an unknown version is refused loudly, because its
        records could rehydrate incorrectly.
        """
        path = Path(path)
        if not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or "fingerprint" not in payload:
            return None
        version = int(payload.get("version", 0))
        if version != CHECKPOINT_VERSION:
            raise ExplorationError(
                f"checkpoint {path} has version {version}; "
                f"this build reads version {CHECKPOINT_VERSION}"
            )
        return cls(
            fingerprint=str(payload["fingerprint"]),
            suites={
                name: SuiteCheckpoint.from_dict(suite)
                for name, suite in payload.get("suites", {}).items()
            },
            version=version,
        )

    def require_fingerprint(self, fingerprint: str, path: Union[str, Path]) -> None:
        """Refuse to resume a checkpoint written by a different campaign."""
        if self.fingerprint != fingerprint:
            raise ExplorationError(
                f"checkpoint {path} belongs to a different campaign "
                f"(fingerprint {self.fingerprint[:16]} != {fingerprint[:16]}); "
                "pass a fresh stream directory or rerun without --resume"
            )
