"""Persistent evaluation store — a facade over the unified storage layer.

Exploration campaigns repeatedly evaluate overlapping candidate grids:
re-running a sweep after enlarging the grid, exploring a second suite that
shares the base profiles, or simply re-issuing the same campaign.  The
cache makes every repeated evaluation free.

Layout
------
A cache directory holds the JSON-lines shard files of each *evaluation
context* (profiles + array + model calibration, see
:func:`repro.engine.jobs.evaluation_context_hash`)::

    <cache_dir>/evals-<context_hash_prefix>.jsonl        shard 0
    <cache_dir>/evals-<context_hash_prefix>.s01.jsonl    shard 1 (when sharded)
    ...

Persistence is a :class:`repro.store.ShardedJsonlBackend`: appends go to
the key's hashed shard under an advisory file lock, so multiple processes
can populate one cache directory concurrently, and the pre-shard
single-file layout is read transparently as shard 0.  Each line is one
completed evaluation, keyed by the job's content hash::

    {"key": "...", "label": "rs(shr=2,...)", "area_slices": ...,
     "critical_path_ns": ..., "stalls": {kernel: {"rs_stalls": ...,
     "rp_stalls": ..., "base_cycles": ...}}}

Only derived *numbers* are stored; the architecture object is rebuilt from
the job's parameters on a hit, so the format stays small and stable.
Corrupt or truncated lines (e.g. from an interrupted run) are skipped on
load, counted in :attr:`EvaluationCache.corrupt_lines` and reported once
via :class:`RuntimeWarning`; compaction (:meth:`EvaluationCache.janitor`)
drops them from disk.  Because keys are content hashes, a record can never
be stale: any change to the profiles, the array or the model calibration
changes the context hash and therefore the file and the keys.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Set, Union

from repro.core.exploration import DesignPointEvaluation
from repro.core.stalls import StallEstimate
from repro.engine.jobs import EvaluationJob
from repro.store import (
    MemoryBackend,
    ShardedJsonlBackend,
    StoreBackend,
    StoreJanitor,
    StoreStats,
)
from repro.trace.spans import get_tracer


@dataclass
class CacheStats:
    """Hit/miss counters of one engine run."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


def _valid_record(record: dict) -> bool:
    """The fields :meth:`EvaluationCache.get` rehydrates must be present."""
    try:
        float(record["area_slices"])
        float(record["critical_path_ns"])
        record["stalls"]
    except (ValueError, KeyError, TypeError):
        return False
    return True


def evaluation_record(evaluation: DesignPointEvaluation) -> dict:
    """The flat JSON record of one evaluation (the cache's line format).

    Shared with the campaign checkpoint (:mod:`repro.engine.checkpoint`),
    so a checkpointed result and a cached one are the same bytes.
    """
    return {
        "label": evaluation.architecture.name,
        "area_slices": evaluation.area_slices,
        "critical_path_ns": evaluation.critical_path_ns,
        "stalls": {
            kernel: {
                "rs_stalls": estimate.rs_stalls,
                "rp_stalls": estimate.rp_stalls,
                "base_cycles": estimate.base_cycles,
            }
            for kernel, estimate in evaluation.stall_estimates.items()
        },
    }


def rehydrate_evaluation(record: dict, job: EvaluationJob, array) -> DesignPointEvaluation:
    """Rebuild a :class:`DesignPointEvaluation` from its flat JSON record.

    The architecture is reconstructed from the job's parameters (cheap and
    deterministic); only the derived numbers come from the record, so a
    rehydrated evaluation is numerically identical to the computed one.
    """
    architecture = job.parameters.to_architecture(array, name=job.name)
    stall_estimates = {
        kernel: StallEstimate(
            kernel=kernel,
            architecture=architecture.name,
            rs_stalls=int(entry["rs_stalls"]),
            rp_stalls=int(entry["rp_stalls"]),
            base_cycles=int(entry["base_cycles"]),
        )
        for kernel, entry in record["stalls"].items()
    }
    return DesignPointEvaluation(
        parameters=job.parameters,
        architecture=architecture,
        area_slices=float(record["area_slices"]),
        critical_path_ns=float(record["critical_path_ns"]),
        stall_estimates=stall_estimates,
    )


class EvaluationCache:
    """A keyed store of completed design-point evaluations.

    Parameters
    ----------
    path:
        Shard-0 JSON-lines file backing the cache.  ``None`` keeps the
        cache purely in memory (useful for tests and one-shot runs).
    shards:
        Shard-file count for new writes (1 reproduces the single-file
        layout).  Existing shard files are always read regardless of this
        setting, so a directory written with any shard count loads warm.
    backend:
        Any ready-made :class:`~repro.store.StoreBackend` to use instead
        of opening one from ``path`` — this is how a campaign points its
        evaluation cache at a shared store service
        (:class:`~repro.store.RemoteBackend` /
        :class:`~repro.store.TieredBackend`).  Mutually exclusive with
        ``path``.
    namespace:
        Store namespace the records live under.  The default empty
        namespace matches the on-disk JSONL layout; remote caches use a
        per-evaluation-context namespace (``evals-<ctx>``) so every
        context shares one server cleanly.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        shards: int = 1,
        backend: Optional[StoreBackend] = None,
        namespace: str = "",
    ) -> None:
        if path is not None and backend is not None:
            raise ValueError("pass either a cache path or a backend, not both")
        self.path = Path(path) if path is not None else None
        self.shards = shards
        self.namespace = namespace
        self.stats = CacheStats()
        #: Records this cache has seen (prefetched, fetched or stored):
        #: repeat lookups never go back to the backend, which is what
        #: makes one batched ``mget`` per wave the only remote read.
        self._front: Dict[str, dict] = {}
        #: Keys a batch prefetch proved absent; consulted before the
        #: backend so a cold wave costs one round trip, not one per key.
        self._known_misses: Set[str] = set()
        if backend is not None:
            self.backend = backend
        elif self.path is None:
            self.backend = MemoryBackend()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.backend = ShardedJsonlBackend(
                self.path, num_shards=shards, validate=_valid_record
            )
        if self.corrupt_lines:
            warnings.warn(
                f"evaluation cache {self.path}: skipped {self.corrupt_lines} "
                f"corrupt line(s); the affected evaluations will be recomputed",
                RuntimeWarning,
                stacklevel=2,
            )

    @classmethod
    def for_context(
        cls, cache_dir: Path, context_hash: str, shards: int = 1
    ) -> "EvaluationCache":
        """The cache file of one evaluation context inside ``cache_dir``."""
        cache_dir = Path(cache_dir)
        cache_dir.mkdir(parents=True, exist_ok=True)
        return cls(cache_dir / f"evals-{context_hash[:16]}.jsonl", shards=shards)

    @property
    def corrupt_lines(self) -> int:
        """Corrupt/foreign lines skipped while loading the shard files."""
        return getattr(self.backend, "corrupt_lines", 0)

    def __len__(self) -> int:
        # Both cache backends hold their records in memory; no disk walk.
        return len(self.backend)  # type: ignore[arg-type]

    def __contains__(self, key: str) -> bool:
        return key in self._front or self.backend.contains(self.namespace, key)

    # ------------------------------------------------------------------
    # Store / lookup
    # ------------------------------------------------------------------
    _record_of = staticmethod(evaluation_record)

    def put(self, key: str, evaluation: DesignPointEvaluation) -> None:
        """Record ``evaluation`` under ``key`` and append it to its shard."""
        if key in self._front or self.backend.contains(self.namespace, key):
            return
        record = self._record_of(evaluation)
        self.backend.put(self.namespace, key, record)
        self._front[key] = record
        self._known_misses.discard(key)
        self.stats.stores += 1
        tracer = get_tracer()
        if tracer.active:
            tracer.counter("store.eval.store")

    def put_many(self, evaluations: Mapping[str, DesignPointEvaluation]) -> int:
        """Batch :meth:`put`: one backend ``put_many`` for a whole wave.

        Over a remote backend this is the write hot path — one ``mput``
        round trip per wave.  Keys already seen by this cache are skipped;
        the backend deduplicates anything another worker stored meanwhile.
        """
        fresh = {
            key: self._record_of(evaluation)
            for key, evaluation in evaluations.items()
            if key not in self._front
        }
        if not fresh:
            return 0
        self.backend.put_many(self.namespace, fresh)
        self._front.update(fresh)
        self._known_misses.difference_update(fresh)
        self.stats.stores += len(fresh)
        tracer = get_tracer()
        if tracer.active:
            tracer.counter("store.eval.store", float(len(fresh)))
        return len(fresh)

    def prefetch(self, keys: Iterable[str]) -> int:
        """Batch-resolve ``keys`` ahead of per-key :meth:`get` calls.

        One backend ``get_many`` (one HTTP round trip on a remote) warms
        the in-process front; subsequent :meth:`get` calls for these keys
        — hits *and* misses — are then answered without touching the
        backend again.  Returns the number of records fetched.
        """
        wanted = [
            key for key in keys if key not in self._front and key not in self._known_misses
        ]
        if not wanted:
            return 0
        # get_many, not the backend's quiet prefetch: a wave's batched
        # lookup is a real read the campaign asked for (merely issued
        # early), so tier/backend hit counters must see it — the quiet
        # pathway is reserved for advisory warm-ups (ArtifactStore.prefetch).
        found = {
            key: record
            for key, record in self.backend.get_many(self.namespace, wanted).items()
            if _valid_record(record)  # a remote peer may serve foreign records
        }
        self._front.update(found)
        self._known_misses.update(key for key in wanted if key not in found)
        return len(found)

    def get(self, key: str, job: EvaluationJob, array) -> Optional[DesignPointEvaluation]:
        """Rehydrate the evaluation stored under ``key``, or ``None`` on a miss.

        The architecture is rebuilt from the job's parameters (cheap and
        deterministic), then populated with the cached numbers.
        """
        tracer = get_tracer()
        record = self._front.get(key)
        if record is None:
            if key in self._known_misses:
                self.stats.misses += 1
                if tracer.active:
                    tracer.counter("store.eval.miss")
                return None
            hit, record = self.backend.get(self.namespace, key)
            if not hit or not _valid_record(record):
                self.stats.misses += 1
                if tracer.active:
                    tracer.counter("store.eval.miss")
                return None
            self._front[key] = record
        self.stats.hits += 1
        if tracer.active:
            tracer.counter("store.eval.hit")
        return rehydrate_evaluation(record, job, array)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def janitor(self, max_age_seconds: Optional[float] = None) -> StoreJanitor:
        """A GC/compaction janitor over this cache's backend."""
        return StoreJanitor(self.backend, max_age_seconds=max_age_seconds)

    def store_stats(self) -> StoreStats:
        """Snapshot of the backing store (shards, entries, disk usage)."""
        return self.backend.stats()
