"""Persistent evaluation store backed by JSON-lines files.

Exploration campaigns repeatedly evaluate overlapping candidate grids:
re-running a sweep after enlarging the grid, exploring a second suite that
shares the base profiles, or simply re-issuing the same campaign.  The
cache makes every repeated evaluation free.

Layout
------
A cache directory holds one append-only JSON-lines file per *evaluation
context* (profiles + array + model calibration, see
:func:`repro.engine.jobs.evaluation_context_hash`)::

    <cache_dir>/evals-<context_hash_prefix>.jsonl

Each line is one completed evaluation, keyed by the job's content hash::

    {"key": "...", "label": "rs(shr=2,...)", "area_slices": ...,
     "critical_path_ns": ..., "stalls": {kernel: {"rs_stalls": ...,
     "rp_stalls": ..., "base_cycles": ...}}}

Only derived *numbers* are stored; the architecture object is rebuilt from
the job's parameters on a hit, so the format stays small and stable.
Corrupt or truncated lines (e.g. from an interrupted run) are skipped on
load, counted in :attr:`EvaluationCache.corrupt_lines` and reported once
via :class:`RuntimeWarning`.  Because keys are content hashes, a record can never be stale: any
change to the profiles, the array or the model calibration changes the
context hash and therefore the file and the keys.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.core.exploration import DesignPointEvaluation
from repro.core.stalls import StallEstimate
from repro.engine.jobs import EvaluationJob


@dataclass
class CacheStats:
    """Hit/miss counters of one engine run."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class EvaluationCache:
    """A keyed store of completed design-point evaluations.

    Parameters
    ----------
    path:
        JSON-lines file backing the cache.  ``None`` keeps the cache purely
        in memory (useful for tests and one-shot runs).
    """

    def __init__(self, path: Optional[Path] = None) -> None:
        self.path = Path(path) if path is not None else None
        self.stats = CacheStats()
        #: Number of corrupt/foreign lines skipped while loading the file.
        self.corrupt_lines = 0
        self._records: Dict[str, dict] = {}
        if self.path is not None and self.path.exists():
            self._load()

    @classmethod
    def for_context(cls, cache_dir: Path, context_hash: str) -> "EvaluationCache":
        """The cache file of one evaluation context inside ``cache_dir``."""
        cache_dir = Path(cache_dir)
        cache_dir.mkdir(parents=True, exist_ok=True)
        return cls(cache_dir / f"evals-{context_hash[:16]}.jsonl")

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    # ------------------------------------------------------------------
    # Load / store
    # ------------------------------------------------------------------
    def _load(self) -> None:
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = record["key"]
                    float(record["area_slices"])
                    float(record["critical_path_ns"])
                    record["stalls"]
                except (ValueError, KeyError, TypeError):
                    self.corrupt_lines += 1  # interrupted write or foreign line
                    continue
                self._records[key] = record
        if self.corrupt_lines:
            warnings.warn(
                f"evaluation cache {self.path}: skipped {self.corrupt_lines} "
                f"corrupt line(s); the affected evaluations will be recomputed",
                RuntimeWarning,
                stacklevel=2,
            )

    def put(self, key: str, evaluation: DesignPointEvaluation) -> None:
        """Record ``evaluation`` under ``key`` and append it to the file."""
        if key in self._records:
            return
        record = {
            "key": key,
            "label": evaluation.architecture.name,
            "area_slices": evaluation.area_slices,
            "critical_path_ns": evaluation.critical_path_ns,
            "stalls": {
                kernel: {
                    "rs_stalls": estimate.rs_stalls,
                    "rp_stalls": estimate.rp_stalls,
                    "base_cycles": estimate.base_cycles,
                }
                for kernel, estimate in evaluation.stall_estimates.items()
            },
        }
        self._records[key] = record
        self.stats.stores += 1
        if self.path is not None:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, key: str, job: EvaluationJob, array) -> Optional[DesignPointEvaluation]:
        """Rehydrate the evaluation stored under ``key``, or ``None`` on a miss.

        The architecture is rebuilt from the job's parameters (cheap and
        deterministic), then populated with the cached numbers.
        """
        record = self._records.get(key)
        if record is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        architecture = job.parameters.to_architecture(array, name=job.name)
        stall_estimates = {
            kernel: StallEstimate(
                kernel=kernel,
                architecture=architecture.name,
                rs_stalls=int(entry["rs_stalls"]),
                rp_stalls=int(entry["rp_stalls"]),
                base_cycles=int(entry["base_cycles"]),
            )
            for kernel, entry in record["stalls"].items()
        }
        return DesignPointEvaluation(
            parameters=job.parameters,
            architecture=architecture,
            area_slices=float(record["area_slices"]),
            critical_path_ns=float(record["critical_path_ns"]),
            stall_estimates=stall_estimates,
        )
