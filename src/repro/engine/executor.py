"""Pluggable evaluation backends and the engine's exploration loop.

The engine turns a candidate list into chunks of
:class:`~repro.engine.jobs.EvaluationJob` and pushes them through one of
three backends:

* ``serial`` — plain in-process loop (the seed's behaviour);
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`;
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor` whose
  workers receive the (picklable) explorer once via an initializer, so per
  chunk traffic is just the candidate parameters and the returned
  evaluations.

Chunks are dispatched in *waves* of up to ``workers`` chunks.  Between
waves the engine consults the persistent cache
(:mod:`repro.engine.cache`) and — when enabled — a dominance-based
**early-reject filter**: before the expensive stall estimation runs, a
candidate's exact area and an execution-time *lower bound* (base cycles ×
candidate clock period; stalls only ever add cycles) are compared against
the incremental Pareto frontier of already-completed feasible points.  A
candidate whose lower bound is already strictly beaten is provably
dominated, can never join the Pareto front, and is skipped outright.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.engine.stream import AsyncPrefetcher

from repro.core.exploration import (
    DesignPointEvaluation,
    ExplorationConstraints,
    ExplorationResult,
    RSPDesignSpaceExplorer,
    is_feasible,
)
from repro.core.pareto import knee_point, pareto_front
from repro.core.rsp_params import RSPParameters, base_parameters, enumerate_design_space
from repro.engine.cache import EvaluationCache, rehydrate_evaluation
from repro.engine.frontier import ParetoFrontier
from repro.engine.jobs import EvaluationJob, evaluation_context_hash
from repro.errors import ExplorationError
from repro.observers import CampaignObserver
from repro.trace.spans import Tracer, get_tracer, set_tracer

#: Backends accepted by :class:`ExecutorConfig`.
BACKENDS: Tuple[str, ...] = ("serial", "thread", "process")

#: The exploration's two objectives (both minimised).
AREA_TIME_OBJECTIVES = (
    lambda evaluation: evaluation.area_slices,
    lambda evaluation: evaluation.total_execution_time_ns,
)


@dataclass(frozen=True)
class ExecutorConfig:
    """Backend selection for one engine run.

    ``workers <= 1`` always resolves to the serial backend; a parallel
    backend with one worker would only add overhead.

    ``batch`` controls the vectorized fast path
    (:class:`repro.core.batch.BatchEvaluator`): ``None`` (the default)
    engages it automatically whenever numpy is importable and the
    resolved backend is serial or thread; ``False`` forces the scalar
    per-candidate walk; ``True`` requests it explicitly but still falls
    back to the scalar path when numpy is missing or the backend is the
    process pool (whose workers evaluate per chunk).  The flag never
    changes results — the batch path is bit-identical to the scalar
    models — which is also why it lives here rather than on
    :class:`~repro.engine.jobs.CampaignSpec`: it must not perturb
    campaign fingerprints or checkpoint identity.
    """

    backend: str = "serial"
    workers: int = 1
    chunk_size: int = 8
    batch: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ExplorationError(
                f"unknown backend {self.backend!r}; choose from {', '.join(BACKENDS)}"
            )
        if self.workers < 1:
            raise ExplorationError("workers must be at least 1")
        if self.chunk_size < 1:
            raise ExplorationError("chunk_size must be at least 1")

    @property
    def resolved_backend(self) -> str:
        if self.workers <= 1:
            return "serial"
        return self.backend


@dataclass
class EngineRunStats:
    """Counters of one engine exploration run."""

    backend: str = "serial"
    workers: int = 1
    chunk_size: int = 8
    total_jobs: int = 0
    evaluated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    early_rejected: int = 0
    #: Jobs served from a campaign checkpoint instead of being enqueued.
    checkpoint_hits: int = 0
    #: Waves actually dispatched (checkpoint-served jobs never form waves).
    waves: int = 0
    #: Evaluations served by the vectorized batch path (a subset of
    #: ``evaluated``; 0 when the scalar walk ran every candidate).
    batch_evaluations: int = 0
    wall_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0


# ----------------------------------------------------------------------
# Wave observation (the streaming mode's window into the engine)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WaveResult:
    """One job completed during a wave, however it was obtained."""

    index: int
    key: str
    label: str
    evaluation: DesignPointEvaluation
    #: ``"computed"`` (evaluated this wave) or ``"cache"`` (persistent
    #: cache hit discovered while assembling the wave).
    source: str
    #: Feasibility against the run's base point; ``None`` when the run
    #: carries no base evaluation (bare ``evaluate_jobs`` calls).
    feasible: Optional[bool] = None


@dataclass(frozen=True)
class WaveOutcome:
    """Everything one wave produced, in dispatch order."""

    wave_index: int
    results: Tuple[WaveResult, ...]
    #: ``(index, key)`` of the candidates the early-reject filter skipped.
    rejected: Tuple[Tuple[int, str], ...] = ()


class WaveObserver(CampaignObserver):
    """No-op base class for wave-level observers (subclass what you need).

    Since the observer unification this is an alias of the repo-wide
    :class:`repro.observers.CampaignObserver` protocol, kept under its
    historical name for the engine-facing surface.  The engine calls
    :meth:`wave_started` immediately before dispatching a wave and
    :meth:`wave_finished` after its results (including cache hits
    discovered while assembling it) are in.  :meth:`base_evaluated` fires
    once per exploration for the up-front base-point job, which never
    travels through a wave.  Subclasses may additionally override
    :meth:`node_finished` to watch flow-graph node materialisations.
    """


@dataclass
class EngineExplorationOutcome:
    """An :class:`ExplorationResult` plus the engine's run statistics."""

    result: ExplorationResult
    stats: EngineRunStats
    rejected: List[RSPParameters] = field(default_factory=list)


# ----------------------------------------------------------------------
# Process-pool plumbing: the explorer is shipped once per worker.
# ----------------------------------------------------------------------
_WORKER_EXPLORER: Optional[RSPDesignSpaceExplorer] = None


def _init_worker(explorer: RSPDesignSpaceExplorer) -> None:
    global _WORKER_EXPLORER
    _WORKER_EXPLORER = explorer


def _worker_evaluate(jobs: List[EvaluationJob]) -> List[DesignPointEvaluation]:
    assert _WORKER_EXPLORER is not None, "worker initializer did not run"
    return [_WORKER_EXPLORER.evaluate(job.parameters, name=job.name) for job in jobs]


_WORKER_TRACER: Optional[Tracer] = None


def _worker_tracer() -> Tracer:
    """The per-process worker tracer (one per pid, reused across chunks).

    One long-lived tracer per worker keeps the span-id sequence
    monotonically increasing across chunk calls: a fresh tracer per call
    would restart the sequence at 1 and two chunks handled by the same
    worker would collide on ``<pid>-1``, silently replacing each other in
    the DB.  The pid check renews the tracer after a fork so inherited
    state can never alias another process's ids.
    """
    global _WORKER_TRACER
    if _WORKER_TRACER is None or _WORKER_TRACER.pid != os.getpid():
        _WORKER_TRACER = Tracer()
    return _WORKER_TRACER


def _worker_evaluate_traced(
    jobs: List[EvaluationJob],
) -> Tuple[List[DesignPointEvaluation], List[dict], Dict[str, float]]:
    """Traced chunk evaluation inside a pool worker.

    The worker never writes the trace DB (SQLite handles are not shareable
    across processes — see :class:`repro.trace.db.TraceDB`).  Instead it
    installs its process-local tracer for the duration of the chunk so
    nested instrumentation lands in it, then drains and ships the
    finished span records and counter deltas back through the pool's
    return value; the parent ingests them into its own buffer.  Span ids
    carry the worker's pid, so records from a whole fleet never collide.
    """
    assert _WORKER_EXPLORER is not None, "worker initializer did not run"
    tracer = _worker_tracer()
    previous = set_tracer(tracer)
    try:
        with tracer.span("evaluate", kind="eval", jobs=len(jobs), backend="process"):
            evaluations = [
                _WORKER_EXPLORER.evaluate(job.parameters, name=job.name) for job in jobs
            ]
    finally:
        set_tracer(previous)
    batch = tracer.drain()
    return evaluations, batch.spans, batch.counters


def _chunked(items: Sequence, size: int) -> List[List]:
    return [list(items[start : start + size]) for start in range(0, len(items), size)]


#: Sentinel distinguishing "not resolved yet" from "resolved to None"
#: (numpy missing or the batch path disabled) in :class:`EvaluationEngine`.
_BATCH_UNSET = object()


class EvaluationEngine:
    """Evaluates job lists through a backend, a cache and the reject filter.

    The engine wraps an :class:`RSPDesignSpaceExplorer` (which carries the
    profiles, the array and the calibrated models) and adds everything the
    explorer's one-shot loop lacked: batching, parallel dispatch, persistent
    memoisation and dominance pruning.
    """

    def __init__(
        self,
        explorer: RSPDesignSpaceExplorer,
        config: Optional[ExecutorConfig] = None,
        cache: Optional[EvaluationCache] = None,
    ) -> None:
        self.explorer = explorer
        self.config = config or ExecutorConfig()
        self.cache = cache
        self._context_hash: Optional[str] = None
        self._batch_evaluator: Any = _BATCH_UNSET

    @property
    def context_hash(self) -> str:
        """Digest of the evaluation context (computed once, lazily).

        Cached on the explorer itself, not just this engine: the digest
        covers the profiles and models the explorer was constructed with
        (none of which are reassigned after construction), and hashing
        them walks every schedule profile — tens of milliseconds that
        :func:`run_exploration` would otherwise pay again for every
        sweep over the same explorer.
        """
        if self._context_hash is None:
            cached = getattr(self.explorer, "_evaluation_context_hash", None)
            if cached is None:
                cached = evaluation_context_hash(
                    self.explorer.profiles,
                    self.explorer.array,
                    self.explorer.cost_model,
                    self.explorer.timing_model,
                )
                self.explorer._evaluation_context_hash = cached
            self._context_hash = cached
        return self._context_hash

    def batch_evaluator(self):
        """The vectorized wave evaluator, or ``None`` on the scalar path.

        Resolved once per engine: ``None`` when the config disables
        batching, when the backend is the process pool (its workers
        evaluate chunks remotely) or when numpy is not importable — every
        one of those cases degrades to the per-candidate scalar walk with
        identical results.
        """
        if self.config.batch is False or self.config.resolved_backend == "process":
            return None
        if self._batch_evaluator is _BATCH_UNSET:
            from repro.core.batch import BatchEvaluator

            self._batch_evaluator = BatchEvaluator.from_explorer(self.explorer)
        return self._batch_evaluator

    # ------------------------------------------------------------------
    # Single-job path (base point, ad-hoc evaluations)
    # ------------------------------------------------------------------
    def evaluate_job(self, job: EvaluationJob, stats: Optional[EngineRunStats] = None) -> DesignPointEvaluation:
        """Evaluate one job through the cache."""
        if self.cache is None:
            evaluation = self.explorer.evaluate(job.parameters, name=job.name)
            if stats is not None:
                stats.evaluated += 1
            return evaluation
        key = job.content_hash(self.context_hash)
        cached = self.cache.get(key, job, self.explorer.array)
        if cached is not None:
            if stats is not None:
                stats.cache_hits += 1
            return cached
        evaluation = self.explorer.evaluate(job.parameters, name=job.name)
        self.cache.put(key, evaluation)
        if stats is not None:
            stats.cache_misses += 1
            stats.evaluated += 1
        return evaluation

    # ------------------------------------------------------------------
    # Batched path
    # ------------------------------------------------------------------
    def evaluate_jobs(
        self,
        jobs: Sequence[EvaluationJob],
        stats: EngineRunStats,
        reject_frontier: Optional[ParetoFrontier] = None,
        lower_bound_cycles: int = 0,
        base_evaluation: Optional[DesignPointEvaluation] = None,
        constraints: Optional[ExplorationConstraints] = None,
        completed: Optional[Mapping[int, DesignPointEvaluation]] = None,
        observer: Optional[WaveObserver] = None,
        prefetcher: Optional["AsyncPrefetcher"] = None,
    ) -> Tuple[Dict[int, DesignPointEvaluation], List[int]]:
        """Evaluate ``jobs``; returns (index → evaluation, rejected indices).

        When ``reject_frontier`` is given, candidates whose execution-time
        lower bound is already strictly beaten by a completed feasible
        point at no larger area are skipped before stall estimation, and
        feasible results are streamed into the frontier as waves finish.

        ``completed`` maps job indices to results obtained elsewhere (a
        campaign checkpoint): those jobs never form waves, are counted in
        ``stats.checkpoint_hits`` and feed the reject frontier exactly as
        cache hits do.  ``observer`` receives wave-level callbacks (see
        :class:`WaveObserver`).  ``prefetcher`` overlaps the next wave's
        batched cache lookup with the current wave's evaluation: while
        wave N computes, the background thread already issues wave N+1's
        ``mget``, so remote round trips hide behind compute instead of
        serialising with it.
        """
        results: Dict[int, DesignPointEvaluation] = {}
        rejected: List[int] = []
        effective_constraints = constraints or ExplorationConstraints()

        def feasibility(evaluation: DesignPointEvaluation) -> Optional[bool]:
            if base_evaluation is None:
                return None
            return is_feasible(evaluation, base_evaluation, effective_constraints)

        def frontier_add(evaluation: DesignPointEvaluation, feasible: Optional[bool]) -> None:
            if reject_frontier is not None and feasible:
                reject_frontier.add(
                    (evaluation.area_slices, evaluation.total_execution_time_ns)
                )

        pending_indices: List[int] = []
        for index in range(len(jobs)):
            if completed is not None and index in completed:
                evaluation = completed[index]
                results[index] = evaluation
                stats.checkpoint_hits += 1
                frontier_add(evaluation, feasibility(evaluation))
            else:
                pending_indices.append(index)

        backend = self.config.resolved_backend
        batch_evaluator = self.batch_evaluator()
        wave_width = self.config.workers if backend != "serial" else 1
        waves = _chunked(_chunked(pending_indices, self.config.chunk_size), wave_width)

        def wave_keys(wave: List[List[int]]) -> List[str]:
            return [
                jobs[index].content_hash(self.context_hash)
                for chunk in wave
                for index in chunk
            ]

        pool = None
        prefetched = None
        try:
            if backend == "thread" and batch_evaluator is None:
                pool = ThreadPoolExecutor(max_workers=self.config.workers)
            elif backend == "process":
                pool = ProcessPoolExecutor(
                    max_workers=self.config.workers,
                    initializer=_init_worker,
                    initargs=(self.explorer,),
                )
            if self.cache is not None and prefetcher is not None and waves:
                prefetched = prefetcher.submit(
                    lambda keys=wave_keys(waves[0]): self.cache.prefetch(keys)
                )
            for wave_index, wave in enumerate(waves):
                if self.cache is not None:
                    # One batched lookup per wave: over a remote store this
                    # is a single mget round trip; the per-key gets below
                    # are then answered from the cache's in-process front.
                    if prefetcher is not None:
                        if prefetched is not None:
                            prefetched.wait()
                        if wave_index + 1 < len(waves):
                            # Kick the next wave's round trip off *before*
                            # this wave evaluates — that is the overlap.
                            prefetched = prefetcher.submit(
                                lambda keys=wave_keys(waves[wave_index + 1]):
                                    self.cache.prefetch(keys)
                            )
                        else:
                            prefetched = None
                    else:
                        self.cache.prefetch(wave_keys(wave))
                if observer is not None:
                    observer.wave_started(
                        wave_index, sum(len(chunk) for chunk in wave)
                    )
                wave_events: List[WaveResult] = []
                wave_rejected: List[Tuple[int, str]] = []
                dispatch: List[List[int]] = []
                for chunk in wave:
                    misses: List[int] = []
                    for index in chunk:
                        job = jobs[index]
                        if self.cache is not None:
                            key = job.content_hash(self.context_hash)
                            cached = self.cache.get(key, job, self.explorer.array)
                            if cached is not None:
                                stats.cache_hits += 1
                                results[index] = cached
                                feasible = feasibility(cached)
                                frontier_add(cached, feasible)
                                if observer is not None:
                                    wave_events.append(
                                        WaveResult(
                                            index=index,
                                            key=key,
                                            label=job.label,
                                            evaluation=cached,
                                            source="cache",
                                            feasible=feasible,
                                        )
                                    )
                                continue
                            stats.cache_misses += 1
                        if reject_frontier is not None and self._early_reject(
                            job, reject_frontier, lower_bound_cycles
                        ):
                            stats.early_rejected += 1
                            rejected.append(index)
                            if observer is not None:
                                wave_rejected.append(
                                    (index, job.content_hash(self.context_hash))
                                )
                            continue
                        misses.append(index)
                    if misses:
                        dispatch.append(misses)

                if batch_evaluator is not None:
                    # Vectorized fast path: the whole wave's cache misses
                    # are encoded into one candidate matrix and evaluated
                    # in a handful of numpy passes.  Results are regrouped
                    # into the dispatch chunks so everything downstream
                    # (cache writes, observers, stats) is untouched.
                    flat = [index for chunk in dispatch for index in chunk]
                    if flat:
                        tracer = get_tracer()
                        if tracer.active:
                            with tracer.span(
                                "evaluate", kind="eval", jobs=len(flat), batch=True
                            ):
                                evaluated = batch_evaluator.evaluate(
                                    [jobs[index].parameters for index in flat],
                                    names=[jobs[index].name for index in flat],
                                )
                            tracer.counter("eval.batch", len(flat))
                        else:
                            evaluated = batch_evaluator.evaluate(
                                [jobs[index].parameters for index in flat],
                                names=[jobs[index].name for index in flat],
                            )
                        stats.batch_evaluations += len(flat)
                    wave_results = []
                    cursor = 0
                    for chunk in dispatch:
                        wave_results.append(evaluated[cursor : cursor + len(chunk)])
                        cursor += len(chunk)
                elif pool is None:
                    wave_results = [
                        _evaluate_with(self.explorer, [jobs[index] for index in chunk])
                        for chunk in dispatch
                    ]
                elif backend == "thread":
                    wave_results = list(
                        pool.map(
                            lambda chunk: _evaluate_with(
                                self.explorer, [jobs[index] for index in chunk]
                            ),
                            dispatch,
                        )
                    )
                else:
                    payloads = [[jobs[index] for index in chunk] for chunk in dispatch]
                    tracer = get_tracer()
                    if tracer.active:
                        # Workers buffer their spans locally and flush them
                        # through the parent: the pool's return value is the
                        # only channel, so the DB stays single-writer.
                        wave_results = []
                        for evaluations, span_records, counter_deltas in pool.map(
                            _worker_evaluate_traced, payloads
                        ):
                            wave_results.append(evaluations)
                            tracer.ingest(span_records)
                            for name, value in counter_deltas.items():
                                tracer.counter(name, value)
                    else:
                        wave_results = list(pool.map(_worker_evaluate, payloads))

                fresh: Dict[str, DesignPointEvaluation] = {}
                computed_vectors: List[Tuple[float, float]] = []
                for chunk, evaluations in zip(dispatch, wave_results):
                    for index, evaluation in zip(chunk, evaluations):
                        results[index] = evaluation
                        stats.evaluated += 1
                        feasible = feasibility(evaluation)
                        if reject_frontier is not None and feasible:
                            computed_vectors.append(
                                (evaluation.area_slices, evaluation.total_execution_time_ns)
                            )
                        if self.cache is not None or observer is not None:
                            key = jobs[index].content_hash(self.context_hash)
                            if self.cache is not None:
                                fresh[key] = evaluation
                            if observer is not None:
                                wave_events.append(
                                    WaveResult(
                                        index=index,
                                        key=key,
                                        label=jobs[index].label,
                                        evaluation=evaluation,
                                        source="computed",
                                        feasible=feasible,
                                    )
                                )
                if reject_frontier is not None and computed_vectors:
                    # One bulk merge per wave instead of m binary insertions.
                    reject_frontier.add_many(computed_vectors)
                if self.cache is not None and fresh:
                    # One batched store per wave (a single mput remotely).
                    self.cache.put_many(fresh)
                stats.waves += 1
                if observer is not None:
                    wave_events.sort(key=lambda event: event.index)
                    observer.wave_finished(
                        WaveOutcome(
                            wave_index=wave_index,
                            results=tuple(wave_events),
                            rejected=tuple(wave_rejected),
                        )
                    )
        finally:
            if prefetched is not None:
                prefetched.wait()
            if pool is not None:
                pool.shutdown()
        return results, rejected

    def _early_reject(
        self,
        job: EvaluationJob,
        frontier: ParetoFrontier,
        lower_bound_cycles: int,
    ) -> bool:
        """True when ``job`` is provably dominated before stall estimation.

        The candidate's area and clock period come from the cheap cost and
        timing models; its execution time is at least ``lower_bound_cycles``
        (the stall-free base schedule) times the period.  If a completed
        feasible point with no larger area already achieves a *strictly*
        smaller time than that bound, the candidate's true objective vector
        is dominated regardless of its stall count.
        """
        if not len(frontier):
            return False
        architecture = job.parameters.to_architecture(self.explorer.array, name=job.name)
        area = self.explorer.cost_model.array_area(architecture)
        period = self.explorer.timing_model.critical_path_ns(architecture)
        lower_bound_time = lower_bound_cycles * period
        return frontier.min_second_objective_at_or_below(area) < lower_bound_time


def _evaluate_with(
    explorer: RSPDesignSpaceExplorer, jobs: List[EvaluationJob]
) -> List[DesignPointEvaluation]:
    tracer = get_tracer()
    if not tracer.active:
        return [explorer.evaluate(job.parameters, name=job.name) for job in jobs]
    with tracer.span("evaluate", kind="eval", jobs=len(jobs)):
        return [explorer.evaluate(job.parameters, name=job.name) for job in jobs]


# ----------------------------------------------------------------------
# The engine's exploration loop (the explorer facade delegates here)
# ----------------------------------------------------------------------
def run_exploration(
    explorer: RSPDesignSpaceExplorer,
    candidates: Optional[Sequence[RSPParameters]] = None,
    constraints: Optional[ExplorationConstraints] = None,
    config: Optional[ExecutorConfig] = None,
    cache: Optional[EvaluationCache] = None,
    early_reject: bool = False,
    completed_records: Optional[Mapping[str, dict]] = None,
    observer: Optional[WaveObserver] = None,
    prefetcher: Optional["AsyncPrefetcher"] = None,
) -> EngineExplorationOutcome:
    """Run a full exploration through the engine.

    Reproduces the explorer's serial semantics exactly when
    ``early_reject`` is off: the same candidates in the same order, the
    same feasibility filter, the same Pareto front and the same knee-point
    selection — only batched, optionally parallel and cached.  With
    ``early_reject`` on, provably dominated candidates are skipped; the
    front and the selected design are unchanged, but the ``evaluated`` and
    ``feasible`` lists omit the rejected points (returned separately).

    ``completed_records`` maps job content hashes to flat evaluation
    records (a campaign checkpoint's state): matching jobs are rehydrated
    instead of enqueued, so a resumed campaign converges to the identical
    result without re-evaluating finished work.  ``observer`` and
    ``prefetcher`` are the streaming mode's hooks (see
    :meth:`EvaluationEngine.evaluate_jobs`).
    """
    started = time.perf_counter()
    constraints = constraints or ExplorationConstraints()
    candidate_list = list(candidates) if candidates is not None else enumerate_design_space()
    config = config or ExecutorConfig()
    engine = EvaluationEngine(explorer, config=config, cache=cache)
    stats = EngineRunStats(
        backend=config.resolved_backend,
        workers=config.workers,
        chunk_size=config.chunk_size,
    )

    # The base point is evaluated exactly once, up front: it anchors the
    # feasibility constraints and stands in for any "base" candidates.
    base_job = EvaluationJob(parameters=base_parameters(), name="Base")
    base_key = base_job.content_hash(engine.context_hash)
    if completed_records is not None and base_key in completed_records:
        base_evaluation = rehydrate_evaluation(
            completed_records[base_key], base_job, explorer.array
        )
        stats.checkpoint_hits += 1
        base_source = "checkpoint"
    else:
        hits_before = stats.cache_hits
        base_evaluation = engine.evaluate_job(base_job, stats)
        base_source = "cache" if stats.cache_hits > hits_before else "computed"
    if observer is not None:
        observer.base_evaluated(
            base_key,
            base_evaluation,
            base_source,
            is_feasible(base_evaluation, base_evaluation, constraints),
        )

    job_indices: List[int] = []
    jobs: List[EvaluationJob] = []
    for position, parameters in enumerate(candidate_list):
        if parameters.kind == "base":
            continue
        job_indices.append(position)
        jobs.append(EvaluationJob(parameters=parameters))
    # Distinct evaluation jobs: the non-base candidates plus the single
    # base evaluation ("base" entries in the candidate list reuse it).
    stats.total_jobs = len(jobs) + 1

    completed: Optional[Dict[int, DesignPointEvaluation]] = None
    if completed_records is not None:
        completed = {}
        for local_index, job in enumerate(jobs):
            record = completed_records.get(job.content_hash(engine.context_hash))
            if record is not None:
                completed[local_index] = rehydrate_evaluation(record, job, explorer.array)

    reject_frontier: Optional[ParetoFrontier] = None
    lower_bound_cycles = 0
    if early_reject:
        reject_frontier = ParetoFrontier(num_objectives=2)
        if is_feasible(base_evaluation, base_evaluation, constraints):
            reject_frontier.add(
                (base_evaluation.area_slices, base_evaluation.total_execution_time_ns)
            )
        lower_bound_cycles = sum(profile.length for profile in explorer.profiles.values())

    results, rejected_positions = engine.evaluate_jobs(
        jobs,
        stats,
        reject_frontier=reject_frontier,
        lower_bound_cycles=lower_bound_cycles,
        base_evaluation=base_evaluation,
        constraints=constraints,
        completed=completed,
        observer=observer,
        prefetcher=prefetcher,
    )

    by_candidate: Dict[int, DesignPointEvaluation] = {}
    for local_index, candidate_index in enumerate(job_indices):
        if local_index in results:
            by_candidate[candidate_index] = results[local_index]

    evaluated: List[DesignPointEvaluation] = []
    rejected: List[RSPParameters] = []
    for position, parameters in enumerate(candidate_list):
        if parameters.kind == "base":
            evaluated.append(base_evaluation)
        elif position in by_candidate:
            evaluated.append(by_candidate[position])
        else:
            rejected.append(parameters)

    feasible = [
        evaluation
        for evaluation in evaluated
        if is_feasible(evaluation, base_evaluation, constraints)
    ]
    pareto = pareto_front(feasible, objectives=AREA_TIME_OBJECTIVES)
    selected = knee_point(pareto, objectives=AREA_TIME_OBJECTIVES) if pareto else None

    stats.wall_seconds = time.perf_counter() - started
    result = ExplorationResult(
        base=base_evaluation,
        evaluated=evaluated,
        feasible=feasible,
        pareto=pareto,
        selected=selected,
    )
    return EngineExplorationOutcome(result=result, stats=stats, rejected=rejected)
