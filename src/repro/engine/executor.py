"""Pluggable evaluation backends and the engine's exploration loop.

The engine turns a candidate list into chunks of
:class:`~repro.engine.jobs.EvaluationJob` and pushes them through one of
three backends:

* ``serial`` — plain in-process loop (the seed's behaviour);
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`;
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor` whose
  workers receive the (picklable) explorer once via an initializer, so per
  chunk traffic is just the candidate parameters and the returned
  evaluations.

Chunks are dispatched in *waves* of up to ``workers`` chunks.  Between
waves the engine consults the persistent cache
(:mod:`repro.engine.cache`) and — when enabled — a dominance-based
**early-reject filter**: before the expensive stall estimation runs, a
candidate's exact area and an execution-time *lower bound* (base cycles ×
candidate clock period; stalls only ever add cycles) are compared against
the incremental Pareto frontier of already-completed feasible points.  A
candidate whose lower bound is already strictly beaten is provably
dominated, can never join the Pareto front, and is skipped outright.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.exploration import (
    DesignPointEvaluation,
    ExplorationConstraints,
    ExplorationResult,
    RSPDesignSpaceExplorer,
    is_feasible,
)
from repro.core.pareto import knee_point, pareto_front
from repro.core.rsp_params import RSPParameters, base_parameters, enumerate_design_space
from repro.engine.cache import EvaluationCache
from repro.engine.frontier import ParetoFrontier
from repro.engine.jobs import EvaluationJob, evaluation_context_hash
from repro.errors import ExplorationError

#: Backends accepted by :class:`ExecutorConfig`.
BACKENDS: Tuple[str, ...] = ("serial", "thread", "process")

#: The exploration's two objectives (both minimised).
AREA_TIME_OBJECTIVES = (
    lambda evaluation: evaluation.area_slices,
    lambda evaluation: evaluation.total_execution_time_ns,
)


@dataclass(frozen=True)
class ExecutorConfig:
    """Backend selection for one engine run.

    ``workers <= 1`` always resolves to the serial backend; a parallel
    backend with one worker would only add overhead.
    """

    backend: str = "serial"
    workers: int = 1
    chunk_size: int = 8

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ExplorationError(
                f"unknown backend {self.backend!r}; choose from {', '.join(BACKENDS)}"
            )
        if self.workers < 1:
            raise ExplorationError("workers must be at least 1")
        if self.chunk_size < 1:
            raise ExplorationError("chunk_size must be at least 1")

    @property
    def resolved_backend(self) -> str:
        if self.workers <= 1:
            return "serial"
        return self.backend


@dataclass
class EngineRunStats:
    """Counters of one engine exploration run."""

    backend: str = "serial"
    workers: int = 1
    chunk_size: int = 8
    total_jobs: int = 0
    evaluated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    early_rejected: int = 0
    wall_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0


@dataclass
class EngineExplorationOutcome:
    """An :class:`ExplorationResult` plus the engine's run statistics."""

    result: ExplorationResult
    stats: EngineRunStats
    rejected: List[RSPParameters] = field(default_factory=list)


# ----------------------------------------------------------------------
# Process-pool plumbing: the explorer is shipped once per worker.
# ----------------------------------------------------------------------
_WORKER_EXPLORER: Optional[RSPDesignSpaceExplorer] = None


def _init_worker(explorer: RSPDesignSpaceExplorer) -> None:
    global _WORKER_EXPLORER
    _WORKER_EXPLORER = explorer


def _worker_evaluate(jobs: List[EvaluationJob]) -> List[DesignPointEvaluation]:
    assert _WORKER_EXPLORER is not None, "worker initializer did not run"
    return [_WORKER_EXPLORER.evaluate(job.parameters, name=job.name) for job in jobs]


def _chunked(items: Sequence, size: int) -> List[List]:
    return [list(items[start : start + size]) for start in range(0, len(items), size)]


class EvaluationEngine:
    """Evaluates job lists through a backend, a cache and the reject filter.

    The engine wraps an :class:`RSPDesignSpaceExplorer` (which carries the
    profiles, the array and the calibrated models) and adds everything the
    explorer's one-shot loop lacked: batching, parallel dispatch, persistent
    memoisation and dominance pruning.
    """

    def __init__(
        self,
        explorer: RSPDesignSpaceExplorer,
        config: Optional[ExecutorConfig] = None,
        cache: Optional[EvaluationCache] = None,
    ) -> None:
        self.explorer = explorer
        self.config = config or ExecutorConfig()
        self.cache = cache
        self._context_hash: Optional[str] = None

    @property
    def context_hash(self) -> str:
        """Digest of the evaluation context (computed once, lazily)."""
        if self._context_hash is None:
            self._context_hash = evaluation_context_hash(
                self.explorer.profiles,
                self.explorer.array,
                self.explorer.cost_model,
                self.explorer.timing_model,
            )
        return self._context_hash

    # ------------------------------------------------------------------
    # Single-job path (base point, ad-hoc evaluations)
    # ------------------------------------------------------------------
    def evaluate_job(self, job: EvaluationJob, stats: Optional[EngineRunStats] = None) -> DesignPointEvaluation:
        """Evaluate one job through the cache."""
        if self.cache is None:
            evaluation = self.explorer.evaluate(job.parameters, name=job.name)
            if stats is not None:
                stats.evaluated += 1
            return evaluation
        key = job.content_hash(self.context_hash)
        cached = self.cache.get(key, job, self.explorer.array)
        if cached is not None:
            if stats is not None:
                stats.cache_hits += 1
            return cached
        evaluation = self.explorer.evaluate(job.parameters, name=job.name)
        self.cache.put(key, evaluation)
        if stats is not None:
            stats.cache_misses += 1
            stats.evaluated += 1
        return evaluation

    # ------------------------------------------------------------------
    # Batched path
    # ------------------------------------------------------------------
    def evaluate_jobs(
        self,
        jobs: Sequence[EvaluationJob],
        stats: EngineRunStats,
        reject_frontier: Optional[ParetoFrontier] = None,
        lower_bound_cycles: int = 0,
        base_evaluation: Optional[DesignPointEvaluation] = None,
        constraints: Optional[ExplorationConstraints] = None,
    ) -> Tuple[Dict[int, DesignPointEvaluation], List[int]]:
        """Evaluate ``jobs``; returns (index → evaluation, rejected indices).

        When ``reject_frontier`` is given, candidates whose execution-time
        lower bound is already strictly beaten by a completed feasible
        point at no larger area are skipped before stall estimation, and
        feasible results are streamed into the frontier as waves finish.
        """
        results: Dict[int, DesignPointEvaluation] = {}
        rejected: List[int] = []
        pending = deque(_chunked(list(range(len(jobs))), self.config.chunk_size))
        backend = self.config.resolved_backend
        wave_width = self.config.workers if backend != "serial" else 1

        pool = None
        try:
            if backend == "thread":
                pool = ThreadPoolExecutor(max_workers=self.config.workers)
            elif backend == "process":
                pool = ProcessPoolExecutor(
                    max_workers=self.config.workers,
                    initializer=_init_worker,
                    initargs=(self.explorer,),
                )
            while pending:
                wave = [pending.popleft() for _ in range(min(wave_width, len(pending)))]
                if self.cache is not None:
                    # One batched lookup per wave: over a remote store this
                    # is a single mget round trip; the per-key gets below
                    # are then answered from the cache's in-process front.
                    self.cache.prefetch(
                        jobs[index].content_hash(self.context_hash)
                        for chunk in wave
                        for index in chunk
                    )
                dispatch: List[List[int]] = []
                for chunk in wave:
                    misses: List[int] = []
                    for index in chunk:
                        job = jobs[index]
                        if self.cache is not None:
                            key = job.content_hash(self.context_hash)
                            cached = self.cache.get(key, job, self.explorer.array)
                            if cached is not None:
                                stats.cache_hits += 1
                                results[index] = cached
                                if (
                                    reject_frontier is not None
                                    and base_evaluation is not None
                                    and is_feasible(
                                        cached,
                                        base_evaluation,
                                        constraints or ExplorationConstraints(),
                                    )
                                ):
                                    reject_frontier.add(
                                        (cached.area_slices, cached.total_execution_time_ns)
                                    )
                                continue
                            stats.cache_misses += 1
                        if reject_frontier is not None and self._early_reject(
                            job, reject_frontier, lower_bound_cycles
                        ):
                            stats.early_rejected += 1
                            rejected.append(index)
                            continue
                        misses.append(index)
                    if misses:
                        dispatch.append(misses)

                if pool is None:
                    wave_results = [
                        _evaluate_with(self.explorer, [jobs[index] for index in chunk])
                        for chunk in dispatch
                    ]
                elif backend == "thread":
                    wave_results = list(
                        pool.map(
                            lambda chunk: _evaluate_with(
                                self.explorer, [jobs[index] for index in chunk]
                            ),
                            dispatch,
                        )
                    )
                else:
                    wave_results = list(
                        pool.map(
                            _worker_evaluate,
                            [[jobs[index] for index in chunk] for chunk in dispatch],
                        )
                    )

                fresh: Dict[str, DesignPointEvaluation] = {}
                for chunk, evaluations in zip(dispatch, wave_results):
                    for index, evaluation in zip(chunk, evaluations):
                        results[index] = evaluation
                        stats.evaluated += 1
                        if self.cache is not None:
                            fresh[jobs[index].content_hash(self.context_hash)] = evaluation
                if self.cache is not None and fresh:
                    # One batched store per wave (a single mput remotely).
                    self.cache.put_many(fresh)

                if reject_frontier is not None and base_evaluation is not None:
                    for chunk, evaluations in zip(dispatch, wave_results):
                        for evaluation in evaluations:
                            if is_feasible(evaluation, base_evaluation, constraints or ExplorationConstraints()):
                                reject_frontier.add(
                                    (evaluation.area_slices, evaluation.total_execution_time_ns)
                                )
        finally:
            if pool is not None:
                pool.shutdown()
        return results, rejected

    def _early_reject(
        self,
        job: EvaluationJob,
        frontier: ParetoFrontier,
        lower_bound_cycles: int,
    ) -> bool:
        """True when ``job`` is provably dominated before stall estimation.

        The candidate's area and clock period come from the cheap cost and
        timing models; its execution time is at least ``lower_bound_cycles``
        (the stall-free base schedule) times the period.  If a completed
        feasible point with no larger area already achieves a *strictly*
        smaller time than that bound, the candidate's true objective vector
        is dominated regardless of its stall count.
        """
        if not len(frontier):
            return False
        architecture = job.parameters.to_architecture(self.explorer.array, name=job.name)
        area = self.explorer.cost_model.array_area(architecture)
        period = self.explorer.timing_model.critical_path_ns(architecture)
        lower_bound_time = lower_bound_cycles * period
        return frontier.min_second_objective_at_or_below(area) < lower_bound_time


def _evaluate_with(
    explorer: RSPDesignSpaceExplorer, jobs: List[EvaluationJob]
) -> List[DesignPointEvaluation]:
    return [explorer.evaluate(job.parameters, name=job.name) for job in jobs]


# ----------------------------------------------------------------------
# The engine's exploration loop (the explorer facade delegates here)
# ----------------------------------------------------------------------
def run_exploration(
    explorer: RSPDesignSpaceExplorer,
    candidates: Optional[Sequence[RSPParameters]] = None,
    constraints: Optional[ExplorationConstraints] = None,
    config: Optional[ExecutorConfig] = None,
    cache: Optional[EvaluationCache] = None,
    early_reject: bool = False,
) -> EngineExplorationOutcome:
    """Run a full exploration through the engine.

    Reproduces the explorer's serial semantics exactly when
    ``early_reject`` is off: the same candidates in the same order, the
    same feasibility filter, the same Pareto front and the same knee-point
    selection — only batched, optionally parallel and cached.  With
    ``early_reject`` on, provably dominated candidates are skipped; the
    front and the selected design are unchanged, but the ``evaluated`` and
    ``feasible`` lists omit the rejected points (returned separately).
    """
    started = time.perf_counter()
    constraints = constraints or ExplorationConstraints()
    candidate_list = list(candidates) if candidates is not None else enumerate_design_space()
    config = config or ExecutorConfig()
    engine = EvaluationEngine(explorer, config=config, cache=cache)
    stats = EngineRunStats(
        backend=config.resolved_backend,
        workers=config.workers,
        chunk_size=config.chunk_size,
    )

    # The base point is evaluated exactly once, up front: it anchors the
    # feasibility constraints and stands in for any "base" candidates.
    base_evaluation = engine.evaluate_job(
        EvaluationJob(parameters=base_parameters(), name="Base"), stats
    )

    job_indices: List[int] = []
    jobs: List[EvaluationJob] = []
    for position, parameters in enumerate(candidate_list):
        if parameters.kind == "base":
            continue
        job_indices.append(position)
        jobs.append(EvaluationJob(parameters=parameters))
    # Distinct evaluation jobs: the non-base candidates plus the single
    # base evaluation ("base" entries in the candidate list reuse it).
    stats.total_jobs = len(jobs) + 1

    reject_frontier: Optional[ParetoFrontier] = None
    lower_bound_cycles = 0
    if early_reject:
        reject_frontier = ParetoFrontier(num_objectives=2)
        if is_feasible(base_evaluation, base_evaluation, constraints):
            reject_frontier.add(
                (base_evaluation.area_slices, base_evaluation.total_execution_time_ns)
            )
        lower_bound_cycles = sum(profile.length for profile in explorer.profiles.values())

    results, rejected_positions = engine.evaluate_jobs(
        jobs,
        stats,
        reject_frontier=reject_frontier,
        lower_bound_cycles=lower_bound_cycles,
        base_evaluation=base_evaluation,
        constraints=constraints,
    )

    by_candidate: Dict[int, DesignPointEvaluation] = {}
    for local_index, candidate_index in enumerate(job_indices):
        if local_index in results:
            by_candidate[candidate_index] = results[local_index]

    evaluated: List[DesignPointEvaluation] = []
    rejected: List[RSPParameters] = []
    for position, parameters in enumerate(candidate_list):
        if parameters.kind == "base":
            evaluated.append(base_evaluation)
        elif position in by_candidate:
            evaluated.append(by_candidate[position])
        else:
            rejected.append(parameters)

    feasible = [
        evaluation
        for evaluation in evaluated
        if is_feasible(evaluation, base_evaluation, constraints)
    ]
    pareto = pareto_front(feasible, objectives=AREA_TIME_OBJECTIVES)
    selected = knee_point(pareto, objectives=AREA_TIME_OBJECTIVES) if pareto else None

    stats.wall_seconds = time.perf_counter() - started
    result = ExplorationResult(
        base=base_evaluation,
        evaluated=evaluated,
        feasible=feasible,
        pareto=pareto,
        selected=selected,
    )
    return EngineExplorationOutcome(result=result, stats=stats, rejected=rejected)
