"""Campaign runner: multi-suite exploration with reports.

A campaign walks its suites in order.  For every suite the runner

1. obtains each kernel's :class:`~repro.core.stalls.ScheduleProfile` (the
   paper flow's "initial configuration contexts") through its *profile
   provider* — by default the staged mapping pipeline
   (:class:`~repro.mapping.pipeline.MappingPipeline`), so with a warm
   artifact store the base scheduling work is fetched instead of re-run,
2. runs the candidate grid through the evaluation engine — batched,
   optionally parallel, backed by the persistent cache, optionally with
   the dominance early-reject filter,
3. records the outcome as a :class:`SuiteReport`, including per-stage
   mapping timings and artifact-store hit counts.

The aggregate :class:`CampaignReport` is a plain dataclass tree, so it
serialises losslessly through :func:`repro.utils.serialization.to_json`
and is what ``python -m repro.engine`` writes to disk.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.exploration import ExplorationResult, RSPDesignSpaceExplorer
from repro.core.stalls import ScheduleProfile
from repro.engine.artifacts import ArtifactStore
from repro.engine.cache import EvaluationCache
from repro.store import (
    JanitorReport,
    RemoteBackend,
    StoreBackend,
    StoreJanitor,
    TieredBackend,
)
from repro.engine.executor import (
    EngineRunStats,
    ExecutorConfig,
    run_exploration,
)
from repro.engine.jobs import CampaignSpec, evaluation_context_hash, suite_kernels
from repro.engine.stream import AsyncPrefetcher, CampaignStreamController
from repro.ir.loops import Kernel
from repro.mapping.mapper import RSPMapper
from repro.flowgraph.stats import merge_stage_timings, stage_timings_as_dict

#: Hook supplying the base-schedule profiles of one suite.  Receives the
#: suite name and its kernels; returns profiles keyed by kernel name.
ProfileProvider = Callable[[str, Sequence[Kernel]], Dict[str, ScheduleProfile]]


@dataclass
class SuiteReport:
    """Outcome of one suite within a campaign."""

    suite: str
    kernels: List[str]
    num_candidates: int
    num_feasible: int
    num_pareto: int
    num_early_rejected: int
    selected: Optional[str]
    selected_kind: Optional[str]
    base_area_slices: float
    base_execution_time_ns: float
    selected_area_slices: Optional[float]
    selected_execution_time_ns: Optional[float]
    cache_hits: int
    cache_misses: int
    profile_seconds: float
    explore_seconds: float
    #: Evaluations served by the vectorized batch path (0 on scalar runs).
    batch_evaluations: int = 0
    artifact_hits: int = 0
    artifact_misses: int = 0
    mapping_seconds: float = 0.0
    mapping_stages: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def area_reduction_percent(self) -> Optional[float]:
        if self.selected_area_slices is None or self.base_area_slices <= 0:
            return None
        return 100.0 * (self.base_area_slices - self.selected_area_slices) / self.base_area_slices


@dataclass
class CampaignReport:
    """Aggregate outcome of one campaign run."""

    campaign: str
    suites: List[SuiteReport]
    backend: str
    workers: int
    chunk_size: int
    early_reject: bool
    cache_path: Optional[str]
    total_jobs: int
    cache_hits: int
    cache_misses: int
    early_rejected: int
    wall_seconds: float
    #: Evaluations served by the vectorized batch path across all suites.
    batch_evaluations: int = 0
    artifact_dir: Optional[str] = None
    artifact_hits: int = 0
    artifact_misses: int = 0
    mapping_seconds: float = 0.0
    mapping_stages: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Storage-layer snapshot: shard configuration, backend stats of the
    #: artifact store and evaluation caches, and the janitor outcome when
    #: GC/compaction ran (see :meth:`CampaignRunner.run`).
    store_stats: Dict[str, object] = field(default_factory=dict)
    #: Total evaluation waves across all suites.
    waves: int = 0
    #: Flow block of a custom-flow campaign (``{}`` on the canonical
    #: flow): the executing flow's name, edge expressions and node names,
    #: straight from :meth:`~repro.mapping.pipeline.MappingPipeline.describe_flow`.
    flow: Dict[str, object] = field(default_factory=dict)
    #: Trace block of a traced run (``{}`` otherwise): the trace DB path,
    #: spans flushed and counter totals — the same numbers
    #: ``python -m repro.trace summary`` reads back from that DB.
    trace: Dict[str, object] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def summary_rows(self) -> List[List[object]]:
        """Per-suite rows for a text table (suite, selection, cache, timing)."""
        rows: List[List[object]] = []
        for suite in self.suites:
            rows.append(
                [
                    suite.suite,
                    len(suite.kernels),
                    suite.num_candidates,
                    suite.num_feasible,
                    suite.num_pareto,
                    suite.num_early_rejected,
                    suite.selected or "-",
                    (
                        f"{suite.area_reduction_percent:.1f}%"
                        if suite.area_reduction_percent is not None
                        else "-"
                    ),
                    suite.cache_hits,
                    suite.cache_misses,
                    round(suite.mapping_seconds, 3),
                    round(suite.explore_seconds, 3),
                ]
            )
        return rows


#: Headers matching :meth:`CampaignReport.summary_rows`.
SUMMARY_HEADERS: Tuple[str, ...] = (
    "suite",
    "kernels",
    "candidates",
    "feasible",
    "pareto",
    "rejected",
    "selected",
    "area-R%",
    "hits",
    "misses",
    "mapping(s)",
    "explore(s)",
)


class CampaignRunner:
    """Executes a :class:`~repro.engine.jobs.CampaignSpec`.

    Parameters
    ----------
    spec:
        The campaign description (suites, grid, constraints, executor).
    cache_dir:
        Directory for the persistent evaluation store; ``None`` disables
        persistence (evaluations are still memoised within the run).
    mapper:
        Pipeline-backed mapper to reuse; a fresh one is created when
        omitted, rooted at ``artifact_dir`` when given.
    artifact_dir:
        Directory for the persistent mapping-artifact store (typically the
        same as ``cache_dir`` — the store nests under ``artifacts/``);
        ``None`` keeps artifacts in memory.  Ignored when ``mapper`` is
        supplied.
    profile_provider:
        Hook producing each suite's base-schedule profiles.  Defaults to
        the mapper's staged pipeline, so warm artifact stores serve
        profiles without re-mapping; replace it to feed pre-computed or
        remotely fetched profiles into a campaign.
    store_shards:
        Shard count for both persistent stores (evaluation cache shard
        files, artifact shard subdirectories).  1 reproduces the legacy
        single-file/flat layouts; existing layouts of any shard count are
        read either way.  Ignored when ``mapper`` is supplied (its store
        is already configured).
    store_url:
        URL of a ``repro.service`` store server.  Both the evaluation
        cache and the artifact store then live on that service (one warm
        store for a whole fleet of workers) instead of under
        ``cache_dir``/``artifact_dir`` — passing those together with a
        URL is an error.  The evaluation records of each context land in
        a ``evals-<ctx>`` namespace, artifacts under their stage names.
    store_tier:
        Front the remote store with an in-memory read-through /
        write-behind :class:`~repro.store.TieredBackend`: repeat reads
        never re-contact the server and writes batch into one request
        per flush.  Only meaningful with ``store_url``.
    stream_dir:
        Enable the streaming campaign mode (:mod:`repro.engine.stream`):
        wave-level events are appended to ``<stream_dir>/events.jsonl``, a
        crash-atomic checkpoint is rewritten after every wave, and the
        evaluation-cache lookups of wave N+1 (plus the next suite's
        mapping-stage artifacts) are prefetched by a background thread
        while wave N computes.
    resume:
        Load the checkpoint inside ``stream_dir`` and serve its completed
        jobs instead of re-enqueuing them; the campaign then converges to
        the identical final result.  Requires ``stream_dir``; with no
        checkpoint on disk the campaign simply starts fresh.
    trace_dir:
        Enable span-based tracing (:mod:`repro.trace`): a
        :class:`~repro.trace.collect.TraceCollector` is installed for the
        duration of the run and drains campaign/suite/wave/stage/eval
        spans plus counters into ``<trace_dir>/trace.db``, which
        ``python -m repro.trace`` renders as dashboards.  May be the same
        directory as ``stream_dir`` — the DB then sits next to the event
        journal.  Untraced runs keep the no-op tracer and pay nothing.
    flow:
        Custom mapping flow for the campaign — a flow config (dict or
        JSON path, see :mod:`repro.flowgraph.config`) or a pre-built
        :class:`~repro.flowgraph.core.Flow`.  The runner's pipeline then
        executes that flow instead of the canonical five-node mapping
        flow, the report gains a ``flow`` block describing it, and after
        each suite's exploration the kernels are additionally mapped onto
        the selected design point, so conditionally routed / raced nodes
        (``rearrange`` vs ``remap`` vs skip) show up in the suite's
        ``mapping_stages``.  Incompatible with ``mapper`` (a supplied
        mapper already carries its pipeline and flow).
    batch:
        Vectorized-evaluation override forwarded to
        :class:`~repro.engine.executor.ExecutorConfig`: ``None`` engages
        the numpy fast path automatically where it applies, ``False``
        forces the scalar walk.  Results are identical either way, which
        is why the flag is a runner argument and not part of the
        :class:`~repro.engine.jobs.CampaignSpec` (it must not change
        campaign fingerprints or checkpoint identity).
    gc_max_age:
        When set, a post-campaign janitor pass evicts store entries not
        written or read for this many seconds.
    compact:
        When true, the post-campaign janitor pass also compacts the
        stores (dedups/drops corrupt JSONL lines, migrates legacy files
        into their hashed shard locations, removes temp strays).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        cache_dir: Optional[Path] = None,
        mapper: Optional[RSPMapper] = None,
        artifact_dir: Optional[Path] = None,
        profile_provider: Optional[ProfileProvider] = None,
        store_shards: int = 1,
        gc_max_age: Optional[float] = None,
        compact: bool = False,
        store_url: Optional[str] = None,
        store_tier: bool = False,
        stream_dir: Optional[Path] = None,
        resume: bool = False,
        trace_dir: Optional[Path] = None,
        batch: Optional[bool] = None,
        flow=None,
    ) -> None:
        if mapper is not None and flow is not None:
            raise ValueError(
                "a supplied mapper already carries its pipeline and flow; "
                "pass flow= only when the runner builds the mapper"
            )
        if store_url is not None and (cache_dir is not None or artifact_dir is not None):
            raise ValueError(
                "store_url replaces the local stores; drop cache_dir/artifact_dir"
            )
        if store_tier and store_url is None:
            raise ValueError("store_tier tiers a remote store; it needs store_url")
        if resume and stream_dir is None:
            raise ValueError("resume replays a stream directory; it needs stream_dir")
        self.spec = spec
        self.batch = batch
        self.stream_dir = Path(stream_dir) if stream_dir is not None else None
        self.resume = resume
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        #: Facts of the last streamed run (``None`` outside stream mode).
        self.stream_summary: Optional[Dict[str, object]] = None
        #: Facts of the last traced run (``None`` outside trace mode).
        self.trace_summary: Optional[Dict[str, object]] = None
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.artifact_dir = Path(artifact_dir) if artifact_dir is not None else None
        self.store_shards = store_shards
        self.gc_max_age = gc_max_age
        self.compact = compact
        self.store_url = store_url
        self._remote: Optional[RemoteBackend] = None
        self._tier: Optional[TieredBackend] = None
        self._store_backend: Optional[StoreBackend] = None
        if store_url is not None:
            self._remote = RemoteBackend(store_url)
            self._store_backend = self._remote
            if store_tier:
                self._tier = TieredBackend(self._remote)
                self._store_backend = self._tier
        self.flow = flow
        if mapper is None:
            if self._store_backend is not None:
                store = ArtifactStore(backend=self._store_backend)
            else:
                store = ArtifactStore(self.artifact_dir, shards=store_shards)
            mapper = RSPMapper(store=store, flow=flow)
        self.mapper = mapper
        self.pipeline = mapper.pipeline
        self.profile_provider: ProfileProvider = profile_provider or self._pipeline_profiles

    def close(self) -> None:
        """Drain the write-behind tier and close remote connections."""
        if self._tier is not None:
            self._tier.close()
        if self._remote is not None:
            self._remote.close()

    def _pipeline_profiles(
        self, suite_name: str, kernels: Sequence[Kernel]
    ) -> Dict[str, ScheduleProfile]:
        """Default profile provider: the store-backed mapping pipeline."""
        return self.pipeline.profiles_for(kernels)

    @staticmethod
    def _suite_observer(collector, stream, suite_name: str):
        """The engine's single observer slot: tracing and/or streaming."""
        stream_observer = stream.suite_observer(suite_name) if stream is not None else None
        if collector is None:
            return stream_observer
        from repro.observers import compose_observers

        return compose_observers(collector.observer(suite_name), stream_observer)

    def run(self) -> Tuple[CampaignReport, Dict[str, ExplorationResult]]:
        """Run every suite; returns the report and per-suite exploration results."""
        stream: Optional[CampaignStreamController] = None
        prefetcher: Optional[AsyncPrefetcher] = None
        artifact_prefetcher: Optional[AsyncPrefetcher] = None
        collector = None
        if self.trace_dir is not None:
            # Imported here, not at module scope: repro.trace.collect
            # subclasses this package's WaveObserver, so a module-level
            # import would be circular.
            from repro.trace.collect import TraceCollector

            collector = TraceCollector(self.trace_dir, campaign=self.spec.name)
            collector.install()
        if self.stream_dir is not None:
            stream = CampaignStreamController(self.stream_dir, self.spec, resume=self.resume)
            prefetcher = AsyncPrefetcher()
            # Separate worker for artifact warm-up: on the shared worker a
            # long next-suite fetch would queue ahead of — and stall — the
            # engine's wave-0 cache prefetch.
            artifact_prefetcher = AsyncPrefetcher(name="artifact-prefetcher")
        try:
            return self._run(stream, prefetcher, artifact_prefetcher, collector)
        finally:
            if prefetcher is not None:
                prefetcher.close()
            if artifact_prefetcher is not None:
                artifact_prefetcher.close()
            if stream is not None:
                self.stream_summary = stream.summary()
                stream.close()
            if collector is not None:
                collector.uninstall()
                self.trace_summary = collector.close()

    def _run(
        self,
        stream: Optional[CampaignStreamController],
        prefetcher: Optional[AsyncPrefetcher],
        artifact_prefetcher: Optional[AsyncPrefetcher],
        collector=None,
    ) -> Tuple[CampaignReport, Dict[str, ExplorationResult]]:
        started = time.perf_counter()
        config = ExecutorConfig(
            backend=self.spec.backend,
            workers=self.spec.workers,
            chunk_size=self.spec.chunk_size,
            batch=self.batch,
        )
        candidates = self.spec.candidate_grid()
        suite_reports: List[SuiteReport] = []
        results: Dict[str, ExplorationResult] = {}
        cache_paths: List[str] = []
        caches: List[EvaluationCache] = []
        totals = EngineRunStats()
        run_snapshot = self.pipeline.stats.snapshot()
        store_stats = self.pipeline.store.stats
        store_hits_before = store_stats.hits
        store_misses_before = store_stats.misses
        if stream is not None:
            stream.campaign_started()
        campaign_span = None
        if collector is not None:
            campaign_span = collector.tracer.span(
                self.spec.name,
                kind="campaign",
                backend=config.resolved_backend,
                workers=config.workers,
                suites=len(self.spec.suites),
                candidates=len(candidates),
            )

        artifact_prefetch = None
        for suite_position, suite_name in enumerate(self.spec.suites):
            if artifact_prefetch is not None:
                # The background warm-up of *this* suite's artifacts must
                # land before the pipeline maps it — two threads running
                # the same pipeline would race its stat counters.
                artifact_prefetch.wait()
                artifact_prefetch = None
            stage_snapshot = self.pipeline.stats.snapshot()
            store_suite_hits = store_stats.hits
            store_suite_misses = store_stats.misses
            suite_span = None
            if collector is not None:
                suite_span = collector.tracer.span(
                    suite_name, kind="suite", suite=suite_name
                )
            observer = self._suite_observer(collector, stream, suite_name)
            profile_started = time.perf_counter()
            kernels = suite_kernels(suite_name)
            # The same composed observer watches the suite end to end: the
            # mapping flow's node events while profiles build, then the
            # engine's waves.  Restored before the next suite's background
            # artifact prefetch can run.
            self.pipeline.observer = observer
            try:
                profiles = self.profile_provider(suite_name, kernels)
            finally:
                self.pipeline.observer = None
            profile_seconds = time.perf_counter() - profile_started
            stage_delta = self.pipeline.stats.since(stage_snapshot)
            if collector is not None:
                collector.tracer.record_span(
                    "profiles",
                    kind="span",
                    duration_s=profile_seconds,
                    suite=suite_name,
                    kernels=len(kernels),
                )

            if artifact_prefetcher is not None and suite_position + 1 < len(self.spec.suites):
                # While this suite's waves evaluate, pull the next suite's
                # mapping-stage artifacts into the store's memory front —
                # one batched fetch per stage instead of blocking lookups
                # inside the next profile_provider call.
                upcoming = suite_kernels(self.spec.suites[suite_position + 1])
                artifact_prefetch = artifact_prefetcher.submit(
                    lambda kernels=upcoming: self.pipeline.prefetch_stages(kernels),
                    label=f"artifacts:{self.spec.suites[suite_position + 1]}",
                )

            explorer = RSPDesignSpaceExplorer(profiles, array=self.mapper.base.array)
            cache: Optional[EvaluationCache] = None
            if self._store_backend is not None or self.cache_dir is not None:
                context = evaluation_context_hash(
                    profiles,
                    explorer.array,
                    explorer.cost_model,
                    explorer.timing_model,
                )
                if self._store_backend is not None:
                    namespace = f"evals-{context[:16]}"
                    cache = EvaluationCache(
                        backend=self._store_backend, namespace=namespace
                    )
                    cache_paths.append(f"{self.store_url}#{namespace}")
                else:
                    cache = EvaluationCache.for_context(
                        self.cache_dir, context, shards=self.store_shards
                    )
                    cache_paths.append(str(cache.path))
                caches.append(cache)

            outcome = run_exploration(
                explorer,
                candidates=candidates,
                constraints=self.spec.constraints,
                config=config,
                cache=cache,
                early_reject=self.spec.early_reject,
                completed_records=(
                    stream.completed_records(suite_name) if stream is not None else None
                ),
                observer=observer,
                prefetcher=prefetcher,
            )
            exploration = outcome.result
            stats = outcome.stats
            results[suite_name] = exploration
            if stream is not None:
                stream.suite_finished(suite_name)

            selected = exploration.selected
            if self.flow is not None and selected is not None:
                # Custom flows earn their keep below the profile stages:
                # map the suite onto the selected design point so the
                # routed/raced branches (rearrange vs remap vs skip) run
                # and land in this suite's mapping_stages block.
                if artifact_prefetch is not None:
                    # The pipeline is not thread-safe against the next
                    # suite's background artifact warm-up.
                    artifact_prefetch.wait()
                    artifact_prefetch = None
                route_snapshot = self.pipeline.stats.snapshot()
                for kernel in kernels:
                    self.pipeline.run(kernel, selected.architecture)
                stage_delta = merge_stage_timings(
                    stage_delta, self.pipeline.stats.since(route_snapshot)
                )
            suite_reports.append(
                SuiteReport(
                    suite=suite_name,
                    kernels=[kernel.name for kernel in kernels],
                    num_candidates=len(candidates),
                    num_feasible=len(exploration.feasible),
                    num_pareto=len(exploration.pareto),
                    num_early_rejected=len(outcome.rejected),
                    selected=selected.parameters.describe() if selected else None,
                    selected_kind=selected.parameters.kind if selected else None,
                    base_area_slices=exploration.base.area_slices,
                    base_execution_time_ns=exploration.base.total_execution_time_ns,
                    selected_area_slices=selected.area_slices if selected else None,
                    selected_execution_time_ns=(
                        selected.total_execution_time_ns if selected else None
                    ),
                    cache_hits=stats.cache_hits,
                    cache_misses=stats.cache_misses,
                    profile_seconds=profile_seconds,
                    explore_seconds=stats.wall_seconds,
                    batch_evaluations=stats.batch_evaluations,
                    artifact_hits=store_stats.hits - store_suite_hits,
                    artifact_misses=store_stats.misses - store_suite_misses,
                    mapping_seconds=sum(delta.seconds for delta in stage_delta.values()),
                    mapping_stages=stage_timings_as_dict(stage_delta),
                )
            )
            totals.total_jobs += stats.total_jobs
            totals.cache_hits += stats.cache_hits
            totals.cache_misses += stats.cache_misses
            totals.early_rejected += stats.early_rejected
            totals.checkpoint_hits += stats.checkpoint_hits
            totals.waves += stats.waves
            totals.batch_evaluations += stats.batch_evaluations
            if suite_span is not None:
                suite_span.set("kernels", len(kernels))
                suite_span.set("candidates", len(candidates))
                suite_span.set("waves", stats.waves)
                suite_span.set("feasible", len(exploration.feasible))
                suite_span.set("pareto", len(exploration.pareto))
                suite_span.end()
                # One batched SQLite transaction per suite keeps the DB
                # current for a live dashboard without per-span writes.
                collector.flush()

        if prefetcher is not None:
            prefetcher.drain()
        if artifact_prefetcher is not None:
            artifact_prefetcher.drain()
        if self._tier is not None:
            # Settle the write-behind queue so the report's server-side
            # snapshots and flush counters describe a quiesced store.
            self._tier.flush()

        janitor_block: Optional[Dict[str, object]] = None
        if self.compact or self.gc_max_age is not None:
            janitor_block = self._run_janitors(caches)

        trace_block: Dict[str, object] = {}
        if collector is not None:
            if campaign_span is not None:
                campaign_span.set("jobs", totals.total_jobs)
                campaign_span.set("waves", totals.waves)
                campaign_span.end()
            trace_block = collector.summary()

        run_delta = self.pipeline.stats.since(run_snapshot)
        artifact_directory = self.pipeline.store.directory
        report = CampaignReport(
            campaign=self.spec.name,
            suites=suite_reports,
            backend=config.resolved_backend,
            workers=config.workers,
            chunk_size=config.chunk_size,
            early_reject=self.spec.early_reject,
            cache_path=";".join(cache_paths) if cache_paths else None,
            total_jobs=totals.total_jobs,
            cache_hits=totals.cache_hits,
            cache_misses=totals.cache_misses,
            early_rejected=totals.early_rejected,
            wall_seconds=time.perf_counter() - started,
            batch_evaluations=totals.batch_evaluations,
            artifact_dir=str(artifact_directory) if artifact_directory is not None else None,
            artifact_hits=store_stats.hits - store_hits_before,
            artifact_misses=store_stats.misses - store_misses_before,
            mapping_seconds=sum(delta.seconds for delta in run_delta.values()),
            mapping_stages=stage_timings_as_dict(run_delta),
            store_stats=self._store_stats_block(caches, janitor_block),
            waves=totals.waves,
            trace=trace_block,
            flow=self.pipeline.describe_flow() if self.flow is not None else {},
        )
        if stream is not None:
            stream.campaign_finished(checkpoint_hits=totals.checkpoint_hits)
        dropped = report.store_stats.get("dropped_writes", 0)
        if dropped:
            warnings.warn(
                f"campaign {self.spec.name!r}: {dropped} store write(s) were "
                "dropped while the store service was degraded — the shared "
                "store is missing results this run computed; they will be "
                "recomputed by the next cold worker",
                RuntimeWarning,
                stacklevel=2,
            )
        return report, results

    def _store_stats_block(
        self, caches: Sequence[EvaluationCache], janitor_block: Optional[Dict[str, object]]
    ) -> Dict[str, object]:
        """The report's storage snapshot (plus remote/tier counters)."""
        block: Dict[str, object] = {
            "shards": self.store_shards,
            "artifacts": self.pipeline.store.store_stats(),
            "janitor": janitor_block,
        }
        if self._store_backend is not None:
            # All remote caches share one backend; one snapshot suffices.
            block["evaluations"] = [self._store_backend.stats()] if caches else []
            block["store_url"] = self.store_url
        else:
            block["evaluations"] = [cache.store_stats() for cache in caches]
        if self._remote is not None:
            block["remote"] = self._remote.remote_stats()
        if self._tier is not None:
            block["tier"] = self._tier.tier_stats()
        # Degraded-mode data loss, surfaced as a first-class field: writes
        # the remote client dropped while offline plus records the tier's
        # flusher could not deliver (0 — and ignorable — for local stores).
        dropped = self._remote.dropped_writes if self._remote is not None else 0
        if self._tier is not None:
            dropped += self._tier.dropped_records
        block["dropped_writes"] = dropped
        return block

    def _run_janitors(self, caches: Sequence[EvaluationCache]) -> Dict[str, object]:
        """Post-campaign GC/compaction over every persistent store."""
        block: Dict[str, object] = {"gc_max_age": self.gc_max_age, "compacted": self.compact}
        if self._store_backend is not None:
            # One server-side pass covers every namespace (artifacts and
            # all evaluation contexts) in a single request.
            block["remote"] = StoreJanitor(
                self._store_backend, max_age_seconds=self.gc_max_age
            ).sweep(compact=self.compact)
            return block
        if self.pipeline.store.persistent:
            block["artifacts"] = self.pipeline.store.janitor(self.gc_max_age).sweep(
                compact=self.compact
            )
        evaluation_reports: List[JanitorReport] = []
        for cache in caches:
            if cache.path is not None:
                evaluation_reports.append(
                    cache.janitor(self.gc_max_age).sweep(compact=self.compact)
                )
        if evaluation_reports:
            block["evaluations"] = evaluation_reports
        return block
