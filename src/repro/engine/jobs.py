"""Evaluation jobs and campaign specifications.

A *campaign* is the engine's unit of work: one or more kernel suites, a
candidate grid over the RSP parameter space, feasibility constraints and
an executor configuration.  Each candidate becomes an
:class:`EvaluationJob` whose identity is a content hash over everything
that determines the evaluation outcome:

* the candidate's :class:`~repro.core.rsp_params.RSPParameters`,
* the *evaluation context* — the base-architecture schedule profiles, the
  array dimensions and the cost/timing-model calibration.

Two jobs with the same hash are guaranteed to produce the same
:class:`~repro.core.exploration.DesignPointEvaluation`, which is what
makes the persistent cache (:mod:`repro.engine.cache`) safe across runs,
suites and overlapping candidate grids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.array import ArraySpec
from repro.core.cost_model import HardwareCostModel
from repro.core.exploration import ExplorationConstraints
from repro.core.rsp_params import RSPParameters, enumerate_design_space
from repro.core.stalls import ScheduleProfile
from repro.core.timing_model import TimingModel
from repro.errors import ExplorationError
from repro.utils.serialization import content_hash

#: Suites a campaign can run, in report order.  Values are import paths
#: resolved lazily so a campaign spec stays a plain, hashable value object.
SUITE_NAMES: Tuple[str, ...] = ("paper", "livermore", "dsp", "h264")


def suite_kernels(name: str):
    """Instantiate the kernels of the named suite."""
    from repro.kernels import dsp_suite, h264_kernels, livermore_suite, paper_suite

    factories = {
        "paper": paper_suite,
        "livermore": livermore_suite,
        "dsp": dsp_suite,
        "h264": h264_kernels,
    }
    try:
        factory = factories[name]
    except KeyError as exc:
        known = ", ".join(SUITE_NAMES)
        raise ExplorationError(f"unknown suite {name!r}; known suites: {known}") from exc
    return factory()


def hash_payload(payload: object) -> str:
    """SHA-256 over the canonical JSON form of ``payload``.

    Alias of :func:`repro.utils.serialization.content_hash`, the hashing
    convention shared with the mapping pipeline's artifact keys.
    """
    return content_hash(payload)


#: Memo for :meth:`EvaluationJob.content_hash`.  The digest is fully
#: determined by ``(parameters, context_hash)`` — the optional job name is
#: a display label, not part of the payload — and candidate grids reuse the
#: same :class:`RSPParameters` values across sweeps, caches and observers,
#: so repeated hashing of one candidate is pure waste.  Entries are tiny
#: and the parameter space is enumerable, but cap it anyway so a pathological
#: caller cannot grow it without bound.
_CONTENT_HASH_MEMO: Dict[Tuple[RSPParameters, str], str] = {}
_CONTENT_HASH_MEMO_LIMIT = 65536


def evaluation_context_hash(
    profiles: Dict[str, ScheduleProfile],
    array: ArraySpec,
    cost_model: HardwareCostModel,
    timing_model: TimingModel,
) -> str:
    """Digest of everything besides the candidate that shapes an evaluation."""
    payload = {
        "profiles": {name: profiles[name] for name in sorted(profiles)},
        "array": array,
        "cost_components": sorted(
            (component for component in cost_model.library.components()),
            key=lambda component: component.name,
        ),
        "timing_components": sorted(
            (component for component in timing_model.library.components()),
            key=lambda component: component.name,
        ),
        "wiring_margin_ns": timing_model.wiring_margin_ns,
    }
    return hash_payload(payload)


@dataclass(frozen=True)
class EvaluationJob:
    """One candidate evaluation within a campaign.

    Attributes
    ----------
    parameters:
        The RSP parameter assignment to evaluate.
    name:
        Optional architecture name override (the base point is conventionally
        named ``"Base"``).
    """

    parameters: RSPParameters
    name: Optional[str] = None

    @property
    def label(self) -> str:
        return self.name or self.parameters.describe()

    def content_hash(self, context_hash: str) -> str:
        """Cache key: candidate parameters + evaluation context (memoized)."""
        memo_key = (self.parameters, context_hash)
        digest = _CONTENT_HASH_MEMO.get(memo_key)
        if digest is None:
            digest = hash_payload({"context": context_hash, "parameters": self.parameters})
            if len(_CONTENT_HASH_MEMO) >= _CONTENT_HASH_MEMO_LIMIT:
                _CONTENT_HASH_MEMO.clear()
            _CONTENT_HASH_MEMO[memo_key] = digest
        return digest


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of one exploration campaign.

    Attributes
    ----------
    name:
        Campaign name, used in reports and cache-file naming.
    suites:
        Kernel suites to explore (subset of :data:`SUITE_NAMES`).
    max_rows_shared / max_cols_shared / stage_options:
        Candidate-grid bounds forwarded to
        :func:`~repro.core.rsp_params.enumerate_design_space`.
    constraints:
        Feasibility constraints applied before Pareto filtering.
    backend / workers / chunk_size:
        Executor selection (see :mod:`repro.engine.executor`).
    early_reject:
        Enable the dominance-based early-reject filter.  Rejected
        candidates are provably dominated, so the Pareto front and the
        selected design are unaffected; the full per-candidate evaluation
        list will, however, omit them.
    """

    name: str = "campaign"
    suites: Tuple[str, ...] = ("paper",)
    max_rows_shared: int = 2
    max_cols_shared: int = 2
    stage_options: Tuple[int, ...] = (1, 2)
    constraints: ExplorationConstraints = field(default_factory=ExplorationConstraints)
    backend: str = "serial"
    workers: int = 1
    chunk_size: int = 8
    early_reject: bool = False

    def __post_init__(self) -> None:
        if not self.suites:
            raise ExplorationError("a campaign needs at least one suite")
        unknown = [suite for suite in self.suites if suite not in SUITE_NAMES]
        if unknown:
            raise ExplorationError(
                f"unknown suites {unknown!r}; known suites: {', '.join(SUITE_NAMES)}"
            )

    def as_payload(self) -> dict:
        """The JSON-safe wire form of this spec (coordinator submissions).

        Round-trips exactly through :meth:`from_payload`: the rebuilt spec
        compares equal and hashes to the same
        :func:`~repro.engine.checkpoint.campaign_fingerprint`, which is
        what lets every fleet worker independently submit the campaign
        and land on the same coordinator state.
        """
        return {
            "name": self.name,
            "suites": list(self.suites),
            "max_rows_shared": self.max_rows_shared,
            "max_cols_shared": self.max_cols_shared,
            "stage_options": list(self.stage_options),
            "constraints": {
                "max_area_slices": self.constraints.max_area_slices,
                "max_execution_time_ratio": self.constraints.max_execution_time_ratio,
                "max_stall_cycles": self.constraints.max_stall_cycles,
            },
            "backend": self.backend,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "early_reject": self.early_reject,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CampaignSpec":
        """Rebuild a spec from its :meth:`as_payload` wire form."""
        if not isinstance(payload, dict):
            raise ExplorationError(
                f"campaign spec payloads are JSON objects, got {type(payload).__name__}"
            )
        constraints = payload.get("constraints") or {}
        if not isinstance(constraints, dict):
            raise ExplorationError("campaign spec constraints must be an object")
        try:
            max_area = constraints.get("max_area_slices")
            max_ratio = constraints.get("max_execution_time_ratio")
            max_stalls = constraints.get("max_stall_cycles")
            return cls(
                name=str(payload.get("name", "campaign")),
                suites=tuple(str(suite) for suite in payload.get("suites", ("paper",))),
                max_rows_shared=int(payload.get("max_rows_shared", 2)),
                max_cols_shared=int(payload.get("max_cols_shared", 2)),
                stage_options=tuple(
                    int(stage) for stage in payload.get("stage_options", (1, 2))
                ),
                constraints=ExplorationConstraints(
                    max_area_slices=None if max_area is None else float(max_area),
                    max_execution_time_ratio=None if max_ratio is None else float(max_ratio),
                    max_stall_cycles=None if max_stalls is None else int(max_stalls),
                ),
                backend=str(payload.get("backend", "serial")),
                workers=int(payload.get("workers", 1)),
                chunk_size=int(payload.get("chunk_size", 8)),
                early_reject=bool(payload.get("early_reject", False)),
            )
        except (TypeError, ValueError) as exc:
            raise ExplorationError(f"malformed campaign spec payload: {exc}") from exc

    def candidate_grid(self) -> List[RSPParameters]:
        """The candidate sweep of this campaign (base point included)."""
        return enumerate_design_space(
            max_rows_shared=self.max_rows_shared,
            max_cols_shared=self.max_cols_shared,
            stage_options=self.stage_options,
            include_base=True,
        )

    def jobs(self) -> List[EvaluationJob]:
        """The evaluation jobs of the candidate grid, base point first."""
        jobs: List[EvaluationJob] = []
        for parameters in self.candidate_grid():
            name = "Base" if parameters.kind == "base" else None
            jobs.append(EvaluationJob(parameters=parameters, name=name))
        return jobs
