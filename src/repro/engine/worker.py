"""Fleet worker: lease waves from a campaign coordinator and evaluate them.

``python -m repro.engine --worker --coordinator URL`` runs this loop.  A
worker is a full evaluation engine (mapper pipeline, persistent caches,
batch path) that gets its *work list* from the coordinator instead of
planning it locally:

1. **Submit** the campaign spec (idempotent — every worker submits, the
   coordinator dedups by fingerprint) and **register** for a worker id.
2. **Lease** waves in a loop.  A grant names a suite and the positions of
   the wave's jobs within the suite's non-base job list (grid order —
   exactly the list :func:`~repro.engine.executor.run_exploration`
   builds, which every worker reconstructs identically from the spec).
3. **Heartbeat** on a daemon thread while the wave evaluates, so a live
   worker's lease never expires mid-evaluation, while a killed worker
   goes silent and its wave is requeued after the lease timeout.
4. **Complete** with the wave's evaluation records keyed by job content
   hash.  Completion is idempotent server-side, so a worker whose lease
   expired (a long GC pause, a lost heartbeat) still reports safely.
5. When the coordinator answers ``complete``, **finalize**: download the
   merged checkpoint into a local stream directory and run the campaign
   through :class:`~repro.engine.runner.CampaignRunner` in resume mode.
   Every job is served from the checkpoint, so the run computes nothing —
   it deterministically re-derives the Pareto front, the knee-point
   selection and the canonical report, byte-identical to a serial run.

The early-reject filter is never used worker-side: rejection depends on
wave *timing* (which completed feasible points are already known), and a
fleet's timing is nondeterministic.  Workers evaluate every leased job;
the finalize pass applies the spec's semantics — with ``early_reject``
on, the canonical report drops the timing-dependent fields, exactly as
the single-machine streaming mode does.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union
from urllib.parse import urlsplit

from repro.core.exploration import RSPDesignSpaceExplorer
from repro.core.rsp_params import base_parameters
from repro.engine.artifacts import ArtifactStore
from repro.engine.cache import EvaluationCache, evaluation_record
from repro.engine.checkpoint import CHECKPOINT_FILENAME, campaign_fingerprint
from repro.engine.executor import (
    EngineRunStats,
    EvaluationEngine,
    ExecutorConfig,
)
from repro.engine.jobs import (
    CampaignSpec,
    EvaluationJob,
    evaluation_context_hash,
    suite_kernels,
)
from repro.engine.runner import CampaignReport, CampaignRunner
from repro.engine.stream import write_stream_report
from repro.errors import ExplorationError
from repro.mapping.mapper import RSPMapper
from repro.store import RemoteBackend, TieredBackend
from repro.trace.spans import STATUS_ERROR, STATUS_OK, get_tracer

#: Transport-level failures the client retries (mirrors RemoteBackend).
_TRANSPORT_ERRORS = (
    ConnectionError,
    socket.timeout,
    TimeoutError,
    http.client.HTTPException,
    OSError,
)


class CoordinatorUnavailable(ExplorationError):
    """The coordinator could not be reached within the retry budget."""


class CoordinatorRequestError(ExplorationError):
    """The coordinator answered with an HTTP error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _NoDelayHTTPConnection(http.client.HTTPConnection):
    """Keep-alive connection with Nagle off (see repro.store.remote)."""

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class CoordinatorClient:
    """Thin JSON client for the coordinator's ``/campaign`` routes.

    One persistent keep-alive connection per thread (the heartbeat pump
    runs on its own thread and must not share a socket with the lease
    loop).  Transport failures are retried with exponential backoff;
    HTTP error statuses raise :class:`CoordinatorRequestError` — notably
    the ``409`` a heartbeat gets once its lease has been requeued.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 10.0,
        retries: int = 3,
        backoff: float = 0.05,
        sleep=time.sleep,
    ) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("http", ""):
            raise ExplorationError(f"coordinator URLs are http://, got {url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.prefix = parts.path.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._sleep = sleep
        self._local = threading.local()

    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = _NoDelayHTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.connection = connection
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            try:
                connection.close()
            except Exception:
                pass
            self._local.connection = None

    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        last_error: Optional[Exception] = None
        delay = self.backoff
        for attempt in range(self.retries + 1):
            connection = self._connection()
            try:
                connection.request(method, self.prefix + path, body=body, headers=headers)
                response = connection.getresponse()
                data = response.read()
            except _TRANSPORT_ERRORS as exc:
                # A stale keep-alive socket (coordinator restarted) looks
                # like a transport error; reconnect and retry.
                self._drop_connection()
                last_error = exc
                if attempt < self.retries:
                    self._sleep(delay)
                    delay *= 2
                continue
            try:
                document = json.loads(data.decode("utf-8")) if data else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                document = {}
            if response.status >= 400:
                message = (
                    document.get("error")
                    if isinstance(document, dict) and document.get("error")
                    else f"HTTP {response.status}"
                )
                raise CoordinatorRequestError(response.status, str(message))
            if not isinstance(document, dict):
                raise CoordinatorRequestError(502, f"non-object response to {path}")
            return document
        raise CoordinatorUnavailable(
            f"coordinator at http://{self.host}:{self.port} unreachable after "
            f"{self.retries + 1} attempts: {last_error}"
        )

    # -- one method per route ------------------------------------------
    def submit(self, spec_payload: dict, wave_size: Optional[int] = None) -> dict:
        document: Dict[str, Any] = {"spec": spec_payload}
        if wave_size is not None:
            document["wave_size"] = wave_size
        return self._request("POST", "/campaign", document)

    def register(self, campaign_id: str, name: Optional[str] = None) -> dict:
        return self._request(
            "POST", f"/campaign/{campaign_id}/register", {"worker": name}
        )

    def lease(self, campaign_id: str, worker: str) -> dict:
        return self._request(
            "POST", f"/campaign/{campaign_id}/lease", {"worker": worker}
        )

    def heartbeat(self, campaign_id: str, lease: str) -> dict:
        return self._request(
            "POST", f"/campaign/{campaign_id}/heartbeat", {"lease": lease}
        )

    def complete(
        self,
        campaign_id: str,
        lease: Optional[str],
        suite: str,
        wave: int,
        records: Dict[str, dict],
    ) -> dict:
        return self._request(
            "POST",
            f"/campaign/{campaign_id}/complete",
            {"lease": lease, "suite": suite, "wave": wave, "records": records},
        )

    def status(self, campaign_id: str) -> dict:
        return self._request("GET", f"/campaign/{campaign_id}")

    def checkpoint(self, campaign_id: str) -> dict:
        return self._request("GET", f"/campaign/{campaign_id}/checkpoint")

    def close(self) -> None:
        self._drop_connection()


class _HeartbeatPump(threading.Thread):
    """Daemon thread heartbeating one lease until stopped (or lost).

    Transport errors are swallowed and retried next tick — a worker must
    outlive a coordinator restart, and completion is idempotent anyway.
    A ``409`` means the lease was requeued out from under us: the pump
    stops and flags :attr:`lost` so the loop can count it.
    """

    def __init__(
        self, client: CoordinatorClient, campaign_id: str, lease: str, interval: float
    ) -> None:
        super().__init__(name=f"heartbeat-{lease}", daemon=True)
        self.client = client
        self.campaign_id = campaign_id
        self.lease = lease
        self.interval = interval
        self.lost = False
        # Not named _stop: threading.Thread has an internal _stop method
        # that join() calls, and shadowing it breaks the join.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            try:
                self.client.heartbeat(self.campaign_id, self.lease)
            except CoordinatorRequestError:
                self.lost = True
                return
            except ExplorationError:
                continue

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=self.interval + 5.0)


class _SuiteContext:
    """One suite's evaluation machinery, built lazily per worker.

    Derives the identical job list every other worker (and the serial
    runner) derives, so the coordinator's wave indices resolve to the
    same candidates everywhere.
    """

    def __init__(
        self,
        suite: str,
        spec: CampaignSpec,
        mapper: RSPMapper,
        config: ExecutorConfig,
        cache_dir: Optional[Path],
        store_backend,
        store_shards: int,
    ) -> None:
        self.suite = suite
        kernels = suite_kernels(suite)
        profiles = mapper.pipeline.profiles_for(kernels)
        self.explorer = RSPDesignSpaceExplorer(profiles, array=mapper.base.array)
        cache: Optional[EvaluationCache] = None
        if store_backend is not None or cache_dir is not None:
            context = evaluation_context_hash(
                profiles,
                self.explorer.array,
                self.explorer.cost_model,
                self.explorer.timing_model,
            )
            if store_backend is not None:
                cache = EvaluationCache(
                    backend=store_backend, namespace=f"evals-{context[:16]}"
                )
            else:
                cache = EvaluationCache.for_context(
                    cache_dir, context, shards=store_shards
                )
        self.engine = EvaluationEngine(self.explorer, config=config, cache=cache)
        self.jobs: List[EvaluationJob] = [
            EvaluationJob(parameters=parameters)
            for parameters in spec.candidate_grid()
            if parameters.kind != "base"
        ]
        self.base_job = EvaluationJob(parameters=base_parameters(), name="Base")
        self.base_key = self.base_job.content_hash(self.engine.context_hash)

    def evaluate_wave(
        self, indices: Sequence[int], include_base: bool, stats: EngineRunStats
    ) -> Dict[str, dict]:
        """Evaluate the leased jobs; returns content-hash-keyed flat records."""
        bad = [index for index in indices if not 0 <= index < len(self.jobs)]
        if bad:
            raise ExplorationError(
                f"lease names job indices {bad} outside the suite's "
                f"{len(self.jobs)}-job list — coordinator and worker disagree "
                "on the campaign spec"
            )
        subset = [self.jobs[index] for index in indices]
        results, _ = self.engine.evaluate_jobs(subset, stats)
        records = {
            subset[position].content_hash(self.engine.context_hash): evaluation_record(
                evaluation
            )
            for position, evaluation in results.items()
        }
        if include_base:
            records[self.base_key] = evaluation_record(
                self.engine.evaluate_job(self.base_job, stats)
            )
        return records


def run_worker(
    spec: CampaignSpec,
    coordinator_url: str,
    *,
    stream_dir: Union[str, Path],
    worker_name: Optional[str] = None,
    wave_size: Optional[int] = None,
    output: Optional[Union[str, Path]] = None,
    cache_dir: Optional[Path] = None,
    artifact_dir: Optional[Path] = None,
    store_url: Optional[str] = None,
    store_tier: bool = False,
    store_shards: int = 1,
    batch: Optional[bool] = None,
    poll_interval: float = 0.5,
    lease_delay: float = 0.0,
    finalize: bool = True,
) -> Dict[str, Any]:
    """Drive one worker until its campaign completes; returns a summary.

    ``stream_dir`` is this worker's private stream directory: the merged
    checkpoint is downloaded there and the finalize pass appends its own
    journal — it must not be shared between workers (event logs are
    single-writer).  ``lease_delay`` inserts a pause between grant and
    evaluation; the CI fleet job uses it to widen the window in which a
    victim worker holds a lease, so ``kill -9`` reliably lands mid-wave.
    ``finalize=False`` skips the local report derivation (a pure compute
    drone; some other worker renders the report).
    """
    if store_url is not None and (cache_dir is not None or artifact_dir is not None):
        raise ExplorationError(
            "store_url replaces the local stores; drop cache_dir/artifact_dir"
        )
    stream_dir = Path(stream_dir)
    client = CoordinatorClient(coordinator_url)
    remote: Optional[RemoteBackend] = None
    tier: Optional[TieredBackend] = None
    store_backend = None
    if store_url is not None:
        remote = RemoteBackend(store_url)
        store_backend = remote
        if store_tier:
            tier = TieredBackend(remote)
            store_backend = tier
    if store_backend is not None:
        artifact_store = ArtifactStore(backend=store_backend)
    else:
        artifact_store = ArtifactStore(artifact_dir, shards=store_shards)
    mapper = RSPMapper(store=artifact_store)
    config = ExecutorConfig(
        backend=spec.backend,
        workers=spec.workers,
        chunk_size=spec.chunk_size,
        batch=batch,
    )

    submission = client.submit(spec.as_payload(), wave_size)
    campaign_id = submission["campaign"]
    registration = client.register(campaign_id, worker_name)
    worker_id = registration["worker"]
    heartbeat_interval = float(
        registration.get("policy", {}).get("heartbeat_interval", 5.0)
    )

    contexts: Dict[str, _SuiteContext] = {}
    stats = EngineRunStats(
        backend=config.resolved_backend,
        workers=config.workers,
        chunk_size=config.chunk_size,
    )
    tracer = get_tracer()
    waves_completed = 0
    records_reported = 0
    leases_lost = 0
    try:
        while True:
            grant = client.lease(campaign_id, worker_id)
            status = grant.get("status")
            if status == "complete":
                break
            if status == "failed":
                raise ExplorationError(
                    f"campaign {campaign_id} failed: {grant.get('detail', 'unknown')}"
                )
            if status == "wait":
                time.sleep(
                    max(0.05, min(poll_interval, float(grant.get("retry_after", poll_interval))))
                )
                continue
            if status != "leased":
                raise ExplorationError(f"unexpected lease response: {grant!r}")
            lease_id = grant["lease"]
            suite = grant["suite"]
            wave_index = int(grant["wave"])
            indices = [int(index) for index in grant.get("indices", [])]
            pump = _HeartbeatPump(client, campaign_id, lease_id, heartbeat_interval)
            pump.start()
            started = time.perf_counter()
            try:
                if lease_delay > 0:
                    time.sleep(lease_delay)
                context = contexts.get(suite)
                if context is None:
                    context = _SuiteContext(
                        suite, spec, mapper, config, cache_dir, store_backend, store_shards
                    )
                    contexts[suite] = context
                records = context.evaluate_wave(
                    indices, bool(grant.get("include_base")), stats
                )
            finally:
                pump.stop()
            outcome = client.complete(campaign_id, lease_id, suite, wave_index, records)
            if pump.lost or not outcome.get("lease_valid", False):
                leases_lost += 1
            waves_completed += 1
            records_reported += len(records)
            if tracer.active:
                tracer.record_span(
                    "worker.lease",
                    kind="lease",
                    duration_s=time.perf_counter() - started,
                    status=STATUS_OK if outcome.get("lease_valid") else STATUS_ERROR,
                    campaign=campaign_id,
                    worker=worker_id,
                    suite=suite,
                    wave=wave_index,
                    lease=lease_id,
                    jobs=len(indices),
                    duplicate=bool(outcome.get("duplicate")),
                )
    finally:
        if tier is not None:
            tier.close()
        if remote is not None:
            remote.close()

    final_status = client.status(campaign_id)
    summary: Dict[str, Any] = {
        "campaign": campaign_id,
        "worker": worker_id,
        "waves_completed": waves_completed,
        "records_reported": records_reported,
        "leases_lost": leases_lost,
        "requeues": final_status.get("requeues", 0),
        "evaluated": stats.evaluated,
        "cache_hits": stats.cache_hits,
    }
    if finalize:
        summary["report_path"] = str(output) if output is not None else None
        summary["report"] = _finalize(
            spec,
            client,
            campaign_id,
            stream_dir,
            output=output,
            mapper=mapper,
            cache_dir=cache_dir,
            store_url=store_url,
            store_tier=store_tier,
            store_shards=store_shards,
            batch=batch,
        )
    client.close()
    return summary


def _finalize(
    spec: CampaignSpec,
    client: CoordinatorClient,
    campaign_id: str,
    stream_dir: Path,
    *,
    output: Optional[Union[str, Path]],
    mapper: RSPMapper,
    cache_dir: Optional[Path],
    store_url: Optional[str],
    store_tier: bool,
    store_shards: int,
    batch: Optional[bool],
) -> CampaignReport:
    """Derive the canonical report from the coordinator's merged checkpoint.

    The downloaded checkpoint serves *every* job of the resume run, so
    this computes no evaluations — it replays the deterministic tail of a
    campaign (feasibility, Pareto front, knee point, report assembly) and
    produces bytes identical to an uninterrupted serial run.
    """
    document = client.checkpoint(campaign_id)
    fingerprint = campaign_fingerprint(spec)
    if document.get("fingerprint") != fingerprint:
        raise ExplorationError(
            f"coordinator checkpoint fingerprint {document.get('fingerprint')!r} "
            f"does not match this worker's spec ({fingerprint!r})"
        )
    stream_dir.mkdir(parents=True, exist_ok=True)
    (stream_dir / CHECKPOINT_FILENAME).write_text(
        json.dumps(document, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    runner = CampaignRunner(
        spec,
        mapper=mapper,
        cache_dir=cache_dir,
        store_url=store_url,
        store_tier=store_tier,
        store_shards=store_shards,
        stream_dir=stream_dir,
        resume=True,
        batch=batch,
    )
    try:
        report, _ = runner.run()
    finally:
        runner.close()
    if output is not None:
        write_stream_report(output, report)
    return report
