"""JSON serialisation helpers for dataclass-based results.

Experiment results (tables, schedules, exploration outcomes) are plain
dataclasses; these helpers turn them into JSON-compatible structures so the
benchmark harness can archive them next to the printed tables.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from pathlib import Path
from typing import Any, Union


def dataclass_to_dict(value: Any) -> Any:
    """Recursively convert dataclasses, enums, tuples and paths to JSON types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: dataclass_to_dict(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, dict):
        return {str(key): dataclass_to_dict(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [dataclass_to_dict(item) for item in value]
    if isinstance(value, Path):
        return str(value)
    return value


def content_hash(payload: Any) -> str:
    """SHA-256 over the canonical JSON form of ``payload``.

    Dataclasses, enums, tuples and paths are normalised through
    :func:`dataclass_to_dict`; keys are sorted so the digest is stable
    across processes and interpreter runs.  This is the single hashing
    convention shared by the evaluation engine (:mod:`repro.engine.jobs`)
    and the mapping pipeline (:mod:`repro.mapping.pipeline`).
    """
    canonical = json.dumps(dataclass_to_dict(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def to_json(value: Any, indent: int = 2) -> str:
    """Serialise ``value`` (possibly containing dataclasses) to a JSON string."""
    return json.dumps(dataclass_to_dict(value), indent=indent, sort_keys=False)


def from_json(text: Union[str, bytes]) -> Any:
    """Parse a JSON document produced by :func:`to_json`."""
    return json.loads(text)
