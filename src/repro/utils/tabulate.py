"""Plain-text and markdown table formatting.

The evaluation harness prints the reproduced paper tables to the terminal;
this module provides the small formatting helpers used for that purpose so
the rest of the code never has to deal with column widths.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _stringify(value: object, float_format: str) -> str:
    """Render a single cell as text."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def _column_widths(rows: Sequence[Sequence[str]]) -> List[int]:
    """Compute the width of each column over all rows."""
    if not rows:
        return []
    widths = [0] * max(len(row) for row in rows)
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    return widths


def format_table(
    rows: Iterable[Sequence[object]],
    headers: Optional[Sequence[object]] = None,
    float_format: str = ".2f",
    title: Optional[str] = None,
) -> str:
    """Format ``rows`` as an aligned plain-text table.

    Parameters
    ----------
    rows:
        Iterable of row sequences.  Cells may be any object; floats are
        formatted with ``float_format`` and ``None`` renders as ``-``.
    headers:
        Optional header row.
    float_format:
        ``format()`` spec applied to float cells.
    title:
        Optional title printed above the table.
    """
    text_rows = [[_stringify(cell, float_format) for cell in row] for row in rows]
    header_row = None
    if headers is not None:
        header_row = [_stringify(cell, float_format) for cell in headers]
    all_rows = ([header_row] if header_row else []) + text_rows
    widths = _column_widths(all_rows)

    def render(row: Sequence[str]) -> str:
        cells = [cell.ljust(widths[index]) for index, cell in enumerate(row)]
        return "  ".join(cells).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    if header_row:
        lines.append(render(header_row))
        lines.append("  ".join("-" * width for width in widths))
    lines.extend(render(row) for row in text_rows)
    return "\n".join(lines)


def format_markdown_table(
    rows: Iterable[Sequence[object]],
    headers: Sequence[object],
    float_format: str = ".2f",
) -> str:
    """Format ``rows`` as a GitHub-flavoured markdown table."""
    header_cells = [_stringify(cell, float_format) for cell in headers]
    lines = [
        "| " + " | ".join(header_cells) + " |",
        "|" + "|".join(" --- " for _ in header_cells) + "|",
    ]
    for row in rows:
        cells = [_stringify(cell, float_format) for cell in row]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
