"""Small shared utilities: text tables, serialisation helpers."""

from repro.utils.tabulate import format_table, format_markdown_table
from repro.utils.serialization import to_json, from_json, dataclass_to_dict

__all__ = [
    "format_table",
    "format_markdown_table",
    "to_json",
    "from_json",
    "dataclass_to_dict",
]
