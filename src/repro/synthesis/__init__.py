"""Analytical synthesis surrogate and the paper's published reference data."""

from repro.synthesis.calibration import (
    PAPER_ARCHITECTURE_ORDER,
    PAPER_HEADLINE,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PerformanceCell,
    Table1Row,
    Table2Row,
    paper_kernel_names,
    paper_performance_cell,
)
from repro.synthesis.synth_model import SynthesisEstimate, SynthesisSurrogate

__all__ = [
    "PAPER_ARCHITECTURE_ORDER",
    "PAPER_HEADLINE",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PerformanceCell",
    "Table1Row",
    "Table2Row",
    "paper_kernel_names",
    "paper_performance_cell",
    "SynthesisEstimate",
    "SynthesisSurrogate",
]
