"""Published reference data from the paper's tables.

The reproduction compares its own model outputs against the numbers the
paper reports.  This module stores those published numbers verbatim
(including two apparent typos in the paper's delay-reduction columns, which
are recorded as printed and flagged in EXPERIMENTS.md):

* :data:`PAPER_TABLE1` — PE component synthesis results,
* :data:`PAPER_TABLE2` — area/delay of the nine evaluated architectures,
* :data:`PAPER_TABLE4` — Livermore-kernel performance,
* :data:`PAPER_TABLE5` — DSP-kernel performance,
* :data:`PAPER_HEADLINE` — the abstract's headline claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Table1Row:
    """One row of paper Table 1 (PE component synthesis)."""

    component: str
    area_slices: float
    area_ratio_percent: float
    delay_ns: float
    delay_ratio_percent: float


PAPER_TABLE1: Dict[str, Table1Row] = {
    "PE": Table1Row("PE", 910, 100.0, 25.6, 100.0),
    "Multiplexer": Table1Row("Multiplexer", 58, 6.37, 1.3, 12.89),
    "ALU": Table1Row("ALU", 253, 27.80, 11.5, 44.92),
    "Array multiplier": Table1Row("Array multiplier", 416, 45.71, 19.7, 76.95),
    "Shift logic": Table1Row("Shift logic", 156, 17.14, 2.5, 17.58),
}


@dataclass(frozen=True)
class Table2Row:
    """One row of paper Table 2 (architecture synthesis results)."""

    architecture: str
    pe_area_slices: float
    switch_area_slices: Optional[float]
    array_area_slices: float
    area_reduction_percent: float
    pe_delay_ns: float
    switch_delay_ns: Optional[float]
    array_delay_ns: float
    delay_reduction_percent: float


PAPER_TABLE2: Dict[str, Table2Row] = {
    "Base": Table2Row("Base", 910, None, 55739, 0.0, 25.6, None, 26.0, 0.0),
    "RS#1": Table2Row("RS#1", 489, 10, 32446, 42.80, 25.6, 0.7, 26.85, -4.88),
    "RS#2": Table2Row("RS#2", 489, 34, 36816, 34.05, 25.6, 1.2, 27.97, -9.25),
    "RS#3": Table2Row("RS#3", 489, 55, 40577, 27.02, 25.6, 1.8, 28.89, -11.11),
    "RS#4": Table2Row("RS#4", 489, 68, 44768, 19.69, 25.6, 2.0, 30.23, -16.27),
    "RSP#1": Table2Row("RSP#1", 489, 10, 33249, 40.35, 15.3, 0.7, 16.72, 34.69),
    "RSP#2": Table2Row("RSP#2", 489, 34, 38422, 31.07, 15.3, 1.2, 17.26, 32.58),
    "RSP#3": Table2Row("RSP#3", 489, 55, 42987, 22.88, 15.3, 1.8, 18.21, 29.97),
    "RSP#4": Table2Row("RSP#4", 489, 68, 47981, 13.92, 15.3, 2.0, 18.83, 27.58),
}

#: Order of the architecture rows in paper Tables 2, 4 and 5.
PAPER_ARCHITECTURE_ORDER: Tuple[str, ...] = (
    "Base",
    "RS#1",
    "RS#2",
    "RS#3",
    "RS#4",
    "RSP#1",
    "RSP#2",
    "RSP#3",
    "RSP#4",
)


@dataclass(frozen=True)
class PerformanceCell:
    """One (kernel, architecture) cell of paper Tables 4/5."""

    cycles: int
    execution_time_ns: float
    delay_reduction_percent: float
    stalls: Optional[int]


def _cell(cycles: int, execution_time: float, delay_reduction: float,
          stalls: Optional[int]) -> PerformanceCell:
    return PerformanceCell(cycles, execution_time, delay_reduction, stalls)


#: Paper Table 4: Livermore-loop kernels.  Keyed by kernel name then
#: architecture name.  ``stalls`` is ``None`` for the base architecture
#: (printed as "-" in the paper).
PAPER_TABLE4: Dict[str, Dict[str, PerformanceCell]] = {
    "Hydro": {
        "Base": _cell(15, 390.0, 0.0, None),
        "RS#1": _cell(19, 510.15, -30.80, 4),
        "RS#2": _cell(15, 419.55, -1.07, 0),
        "RS#3": _cell(15, 433.35, -11.11, 0),
        "RS#4": _cell(15, 453.45, -16.27, 0),
        "RSP#1": _cell(21, 351.12, 10.0, 2),
        "RSP#2": _cell(19, 327.94, 15.92, 0),
        "RSP#3": _cell(19, 345.99, 11.28, 0),
        "RSP#4": _cell(19, 357.77, 8.26, 0),
    },
    "ICCG": {
        "Base": _cell(18, 468.0, 0.0, None),
        "RS#1": _cell(18, 483.3, -3.26, 0),
        "RS#2": _cell(18, 503.46, -7.58, 0),
        "RS#3": _cell(18, 520.02, -11.11, 0),
        "RS#4": _cell(18, 544.14, 16.27, 0),
        "RSP#1": _cell(19, 317.68, 32.12, 0),
        "RSP#2": _cell(19, 327.94, 29.93, 0),
        "RSP#3": _cell(19, 345.99, 26.07, 0),
        "RSP#4": _cell(19, 357.77, 23.55, 0),
    },
    "Tri-diagonal": {
        "Base": _cell(17, 442.0, 0.0, None),
        "RS#1": _cell(17, 456.45, -3.26, 0),
        "RS#2": _cell(17, 475.49, -7.58, 0),
        "RS#3": _cell(17, 491.13, -11.11, 0),
        "RS#4": _cell(17, 513.91, -16.27, 0),
        "RSP#1": _cell(18, 300.96, 31.91, 0),
        "RSP#2": _cell(18, 310.68, 29.71, 0),
        "RSP#3": _cell(18, 327.78, 25.84, 0),
        "RSP#4": _cell(18, 338.94, 23.31, 0),
    },
    "Inner product": {
        "Base": _cell(21, 546.0, 0.0, None),
        "RS#1": _cell(21, 563.85, -3.26, 0),
        "RS#2": _cell(21, 587.37, -7.58, 0),
        "RS#3": _cell(21, 606.69, -11.11, 0),
        "RS#4": _cell(21, 634.83, -16.27, 0),
        "RSP#1": _cell(22, 367.84, 32.64, 0),
        "RSP#2": _cell(22, 379.72, 30.45, 0),
        "RSP#3": _cell(22, 400.62, 26.62, 0),
        "RSP#4": _cell(22, 414.26, 24.12, 0),
    },
    "State": {
        "Base": _cell(20, 520.0, 0.0, None),
        "RS#1": _cell(35, 939.75, -80.72, 15),
        "RS#2": _cell(20, 559.4, -7.58, 0),
        "RS#3": _cell(20, 577.8, -11.11, 0),
        "RS#4": _cell(20, 604.6, -16.27, 0),
        "RSP#1": _cell(37, 618.64, -18.96, 14),
        "RSP#2": _cell(23, 396.68, 23.65, 0),
        "RSP#3": _cell(23, 418.83, 19.45, 0),
        "RSP#4": _cell(23, 433.09, 16.71, 0),
    },
}

#: Paper Table 5: DSP kernels.
PAPER_TABLE5: Dict[str, Dict[str, PerformanceCell]] = {
    "2D-FDCT": {
        "Base": _cell(32, 832.0, 0.0, None),
        "RS#1": _cell(56, 1503.6, -80.72, 24),
        "RS#2": _cell(38, 1062.86, -7.58, 6),
        "RS#3": _cell(32, 924.48, -11.11, 0),
        "RS#4": _cell(32, 967.36, -16.27, 0),
        "RSP#1": _cell(64, 1070.08, -28.61, 24),
        "RSP#2": _cell(40, 690.4, 17.01, 0),
        "RSP#3": _cell(40, 728.4, 12.45, 0),
        "RSP#4": _cell(40, 753.2, 9.47, 0),
    },
    "SAD": {
        "Base": _cell(39, 1014.0, 0.0, None),
        "RS#1": _cell(39, 1047.15, -3.26, 0),
        "RS#2": _cell(39, 1090.83, -7.58, 0),
        "RS#3": _cell(39, 1126.7, -11.11, 0),
        "RS#4": _cell(39, 1178.97, -16.27, 0),
        "RSP#1": _cell(39, 652.08, 35.7, 0),
        "RSP#2": _cell(39, 673.14, 33.61, 0),
        "RSP#3": _cell(39, 710.19, 29.96, 0),
        "RSP#4": _cell(39, 734.37, 27.57, 0),
    },
    "MVM": {
        "Base": _cell(19, 494.0, 0.0, None),
        "RS#1": _cell(19, 510.15, -3.26, 0),
        "RS#2": _cell(19, 531.43, -7.58, 0),
        "RS#3": _cell(19, 548.91, -11.11, 0),
        "RS#4": _cell(19, 574.37, -16.27, 0),
        "RSP#1": _cell(20, 334.4, 32.31, 0),
        "RSP#2": _cell(20, 345.2, 30.12, 0),
        "RSP#3": _cell(20, 364.2, 26.27, 0),
        "RSP#4": _cell(20, 376.6, 23.76, 0),
    },
    "FFT": {
        "Base": _cell(23, 598.0, 0.0, None),
        "RS#1": _cell(37, 993.45, -66.12, 14),
        "RS#2": _cell(23, 643.31, -7.58, 0),
        "RS#3": _cell(23, 664.47, -11.11, 0),
        "RS#4": _cell(23, 695.29, -16.27, 0),
        "RSP#1": _cell(40, 668.8, -11.83, 13),
        "RSP#2": _cell(27, 466.02, 22.07, 0),
        "RSP#3": _cell(27, 491.67, 17.78, 0),
        "RSP#4": _cell(27, 508.41, 14.98, 0),
    },
}

#: The abstract / conclusion headline claims.
PAPER_HEADLINE: Dict[str, float] = {
    "max_area_reduction_percent": 42.8,
    "max_delay_reduction_percent": 34.69,
    "max_performance_improvement_percent": 35.7,
}


def paper_performance_cell(kernel: str, architecture: str) -> PerformanceCell:
    """Look up one published performance cell across Tables 4 and 5."""
    table = PAPER_TABLE4 if kernel in PAPER_TABLE4 else PAPER_TABLE5
    return table[kernel][architecture]


def paper_kernel_names() -> Tuple[str, ...]:
    """Kernel names covered by the published performance tables."""
    return tuple(PAPER_TABLE4) + tuple(PAPER_TABLE5)
