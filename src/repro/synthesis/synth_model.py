"""Analytical synthesis surrogate.

The paper evaluates its architectures by RTL synthesis (Synplify Pro +
Xilinx Virtex-II).  The reproduction replaces that step with an analytical
surrogate built from the pre-synthesised component library — the same
estimate the paper itself uses during exploration (Eq. 2) — and records the
published synthesis numbers next to the estimates so the deviation is
always visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch.components import ComponentLibrary, default_component_library
from repro.arch.template import ArchitectureSpec, base_architecture, paper_architectures
from repro.core.cost_model import AreaBreakdown, HardwareCostModel
from repro.core.timing_model import TimingBreakdown, TimingModel
from repro.synthesis.calibration import PAPER_TABLE2, Table2Row


@dataclass(frozen=True)
class SynthesisEstimate:
    """Area and delay estimate of one design point, with paper reference."""

    architecture: str
    pe_area_slices: float
    switch_area_slices: float
    array_area_slices: float
    area_reduction_percent: float
    pe_delay_ns: float
    switch_delay_ns: float
    array_delay_ns: float
    delay_reduction_percent: float
    paper: Optional[Table2Row] = None

    @property
    def area_error_percent(self) -> Optional[float]:
        """Relative deviation of the estimated array area from the paper."""
        if self.paper is None:
            return None
        return 100.0 * (self.array_area_slices - self.paper.array_area_slices) / self.paper.array_area_slices

    @property
    def delay_error_percent(self) -> Optional[float]:
        """Relative deviation of the estimated array delay from the paper."""
        if self.paper is None:
            return None
        return 100.0 * (self.array_delay_ns - self.paper.array_delay_ns) / self.paper.array_delay_ns


class SynthesisSurrogate:
    """Produces Table-2-style area/delay estimates for design points."""

    def __init__(
        self,
        library: Optional[ComponentLibrary] = None,
        cost_model: Optional[HardwareCostModel] = None,
        timing_model: Optional[TimingModel] = None,
    ) -> None:
        self.library = library or default_component_library()
        self.cost_model = cost_model or HardwareCostModel(self.library)
        self.timing_model = timing_model or TimingModel(self.library)

    def estimate(self, spec: ArchitectureSpec,
                 base: Optional[ArchitectureSpec] = None) -> SynthesisEstimate:
        """Estimate one design point; ``base`` defaults to the same-size base design."""
        base_spec = base or base_architecture(spec.array.rows, spec.array.cols)
        area = self.cost_model.breakdown(spec)
        timing = self.timing_model.breakdown(spec)
        pe_delay = (
            self.timing_model.primitive_pe_path_ns()
            if spec.uses_pipelining
            else self.timing_model.full_pe_path_ns()
        )
        switch_delay = 0.0
        if spec.switch_ports_per_pe:
            switch_delay = self.library.bus_switch(spec.switch_ports_per_pe).delay_ns
        return SynthesisEstimate(
            architecture=spec.name,
            pe_area_slices=area.pe_area + area.register_area_per_pe,
            switch_area_slices=area.switch_area_per_pe,
            array_area_slices=area.array_total,
            area_reduction_percent=self.cost_model.area_reduction_percent(spec, base_spec),
            pe_delay_ns=pe_delay,
            switch_delay_ns=switch_delay,
            array_delay_ns=timing.critical_path_ns,
            delay_reduction_percent=self.timing_model.delay_reduction_percent(spec, base_spec),
            paper=PAPER_TABLE2.get(spec.name),
        )

    def estimate_paper_designs(self, rows: int = 8, cols: int = 8) -> List[SynthesisEstimate]:
        """Estimates for the nine designs of paper Table 2, in table order."""
        base = base_architecture(rows, cols)
        return [self.estimate(spec, base) for spec in paper_architectures(rows, cols)]

    def estimates_by_name(self, rows: int = 8, cols: int = 8) -> Dict[str, SynthesisEstimate]:
        """The paper-design estimates keyed by architecture name."""
        return {estimate.architecture: estimate for estimate in self.estimate_paper_designs(rows, cols)}
