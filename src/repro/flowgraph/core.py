"""The flow-graph runtime: validated DAGs of content-hashed nodes.

A :class:`Node` declares the *value names* it consumes and produces plus a
compute callable; a :class:`Flow` assembles nodes with an edge-expression
(:mod:`repro.flowgraph.dsl`) into a validated DAG.  Execution is
demand-driven and key-first, mirroring the mapping pipeline's memoisation
discipline exactly:

1. The *key* of a value is derived from upstream artifact **keys** (never
   their values) through :func:`~repro.mapping.pipeline.stage_key`-style
   content hashing, so a warm :class:`~repro.engine.artifacts.ArtifactStore`
   serves any node's output without materialising its inputs.
2. Only on a store miss does the node's compute callable run, lazily
   pulling the inputs it actually touches through the shared
   :class:`FlowContext`.

Outputs with several candidate producers form an *alternative group*
(declared ``(a | b)`` in the DSL).  At resolution time the members'
``when`` predicates are evaluated: exactly one eligible branch routes,
several eligible branches race (each runs, a :class:`Selector` keeps the
winner), and zero raises :class:`~repro.errors.FlowRoutingError`.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import (
    FlowExecutionError,
    FlowRoutingError,
    FlowValidationError,
)
from repro.flowgraph.dsl import EdgeGraph, parse_edges
from repro.flowgraph.stats import Artifact, PipelineStats
from repro.utils.serialization import content_hash


def stage_key(stage: str, **inputs: object) -> str:
    """Memoisation key of one node invocation: ``hash(stage + input hashes)``.

    This is the exact formula the mapping pipeline has always used
    (re-exported from :mod:`repro.mapping.pipeline` for compatibility), so
    flow-produced artifacts are interchangeable with legacy ones.
    """
    return content_hash({"stage": stage, "inputs": inputs})


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Retry behaviour of one node's compute callable.

    With the default single attempt, compute exceptions propagate
    unchanged (the legacy pipeline contract).  With ``max_attempts > 1``
    the callable is re-invoked on the listed exception types, sleeping
    ``backoff_s * attempt`` between tries, and exhaustion raises
    :class:`~repro.errors.FlowExecutionError` naming the node.
    """

    max_attempts: int = 1
    backoff_s: float = 0.0
    retry_on: Tuple[type, ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FlowValidationError("retry policy needs max_attempts >= 1")
        if self.backoff_s < 0:
            raise FlowValidationError("retry policy needs a non-negative backoff_s")


@dataclass(frozen=True)
class Selector:
    """Picks the winner of a raced alternative group.

    ``metric`` is a dotted attribute path into each candidate's output
    value (e.g. ``"summary.cycles"``); ``mode`` keeps the minimum or
    maximum.  Ties keep the earlier branch in declaration order.
    """

    metric: str
    mode: str = "min"

    def __post_init__(self) -> None:
        if self.mode not in ("min", "max"):
            raise FlowValidationError(
                f"selector mode must be 'min' or 'max', not {self.mode!r}"
            )

    def score(self, value: Any) -> Any:
        current = value
        for attribute in self.metric.split("."):
            current = getattr(current, attribute)
        return current

    def choose(self, candidates: "Dict[str, Any]") -> Tuple[str, Dict[str, Any]]:
        scores = {name: self.score(value) for name, value in candidates.items()}
        ordered = list(scores)
        best = (min if self.mode == "min" else max)(ordered, key=lambda name: scores[name])
        return best, scores


@dataclass(frozen=True)
class NodeEvent:
    """One materialised node execution, emitted to the run's observer."""

    flow: str
    node: str
    output: str
    key: str
    hit: bool
    seconds: float
    routed: bool = False


# ----------------------------------------------------------------------
# Nodes
# ----------------------------------------------------------------------
_NAME = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class Node:
    """One step of a flow: typed inputs, one output, a compute callable.

    Parameters
    ----------
    name:
        Node name — also the artifact namespace in the store and the
        stage name in stats/trace spans.
    fn:
        ``fn(ctx) -> value``; runs only on a store miss.  Inputs are read
        from the :class:`FlowContext` (``ctx["dfg"]`` …), which resolves
        them lazily.  Virtual nodes may omit ``fn`` to pass their
        ``key_from`` input through unchanged.
    inputs / output:
        Value names consumed / produced.  Dataflow edges follow from
        these declarations.
    key_inputs:
        Mapping of key-parameter name to consumed value name; the node's
        artifact key is ``stage_key(name, **{param: key_of(value)})``.
        Defaults to ``{input: input}`` over ``inputs``.  Seeds referenced
        here must be pre-keyed in ``FlowContext.keys``.
    persistent:
        Whether outputs are written through to the store's disk layer.
    virtual:
        Bookkeeping-only node: no store lookup, no stats, and its output
        key is the key of its ``key_from`` input (the content chain skips
        it entirely) — e.g. the canonical flow's ``passthrough`` branch.
    key_from:
        For virtual nodes, the input whose key passes through (defaults
        to the first input).
    resolver:
        ``resolver(ctx) -> Artifact`` — full override of the
        fetch/compute path for nodes whose key is derived from their
        *output* (the ``build_dfg`` pattern).  The resolver handles its
        own memoisation and stats.
    when:
        Eligibility predicate ``when(ctx) -> bool`` consulted when this
        node is a member of an alternative group; ``when_label`` names it
        in routing diagnostics and reports.
    retry:
        The node's :class:`RetryPolicy`.
    adapt:
        ``adapt(value, ctx) -> value`` applied after fetch *and* compute —
        the hook behind structural-alias restamping (store keys by
        structure, results carry the caller's names).
    output_type:
        Optional type pinned on the output value; checked at
        materialisation, and against consumers' ``input_types`` when the
        flow validates.
    input_types:
        Optional ``{value name: type}`` the node requires of its inputs.
    """

    def __init__(
        self,
        name: str,
        fn: Optional[Callable[["FlowContext"], Any]] = None,
        *,
        inputs: Sequence[str] = (),
        output: str,
        key_inputs: Optional[Mapping[str, str]] = None,
        persistent: bool = True,
        virtual: bool = False,
        key_from: Optional[str] = None,
        resolver: Optional[Callable[["FlowContext"], Artifact]] = None,
        when: Optional[Callable[["FlowContext"], bool]] = None,
        when_label: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        adapt: Optional[Callable[[Any, "FlowContext"], Any]] = None,
        output_type: Optional[type] = None,
        input_types: Optional[Mapping[str, type]] = None,
        doc: str = "",
    ) -> None:
        if not _NAME.match(name):
            raise FlowValidationError(f"node name {name!r} is not a valid identifier")
        if not output:
            raise FlowValidationError(f"node '{name}' must declare an output value name")
        self.name = name
        self.fn = fn
        self.inputs = tuple(inputs)
        self.output = output
        self.persistent = persistent
        self.virtual = virtual
        self.resolver = resolver
        self.when = when
        self.when_label = when_label
        self.retry = retry or RetryPolicy()
        self.adapt = adapt
        self.output_type = output_type
        self.input_types = dict(input_types or {})
        self.doc = doc
        if virtual:
            if key_from is None:
                if not self.inputs:
                    raise FlowValidationError(
                        f"virtual node '{name}' needs an input to pass its key through"
                    )
                key_from = self.inputs[0]
            if key_from not in self.inputs:
                raise FlowValidationError(
                    f"virtual node '{name}' passes the key of {key_from!r}, "
                    f"which is not among its inputs {self.inputs!r}"
                )
        self.key_from = key_from
        if key_inputs is None:
            key_inputs = {value: value for value in self.inputs}
        self.key_inputs = dict(key_inputs)
        for parameter, value in self.key_inputs.items():
            if value not in self.inputs:
                raise FlowValidationError(
                    f"node '{name}' keys parameter {parameter!r} from value "
                    f"{value!r}, which is not among its inputs {self.inputs!r}"
                )
        if fn is None and resolver is None and not virtual:
            raise FlowValidationError(
                f"node '{name}' needs a compute callable (only virtual nodes may omit it)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.name!r}, inputs={self.inputs!r}, output={self.output!r})"


# ----------------------------------------------------------------------
# Execution context
# ----------------------------------------------------------------------
class FlowContext:
    """Shared state of one flow execution.

    Carries seed values (and their content keys, for seeds referenced in
    ``key_inputs``), resolved values/keys/artifacts, the routing record
    (which branch produced each routed output, race scores), and the
    executed-node log.  Reading ``ctx[name]`` inside a compute callable or
    ``when`` predicate resolves the value on demand through the active
    run.
    """

    def __init__(
        self,
        values: Optional[Mapping[str, Any]] = None,
        keys: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.values: Dict[str, Any] = dict(values or {})
        self.keys: Dict[str, str] = dict(keys or {})
        self.artifacts: Dict[str, Artifact] = {}
        #: Routed outputs: value name -> winning node name.
        self.routes: Dict[str, str] = {}
        #: Raced outputs: value name -> {node name: selector score}.
        self.raced: Dict[str, Dict[str, Any]] = {}
        #: Names of materialised nodes, in execution order.
        self.executed: List[str] = []
        self._runtime: Optional["_Runtime"] = None

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def __getitem__(self, name: str) -> Any:
        if name in self.values:
            return self.values[name]
        if self._runtime is not None:
            return self._runtime.resolve_value(name)
        raise KeyError(name)

    def get(self, name: str, default: Any = None) -> Any:
        try:
            return self[name]
        except KeyError:
            return default

    def key_of(self, name: str) -> str:
        """The content key of ``name``, resolving it if necessary."""
        if name in self.keys:
            return self.keys[name]
        if self._runtime is not None:
            return self._runtime.resolve_key(name)
        raise KeyError(name)

    def artifact(self, name: str) -> Artifact:
        """The materialised artifact of ``name``, resolving it if necessary."""
        if name not in self.artifacts:
            self[name]
        return self.artifacts[name]


class _RaceKeyPending(Exception):
    """Internal: key enumeration hit a race whose winner is run-time data."""

    def __init__(self, output: str) -> None:
        super().__init__(output)
        self.output = output


# ----------------------------------------------------------------------
# Runtime
# ----------------------------------------------------------------------
class _Runtime:
    """One execution of a flow: resolution engine bound to a context."""

    def __init__(
        self,
        flow: "Flow",
        ctx: FlowContext,
        store: Any,
        stats: PipelineStats,
        observer: Any = None,
        enumerating: bool = False,
    ) -> None:
        self.flow = flow
        self.ctx = ctx
        self.store = store
        self.stats = stats
        self.observer = observer
        self.enumerating = enumerating
        #: node name -> artifact key, for every keyed node this run touched.
        self.enumerated: Dict[str, str] = {}

    # -- routing -------------------------------------------------------
    def _eligible(self, output: str) -> Tuple[List[Node], bool]:
        """Eligible producers of ``output`` and whether routing happened."""
        producers = self.flow.producers.get(output)
        if not producers:
            raise FlowValidationError(
                f"flow '{self.flow.name}' produces no value named {output!r} "
                f"(outputs: {sorted(self.flow.producers)})"
            )
        routed = len(producers) > 1 or any(node.when is not None for node in producers)
        eligible = [
            node for node in producers if node.when is None or node.when(self.ctx)
        ]
        if not eligible:
            conditions = ", ".join(
                f"{node.name} [when {node.when_label or 'predicate'}]"
                for node in producers
            )
            raise FlowRoutingError(
                f"no branch matched for output {output!r}: "
                f"every candidate's condition was false ({conditions})"
            )
        return eligible, routed

    # -- key resolution ------------------------------------------------
    def node_key(self, node: Node) -> str:
        key = stage_key(
            node.name,
            **{
                parameter: self.resolve_key(value)
                for parameter, value in node.key_inputs.items()
            },
        )
        self.enumerated[node.name] = key
        return key

    def resolve_key(self, name: str) -> str:
        if name in self.ctx.keys:
            return self.ctx.keys[name]
        if name in self.flow.inputs:
            raise FlowValidationError(
                f"flow input {name!r} is referenced in a key derivation but has "
                f"no content key; seed FlowContext.keys[{name!r}] when building "
                "the context"
            )
        eligible, routed = self._eligible(name)
        if len(eligible) > 1:
            if self.enumerating:
                # The winner of a race is run-time data; enumerate every
                # candidate's own key, then tell the caller that keys
                # downstream of this output cannot be derived statically.
                for node in eligible:
                    if not node.virtual and node.resolver is None:
                        self.node_key(node)
                raise _RaceKeyPending(name)
            self.resolve_value(name)
            return self.ctx.keys[name]
        node = eligible[0]
        if routed:
            self.ctx.routes.setdefault(name, node.name)
        if node.virtual:
            key = self.resolve_key(node.key_from)
        elif node.resolver is not None:
            key = self.materialise(node).key
        else:
            key = self.node_key(node)
        self.ctx.keys[name] = key
        return key

    # -- value resolution ----------------------------------------------
    def resolve_value(self, name: str) -> Any:
        if name in self.ctx.values:
            return self.ctx.values[name]
        if name in self.flow.inputs:
            raise KeyError(f"flow input {name!r} was not provided")
        eligible, routed = self._eligible(name)
        if len(eligible) > 1:
            return self._race(name, eligible)
        node = eligible[0]
        if routed:
            # Recorded before materialisation so the node's NodeEvent
            # carries routed=True.
            self.ctx.routes[name] = node.name
        artifact = self.materialise(node)
        self._adopt(name, artifact)
        return artifact.value

    def _race(self, name: str, eligible: List[Node]) -> Any:
        selector = self.flow.select.get(name)
        if selector is None:
            raise FlowRoutingError(
                f"output {name!r} raced {len(eligible)} branches "
                f"({', '.join(node.name for node in eligible)}) but the flow "
                "declares no selector for it"
            )
        # Seeded before the candidates materialise so their NodeEvents
        # carry routed=True (the winner is only known afterwards).
        self.ctx.raced.setdefault(name, {})
        artifacts = {node.name: self.materialise(node) for node in eligible}
        candidates = {node_name: artifact.value for node_name, artifact in artifacts.items()}
        if isinstance(selector, Selector):
            winner, scores = selector.choose(candidates)
        else:
            winner = selector(candidates, self.ctx)
            scores = {}
            if winner not in artifacts:
                raise FlowRoutingError(
                    f"selector for output {name!r} chose {winner!r}, which is "
                    f"not one of the raced branches {sorted(artifacts)}"
                )
        self.ctx.routes[name] = winner
        self.ctx.raced[name] = scores or {node.name: None for node in eligible}
        self._adopt(name, artifacts[winner])
        return artifacts[winner].value

    def _adopt(self, name: str, artifact: Artifact) -> None:
        self.ctx.values[name] = artifact.value
        self.ctx.keys[name] = artifact.key
        self.ctx.artifacts[name] = artifact

    # -- materialisation ------------------------------------------------
    def materialise(self, node: Node) -> Artifact:
        """Obtain ``node``'s artifact: fetch from the store or compute.

        Mirrors the legacy pipeline's ``_memoise`` byte for byte: one
        timed fetch, stats recorded through the single
        :meth:`~repro.flowgraph.stats.PipelineStats.record` choke point,
        misses written back with the node's persistence flag.
        """
        ctx = self.ctx
        if node.virtual:
            key = self.resolve_key(node.key_from)
            value = node.fn(ctx) if node.fn is not None else ctx[node.key_from]
            ctx.executed.append(node.name)
            return Artifact(stage=node.name, key=key, value=value)
        if node.resolver is not None:
            artifact = node.resolver(ctx)
            self.enumerated[node.name] = artifact.key
            ctx.keys.setdefault(node.output, artifact.key)
            ctx.executed.append(node.name)
            return artifact
        key = self.node_key(node)
        started = time.perf_counter()
        hit, value = self.store.fetch(node.name, key)
        if hit:
            elapsed = time.perf_counter() - started
            self.stats.record(node.name, hit=True, seconds=elapsed)
            artifact = Artifact(
                stage=node.name, key=key, value=value, from_store=True, seconds=elapsed
            )
        else:
            value = self._compute(node)
            self.store.put(node.name, key, value, persist=node.persistent)
            elapsed = time.perf_counter() - started
            self.stats.record(node.name, hit=False, seconds=elapsed)
            artifact = Artifact(stage=node.name, key=key, value=value, seconds=elapsed)
        if node.output_type is not None and not isinstance(artifact.value, node.output_type):
            raise FlowExecutionError(
                f"node '{node.name}' produced {type(artifact.value).__name__}, "
                f"expected {node.output_type.__name__}"
            )
        if node.adapt is not None:
            artifact.value = node.adapt(artifact.value, ctx)
        ctx.executed.append(node.name)
        self._notify(node, artifact)
        return artifact

    def _compute(self, node: Node) -> Any:
        policy = node.retry
        attempt = 1
        while True:
            try:
                return node.fn(self.ctx)
            except policy.retry_on as error:
                if attempt >= policy.max_attempts:
                    if policy.max_attempts > 1:
                        raise FlowExecutionError(
                            f"node '{node.name}' failed after {attempt} attempts: "
                            f"{error}"
                        ) from error
                    raise
                if policy.backoff_s:
                    time.sleep(policy.backoff_s * attempt)
                attempt += 1

    def _notify(self, node: Node, artifact: Artifact) -> None:
        if self.observer is None:
            return
        handler = getattr(self.observer, "node_finished", None)
        if handler is None:
            return
        handler(
            NodeEvent(
                flow=self.flow.name,
                node=node.name,
                output=node.output,
                key=artifact.key,
                hit=artifact.from_store,
                seconds=artifact.seconds,
                routed=node.output in self.ctx.routes or node.output in self.ctx.raced,
            )
        )


# ----------------------------------------------------------------------
# The flow
# ----------------------------------------------------------------------
class Flow:
    """A validated DAG of nodes with routed/raced alternative groups.

    Parameters
    ----------
    nodes:
        The node set.  Output names must be unique except across the
        members of one alternative group.
    edges:
        Edge expression(s) (DSL text or a pre-parsed
        :class:`~repro.flowgraph.dsl.EdgeGraph`).  Dataflow edges already
        follow from node declarations; the expression adds alternative
        groups and any extra ordering constraints, and every node it
        names must exist.  Optional when no output has multiple
        producers.
    inputs:
        Seed value names callers may provide (``ctx["kernel"]`` …).
        Consuming a value that is neither an input nor some node's output
        is a validation error.
    select:
        ``{output name: Selector}`` (or a callable
        ``(candidates, ctx) -> node name``) for raced groups.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        edges: Union[str, Sequence[str], EdgeGraph, None] = None,
        *,
        name: str = "flow",
        inputs: Sequence[str] = (),
        select: Optional[Mapping[str, Any]] = None,
        description: str = "",
    ) -> None:
        self.name = name
        self.nodes: Tuple[Node, ...] = tuple(nodes)
        self.inputs = tuple(inputs)
        self.select = dict(select or {})
        self.description = description
        if edges is None:
            self.edge_graph = EdgeGraph(nodes=[node.name for node in self.nodes])
        elif isinstance(edges, EdgeGraph):
            self.edge_graph = edges
        else:
            self.edge_graph = parse_edges(edges)
        self.by_name: Dict[str, Node] = {}
        self.producers: Dict[str, List[Node]] = {}
        self.validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _expression_naming(self, node_name: str) -> str:
        """The edge expression(s) mentioning ``node_name`` (diagnostics)."""
        pattern = re.compile(rf"\b{re.escape(node_name)}\b")
        mentions = [text for text in self.edge_graph.expressions if pattern.search(text)]
        if not mentions:
            return "no edge expression mentions it"
        return "edge expression " + "; ".join(repr(text) for text in mentions)

    def validate(self) -> None:
        """Check the DAG, raising :class:`FlowValidationError` on problems.

        Every message names the offending node and — when one applies —
        the edge expression it came from.
        """
        self.by_name = {}
        for node in self.nodes:
            if node.name in self.by_name:
                raise FlowValidationError(
                    f"flow '{self.name}' declares node '{node.name}' twice"
                )
            self.by_name[node.name] = node

        for referenced in self.edge_graph.nodes:
            if referenced not in self.by_name:
                raise FlowValidationError(
                    f"flow '{self.name}' has no node named '{referenced}' "
                    f"({self._expression_naming(referenced)})"
                )

        # Producers, honouring alternative-group membership and order.
        grouped: Dict[str, Tuple[str, ...]] = {}
        for group in self.edge_graph.groups:
            outputs = {self.by_name[member].output for member in group}
            if len(outputs) != 1:
                detail = ", ".join(
                    f"{member} -> {self.by_name[member].output!r}" for member in group
                )
                raise FlowValidationError(
                    f"alternative group ({' | '.join(group)}) mixes outputs "
                    f"({detail}); every branch of a group must produce the "
                    "same value"
                )
            output = outputs.pop()
            if output in grouped and grouped[output] != group:
                raise FlowValidationError(
                    f"output {output!r} appears in two different alternative "
                    f"groups: ({' | '.join(grouped[output])}) and "
                    f"({' | '.join(group)})"
                )
            grouped[output] = group

        self.producers = {}
        for node in self.nodes:
            self.producers.setdefault(node.output, []).append(node)
        for output, producers in self.producers.items():
            if len(producers) == 1:
                continue
            group = grouped.get(output)
            names = [node.name for node in producers]
            if group is None or set(group) != set(names):
                raise FlowValidationError(
                    f"nodes {names} all produce output {output!r} without "
                    "forming one alternative group; declare them as "
                    f"({' | '.join(names)}) in an edge expression"
                )
            # Group declaration order is routing order.
            self.producers[output] = [self.by_name[member] for member in group]

        # Every consumed value must be producible or a declared input.
        for node in self.nodes:
            for value in dict.fromkeys(node.inputs):
                if value in self.producers or value in self.inputs:
                    continue
                raise FlowValidationError(
                    f"node '{node.name}' consumes {value!r}, which no node "
                    f"produces and which is not a declared flow input "
                    f"(inputs: {list(self.inputs)}; "
                    f"{self._expression_naming(node.name)})"
                )

        # Type agreement along dataflow edges.
        for node in self.nodes:
            for value, expected in node.input_types.items():
                for producer in self.producers.get(value, ()):  # seeds unchecked
                    produced = producer.output_type
                    if produced is not None and not issubclass(produced, expected):
                        raise FlowValidationError(
                            f"node '{node.name}' expects {value!r} to be "
                            f"{expected.__name__}, but node '{producer.name}' "
                            f"produces {produced.__name__}"
                        )

        # Selector sanity.
        for output in self.select:
            if output not in self.producers:
                raise FlowValidationError(
                    f"flow '{self.name}' declares a selector for {output!r}, "
                    "which no node produces"
                )

        self._check_acyclic()

    def _check_acyclic(self) -> None:
        successors: Dict[str, List[str]] = {node.name: [] for node in self.nodes}
        for node in self.nodes:
            for value in node.inputs:
                for producer in self.producers.get(value, ()):
                    successors[producer.name].append(node.name)
        for upstream, downstream in self.edge_graph.edges:
            if downstream not in successors[upstream]:
                successors[upstream].append(downstream)

        WHITE, GRAY, BLACK = 0, 1, 2
        colour = {name: WHITE for name in successors}
        stack: List[str] = []

        def visit(name: str) -> None:
            colour[name] = GRAY
            stack.append(name)
            for successor in successors[name]:
                if colour[successor] == GRAY:
                    start = stack.index(successor)
                    cycle = stack[start:] + [successor]
                    raise FlowValidationError(
                        f"flow '{self.name}' has a cycle: "
                        f"{' -> '.join(cycle)} "
                        f"({self._expression_naming(successor)})"
                    )
                if colour[successor] == WHITE:
                    visit(successor)
            stack.pop()
            colour[name] = BLACK

        for name in colour:
            if colour[name] == WHITE:
                visit(name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def outputs(self) -> Tuple[str, ...]:
        """Terminal value names: produced but consumed by no node."""
        consumed = {value for node in self.nodes for value in node.inputs}
        return tuple(output for output in self.producers if output not in consumed)

    def dependencies(self, outputs: Sequence[str]) -> List[str]:
        """Node names in the static demand closure of ``outputs``.

        Includes *every* candidate of alternative groups (routing is
        run-time data); order follows the flow's node declaration order.
        """
        needed: set = set()
        frontier = list(outputs)
        while frontier:
            value = frontier.pop()
            for node in self.producers.get(value, ()):  # seeds have no producers
                if node.name in needed:
                    continue
                needed.add(node.name)
                frontier.extend(node.inputs)
                frontier.extend(node.key_inputs.values())
        return [node.name for node in self.nodes if node.name in needed]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _store(self, store: Any) -> Any:
        if store is not None:
            return store
        # Imported lazily: repro.engine imports repro.mapping, which in
        # turn imports this module.
        from repro.engine.artifacts import ArtifactStore

        return ArtifactStore(None)

    def run(
        self,
        values: Optional[Mapping[str, Any]] = None,
        outputs: Optional[Sequence[str]] = None,
        *,
        context: Optional[FlowContext] = None,
        keys: Optional[Mapping[str, str]] = None,
        store: Any = None,
        stats: Optional[PipelineStats] = None,
        observer: Any = None,
    ) -> FlowContext:
        """Resolve ``outputs`` (default: every terminal output) and return
        the context holding values, keys, artifacts and the routing record."""
        ctx = context if context is not None else FlowContext(values, keys)
        runtime = _Runtime(
            self, ctx, self._store(store), stats or PipelineStats(), observer
        )
        ctx._runtime = runtime
        for output in outputs if outputs is not None else self.outputs:
            runtime.resolve_value(output)
        return ctx

    def resolve(
        self,
        output: str,
        values: Optional[Mapping[str, Any]] = None,
        **kwargs: Any,
    ) -> Artifact:
        """Resolve one output and return its :class:`Artifact`."""
        ctx = self.run(values, outputs=(output,), **kwargs)
        return ctx.artifact(output)

    def keys_for(
        self,
        values: Optional[Mapping[str, Any]] = None,
        outputs: Optional[Sequence[str]] = None,
        *,
        context: Optional[FlowContext] = None,
        keys: Optional[Mapping[str, str]] = None,
        store: Any = None,
        stats: Optional[PipelineStats] = None,
    ) -> Dict[str, str]:
        """Artifact keys (node name -> key) of the nodes behind ``outputs``
        — without executing any persistent node.

        The whole key chain derives from seed keys alone; only
        resolver-backed nodes (the ``build_dfg`` pattern, whose key *is*
        their output's fingerprint) actually run.  Keys downstream of a
        race stop at the raced output: the winner — and therefore the
        chain through it — is run-time data, though every candidate's own
        key is still enumerated (a prefetcher warms all branches).
        Conditions guarding routed branches are evaluated, which may
        materialise the values they read.
        """
        ctx = context if context is not None else FlowContext(values, keys)
        runtime = _Runtime(
            self,
            ctx,
            self._store(store),
            stats or PipelineStats(),
            observer=None,
            enumerating=True,
        )
        ctx._runtime = runtime
        for output in outputs if outputs is not None else self.outputs:
            try:
                runtime.resolve_key(output)
            except _RaceKeyPending:
                continue
        return dict(runtime.enumerated)
