"""Build :class:`~repro.flowgraph.core.Flow` objects from JSON/dict configs.

A flow config is declarative data — it names which *registered* nodes
participate and how they wire up, without carrying any code::

    {
      "name": "skip_rearrange",
      "edges": [
        "build_dfg >> base_schedule >> extract_profile",
        "base_schedule >> (rearrange | passthrough) >> generate_context"
      ],
      "nodes": {
        "rearrange":   {"when": "!profile_balanced", "retry": {"max_attempts": 2}},
        "passthrough": {"when": "profile_balanced"}
      },
      "select": {"rearranged": {"metric": "summary.cycles", "mode": "min"}}
    }

The *registry* maps node names to factories producing fresh
:class:`~repro.flowgraph.core.Node` objects; the *conditions* table maps
predicate names (usable with a leading ``!`` for negation) to
``ctx -> bool`` callables.  The mapping domain's registry and conditions
live in :mod:`repro.flowgraph.mapping`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Union

from repro.errors import FlowValidationError
from repro.flowgraph.core import Flow, FlowContext, Node, RetryPolicy, Selector
from repro.flowgraph.dsl import parse_edges

ConfigSource = Union[str, Path, Mapping[str, Any]]

_FLOW_KEYS = {"name", "description", "edges", "nodes", "select", "inputs"}
_NODE_KEYS = {"when", "retry", "persistent"}
_RETRY_KEYS = {"max_attempts", "backoff_s"}
_SELECT_KEYS = {"metric", "mode"}


def load_flow_config(source: ConfigSource) -> Dict[str, Any]:
    """Read a flow config from a dict, a JSON string of a path, or a path."""
    if isinstance(source, Mapping):
        return dict(source)
    path = Path(source)
    try:
        data = json.loads(path.read_text())
    except OSError as error:
        raise FlowValidationError(f"cannot read flow config {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise FlowValidationError(f"flow config {path} is not valid JSON: {error}") from error
    if not isinstance(data, dict):
        raise FlowValidationError(
            f"flow config {path} must hold a JSON object, not {type(data).__name__}"
        )
    return data


def _reject_unknown(keys: Sequence[str], allowed: set, where: str) -> None:
    unknown = [key for key in keys if key not in allowed]
    if unknown:
        raise FlowValidationError(
            f"{where} has unknown key(s) {unknown}; allowed: {sorted(allowed)}"
        )


def resolve_condition(
    name: str, conditions: Mapping[str, Callable[[FlowContext], bool]]
) -> Callable[[FlowContext], bool]:
    """Look up a condition by name; a leading ``!`` negates it."""
    negated = name.startswith("!")
    bare = name[1:] if negated else name
    if bare not in conditions:
        raise FlowValidationError(
            f"unknown flow condition {bare!r}; available: {sorted(conditions)}"
        )
    predicate = conditions[bare]
    if not negated:
        return predicate

    def negation(ctx: FlowContext) -> bool:
        return not predicate(ctx)

    return negation


def _selector_from_config(output: str, spec: Any) -> Selector:
    if isinstance(spec, str):
        return Selector(metric=spec)
    if isinstance(spec, Mapping):
        _reject_unknown(list(spec), _SELECT_KEYS, f"selector for output {output!r}")
        if "metric" not in spec:
            raise FlowValidationError(
                f"selector for output {output!r} needs a 'metric' attribute path"
            )
        return Selector(metric=spec["metric"], mode=spec.get("mode", "min"))
    raise FlowValidationError(
        f"selector for output {output!r} must be a metric string or an object, "
        f"not {type(spec).__name__}"
    )


def flow_from_config(
    source: ConfigSource,
    *,
    registry: Mapping[str, Callable[[], Node]],
    conditions: Optional[Mapping[str, Callable[[FlowContext], bool]]] = None,
    inputs: Sequence[str] = (),
    name: str = "flow",
) -> Flow:
    """Instantiate a validated :class:`Flow` from a config.

    Every node named in ``edges`` is built fresh from ``registry``; the
    optional per-node config overrides its routing condition
    (``"when": "name"`` / ``"!name"`` resolved in ``conditions``), retry
    policy, and persistence.  ``select`` declares the winner metric of
    raced outputs.  All structural problems raise
    :class:`~repro.errors.FlowValidationError` naming the offending node
    and edge expression.
    """
    config = load_flow_config(source)
    _reject_unknown(list(config), _FLOW_KEYS, "flow config")
    if "edges" not in config:
        raise FlowValidationError(
            "flow config needs an 'edges' entry (an edge expression or a list of them)"
        )
    graph = parse_edges(config["edges"])

    node_configs = config.get("nodes", {})
    if not isinstance(node_configs, Mapping):
        raise FlowValidationError("flow config 'nodes' must map node names to objects")
    for configured in node_configs:
        if configured not in graph.nodes:
            raise FlowValidationError(
                f"flow config configures node {configured!r}, which no edge "
                f"expression mentions (expressions: {graph.expressions})"
            )

    conditions = conditions or {}
    nodes = []
    for node_name in graph.nodes:
        factory = registry.get(node_name)
        if factory is None:
            mentions = [text for text in graph.expressions if node_name in text]
            raise FlowValidationError(
                f"no registered node named {node_name!r} "
                f"(edge expression {mentions[0]!r}; "
                f"registered: {sorted(registry)})"
            )
        node = factory() if callable(factory) else factory
        overrides = node_configs.get(node_name, {})
        _reject_unknown(list(overrides), _NODE_KEYS, f"config of node {node_name!r}")
        if "when" in overrides:
            label = overrides["when"]
            if not isinstance(label, str):
                raise FlowValidationError(
                    f"node {node_name!r}: 'when' must be a condition name string"
                )
            node.when = resolve_condition(label, conditions)
            node.when_label = label
        if "retry" in overrides:
            retry = overrides["retry"]
            if not isinstance(retry, Mapping):
                raise FlowValidationError(
                    f"node {node_name!r}: 'retry' must be an object with "
                    f"{sorted(_RETRY_KEYS)}"
                )
            _reject_unknown(list(retry), _RETRY_KEYS, f"retry policy of node {node_name!r}")
            node.retry = RetryPolicy(
                max_attempts=retry.get("max_attempts", 1),
                backoff_s=retry.get("backoff_s", 0.0),
            )
        if "persistent" in overrides:
            node.persistent = bool(overrides["persistent"])
        nodes.append(node)

    select = {
        output: _selector_from_config(output, spec)
        for output, spec in (config.get("select") or {}).items()
    }
    flow_inputs = list(inputs)
    for extra in config.get("inputs", ()):
        if extra not in flow_inputs:
            flow_inputs.append(extra)

    return Flow(
        nodes,
        graph,
        name=config.get("name", name),
        inputs=flow_inputs,
        select=select,
        description=config.get("description", ""),
    )
