"""Declarative flow-graph runtime for the mapping/eval pipelines.

A :class:`Flow` is a validated DAG of :class:`Node` values.  Nodes declare
typed inputs and outputs by *value name*; the dataflow edges follow from
those declarations, while a compact edge-expression DSL
(``"build_dfg >> base_schedule >> (rearrange | passthrough) >> generate_context"``)
declares which nodes participate, how alternatives group, and any extra
ordering constraints.  Alternative groups route conditionally (the first
branch whose ``when`` predicate holds) or race (every eligible branch runs
and a selector keeps the winner).  Every node output is content-hashed and
memoised through the engine's :class:`~repro.engine.artifacts.ArtifactStore`,
with a per-node retry policy around the compute call.

The canonical client is :class:`repro.mapping.pipeline.MappingPipeline`,
which since the flow-graph refactor executes the paper's five mapping
stages as a flow built by :mod:`repro.flowgraph.mapping`; custom per-suite
flows load from JSON via :func:`Flow.from_config` /
:func:`repro.flowgraph.mapping.build_mapping_flow`.
"""

from repro.flowgraph.core import (
    Flow,
    FlowContext,
    Node,
    NodeEvent,
    RetryPolicy,
    Selector,
    stage_key,
)
from repro.flowgraph.dsl import EdgeGraph, parse_edges, render_edges
from repro.flowgraph.config import flow_from_config, load_flow_config
from repro.flowgraph.stats import (
    Artifact,
    PipelineStats,
    StageTiming,
    stage_timings_as_dict,
)

__all__ = [
    "Artifact",
    "EdgeGraph",
    "Flow",
    "FlowContext",
    "Node",
    "NodeEvent",
    "PipelineStats",
    "RetryPolicy",
    "Selector",
    "StageTiming",
    "flow_from_config",
    "load_flow_config",
    "parse_edges",
    "render_edges",
    "stage_key",
    "stage_timings_as_dict",
]
