"""Edge-expression DSL: ``"a >> b >> (c | d) >> e"`` → a validated edge set.

Grammar (whitespace-insensitive)::

    expression := chain
    chain      := group (">>" group)*
    group      := NAME | "(" alternatives ")"
    alternatives := chain ("|" chain)*
    NAME       := [A-Za-z_][A-Za-z0-9_]*

``a >> b`` declares the edge a→b.  A parenthesised group is an
*alternative group*: exactly one branch contributes per run (conditional
routing or a race — the runtime decides from the member nodes' ``when``
predicates and the flow's selectors).  Chains fan out into and join out of
groups: ``a >> (b | c) >> d`` yields the edges a→b, a→c, b→d, c→d, and the
alternative group ``{b, c}``.  Branches may themselves be chains:
``a >> (b >> c | d) >> e`` races the two-step branch b→c against d.

:func:`parse_edges` returns an :class:`EdgeGraph`; :func:`render_edges`
prints the canonical form, and ``parse(render(parse(text)))`` is always
``parse(text)`` (pinned by hypothesis round-trip tests).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

from repro.errors import FlowParseError

_TOKEN = re.compile(r"\s*(>>|\||\(|\)|[A-Za-z_][A-Za-z0-9_]*)")


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Ref:
    """A node reference (leaf of the expression tree)."""

    name: str


@dataclass(frozen=True)
class Chain:
    """A ``>>`` sequence of groups."""

    steps: Tuple["Expr", ...]


@dataclass(frozen=True)
class Alt:
    """A ``( … | … )`` alternative group."""

    branches: Tuple["Expr", ...]


Expr = Union[Ref, Chain, Alt]


@dataclass
class EdgeGraph:
    """The flattened form of one or more edge expressions.

    Attributes
    ----------
    nodes:
        Every node name referenced, in first-appearance order.
    edges:
        Declared ``(upstream, downstream)`` pairs, in declaration order.
    groups:
        Alternative groups: for each ``(a | b | …)`` the tuple of *entry*
        node names of its branches, in declaration order.  The runtime
        routes or races over these.
    expressions:
        The canonical rendering of each source expression (used verbatim
        in validation diagnostics).
    """

    nodes: List[str] = field(default_factory=list)
    edges: List[Tuple[str, str]] = field(default_factory=list)
    groups: List[Tuple[str, ...]] = field(default_factory=list)
    expressions: List[str] = field(default_factory=list)

    def _see(self, name: str) -> None:
        if name not in self.nodes:
            self.nodes.append(name)

    def add_edge(self, upstream: str, downstream: str) -> None:
        self._see(upstream)
        self._see(downstream)
        if (upstream, downstream) not in self.edges:
            self.edges.append((upstream, downstream))

    def add_group(self, entries: Tuple[str, ...]) -> None:
        if len(entries) > 1 and entries not in self.groups:
            self.groups.append(entries)

    def merge(self, other: "EdgeGraph") -> "EdgeGraph":
        for name in other.nodes:
            self._see(name)
        for edge in other.edges:
            self.add_edge(*edge)
        for group in other.groups:
            self.add_group(group)
        self.expressions.extend(other.expressions)
        return self


# ----------------------------------------------------------------------
# Tokenising / parsing
# ----------------------------------------------------------------------
def _tokenise(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            raise FlowParseError(
                f"edge expression {text!r}: unexpected character "
                f"{remainder[0]!r} at offset {position}"
            )
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenise(text)
        self.position = 0

    def peek(self) -> str:
        return self.tokens[self.position] if self.position < len(self.tokens) else ""

    def take(self) -> str:
        token = self.peek()
        self.position += 1
        return token

    def expect(self, token: str) -> None:
        found = self.take()
        if found != token:
            raise FlowParseError(
                f"edge expression {self.text!r}: expected {token!r}, "
                f"found {found or 'end of expression'!r}"
            )

    def parse(self) -> Expr:
        if not self.tokens:
            raise FlowParseError("empty edge expression")
        expression = self.chain()
        if self.position != len(self.tokens):
            raise FlowParseError(
                f"edge expression {self.text!r}: trailing tokens starting at "
                f"{self.peek()!r}"
            )
        return expression

    def chain(self) -> Expr:
        steps = [self.group()]
        while self.peek() == ">>":
            self.take()
            steps.append(self.group())
        if len(steps) == 1:
            return steps[0]
        return Chain(steps=tuple(steps))

    def group(self) -> Expr:
        token = self.peek()
        if token == "(":
            self.take()
            branches = [self.chain()]
            while self.peek() == "|":
                self.take()
                branches.append(self.chain())
            self.expect(")")
            if len(branches) == 1:
                # Redundant parentheses around a single branch.
                return branches[0]
            return Alt(branches=tuple(branches))
        if not token or token in (">>", "|", ")"):
            raise FlowParseError(
                f"edge expression {self.text!r}: expected a node name, "
                f"found {token or 'end of expression'!r}"
            )
        return Ref(name=self.take())


def parse_expression(text: str) -> Expr:
    """Parse one edge expression into its AST (see module grammar)."""
    return _Parser(text).parse()


# ----------------------------------------------------------------------
# Rendering (canonical form)
# ----------------------------------------------------------------------
def render_expression(expression: Expr) -> str:
    """Canonical string of an AST: single spaces, parentheses on groups only."""
    if isinstance(expression, Ref):
        return expression.name
    if isinstance(expression, Chain):
        return " >> ".join(_render_step(step) for step in expression.steps)
    if isinstance(expression, Alt):
        return "(" + " | ".join(render_expression(branch) for branch in expression.branches) + ")"
    raise FlowParseError(f"cannot render {expression!r}")


def _render_step(step: Expr) -> str:
    # A chain nested directly in a chain would be ambiguous; parenthesise.
    if isinstance(step, Chain):
        return "(" + render_expression(step) + ")"
    return render_expression(step)


# ----------------------------------------------------------------------
# Flattening into an edge graph
# ----------------------------------------------------------------------
def _sources(expression: Expr) -> Tuple[str, ...]:
    """Entry node names of an expression (fan-in targets)."""
    if isinstance(expression, Ref):
        return (expression.name,)
    if isinstance(expression, Chain):
        return _sources(expression.steps[0])
    ordered: List[str] = []
    for branch in expression.branches:
        for name in _sources(branch):
            if name not in ordered:
                ordered.append(name)
    return tuple(ordered)


def _sinks(expression: Expr) -> Tuple[str, ...]:
    """Exit node names of an expression (fan-out origins)."""
    if isinstance(expression, Ref):
        return (expression.name,)
    if isinstance(expression, Chain):
        return _sinks(expression.steps[-1])
    ordered: List[str] = []
    for branch in expression.branches:
        for name in _sinks(branch):
            if name not in ordered:
                ordered.append(name)
    return tuple(ordered)


def _flatten(expression: Expr, graph: EdgeGraph) -> None:
    if isinstance(expression, Ref):
        graph._see(expression.name)
        return
    if isinstance(expression, Chain):
        for step in expression.steps:
            _flatten(step, graph)
        for upstream, downstream in zip(expression.steps, expression.steps[1:]):
            for sink in _sinks(upstream):
                for source in _sources(downstream):
                    graph.add_edge(sink, source)
        return
    if isinstance(expression, Alt):
        for branch in expression.branches:
            _flatten(branch, graph)
        graph.add_group(tuple(_sources(branch)[0] for branch in expression.branches))
        return
    raise FlowParseError(f"cannot flatten {expression!r}")


def parse_edges(text: Union[str, Sequence[str]]) -> EdgeGraph:
    """Parse one edge expression (or a sequence of them) into an :class:`EdgeGraph`.

    Multiple expressions merge into one graph — that is how fan-outs off a
    shared trunk are declared, e.g.::

        parse_edges([
            "build_dfg >> base_schedule >> extract_profile",
            "base_schedule >> (rearrange | passthrough) >> generate_context",
        ])
    """
    expressions = [text] if isinstance(text, str) else list(text)
    if not expressions:
        raise FlowParseError("a flow needs at least one edge expression")
    graph = EdgeGraph()
    for expression_text in expressions:
        ast = parse_expression(expression_text)
        piece = EdgeGraph(expressions=[render_expression(ast)])
        _flatten(ast, piece)
        graph.merge(piece)
    return graph


def render_edges(graph: EdgeGraph) -> List[str]:
    """The canonical expression list of a parsed graph (round-trip stable)."""
    return list(graph.expressions)
