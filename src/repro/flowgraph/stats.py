"""Per-node execution accounting shared by every flow.

These types grew up inside :mod:`repro.mapping.pipeline` when the mapping
flow was a hard-coded five-stage chain; the flow-graph refactor moved them
here because they describe *any* flow's execution — one
:class:`StageTiming` per node name, one :class:`Artifact` per materialised
output — not something mapping-specific.  The old import paths
(``repro.mapping.pipeline.PipelineStats`` etc.) keep working for one
release through deprecation shims.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.trace.db import percentile
from repro.trace.spans import get_tracer

#: Dataflow order of the canonical mapping flow's five nodes — the default
#: report ordering of per-stage timing blocks.  Custom-flow node names not
#: listed here sort after these, in first-recorded order.
DEFAULT_STAGE_ORDER: Tuple[str, ...] = (
    "build_dfg",
    "base_schedule",
    "extract_profile",
    "rearrange",
    "generate_context",
)


@dataclass
class Artifact:
    """One node output together with its provenance.

    Attributes
    ----------
    stage:
        Name of the producing node (its artifact namespace in the store).
    key:
        SHA-256 input hash that identifies the artifact in the store.
    value:
        The node's output object.
    from_store:
        True when the value was served by the artifact store rather than
        computed in this call.
    seconds:
        Wall time spent obtaining the value (compute time on a miss,
        fetch time on a hit).
    """

    stage: str
    key: str
    value: Any
    from_store: bool = False
    seconds: float = 0.0


@dataclass
class StageTiming:
    """Hit/miss counters, wall time and duration samples of one node."""

    stage: str
    hits: int = 0
    misses: int = 0
    seconds: float = 0.0
    #: Individual invocation durations (hit fetches and miss computes
    #: alike) — the sample behind the report's per-stage p50/p95.
    durations: List[float] = field(default_factory=list)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class PipelineStats:
    """Per-node counters of one flow-backed pipeline."""

    def __init__(self) -> None:
        self.stages: Dict[str, StageTiming] = {}

    def timing(self, stage: str) -> StageTiming:
        if stage not in self.stages:
            self.stages[stage] = StageTiming(stage=stage)
        return self.stages[stage]

    def record(self, stage: str, hit: bool, seconds: float) -> None:
        timing = self.timing(stage)
        if hit:
            timing.hits += 1
        else:
            timing.misses += 1
        timing.seconds += seconds
        timing.durations.append(seconds)
        # Single choke point for node observability: every flow execution
        # path funnels through here, so span counts always equal hit + miss
        # counts and ``python -m repro.trace stages`` matches the report.
        tracer = get_tracer()
        if tracer.active:
            tracer.record_span(stage, kind="stage", duration_s=seconds, hit=hit)

    @property
    def total_hits(self) -> int:
        return sum(timing.hits for timing in self.stages.values())

    @property
    def total_misses(self) -> int:
        return sum(timing.misses for timing in self.stages.values())

    @property
    def total_seconds(self) -> float:
        return sum(timing.seconds for timing in self.stages.values())

    def snapshot(self) -> Dict[str, Tuple[int, int, float, int]]:
        """Freeze the current counters (used to compute per-suite deltas)."""
        return {
            name: (timing.hits, timing.misses, timing.seconds, len(timing.durations))
            for name, timing in self.stages.items()
        }

    def since(self, snapshot: Dict[str, Tuple]) -> Dict[str, StageTiming]:
        """Counters accumulated after ``snapshot`` was taken.

        Accepts legacy 3-tuple snapshots (pre-duration-sample) as well:
        their deltas then carry the full sample list.
        """
        deltas: Dict[str, StageTiming] = {}
        for name, timing in self.stages.items():
            frozen = snapshot.get(name, (0, 0, 0.0))
            hits, misses, seconds = frozen[0], frozen[1], frozen[2]
            seen = frozen[3] if len(frozen) > 3 else 0
            delta = StageTiming(
                stage=name,
                hits=timing.hits - hits,
                misses=timing.misses - misses,
                seconds=timing.seconds - seconds,
                durations=list(timing.durations[seen:]),
            )
            if delta.lookups or delta.seconds:
                deltas[name] = delta
        return deltas

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly per-node summary in dataflow order."""
        return stage_timings_as_dict(self.stages)


def stage_timings_as_dict(
    timings: Dict[str, StageTiming], order: Optional[Sequence[str]] = None
) -> Dict[str, Dict[str, float]]:
    """JSON-friendly form of a per-node timing delta map.

    ``p50``/``p95`` come from the per-invocation duration samples through
    :func:`repro.trace.db.percentile` — the same function the trace
    dashboard applies to stage spans, so both views always agree.  The
    canonical five mapping nodes lead in dataflow order; any other node
    names (custom flow variants) follow in first-recorded order.
    """
    order = DEFAULT_STAGE_ORDER if order is None else order
    ordered = [name for name in order if name in timings]
    ordered += [name for name in timings if name not in order]
    return {
        name: {
            "hits": timings[name].hits,
            "misses": timings[name].misses,
            "seconds": round(timings[name].seconds, 6),
            "p50": round(percentile(timings[name].durations, 0.50), 6),
            "p95": round(percentile(timings[name].durations, 0.95), 6),
        }
        for name in ordered
    }


def merge_stage_timings(
    *deltas: Dict[str, StageTiming],
) -> Dict[str, StageTiming]:
    """Combine several per-node timing delta maps into one.

    The campaign runner uses this to fold separate accounting windows of
    the same suite (profile mapping, then the selected-point mapping of a
    custom flow) into a single ``mapping_stages`` block.
    """
    merged: Dict[str, StageTiming] = {}
    for delta in deltas:
        for name, timing in delta.items():
            into = merged.setdefault(name, StageTiming(stage=name))
            into.hits += timing.hits
            into.misses += timing.misses
            into.seconds += timing.seconds
            into.durations.extend(timing.durations)
    return merged


def timed_fetch(store, stage: str, key: str) -> Tuple[bool, Any, float]:
    """One timed store lookup (shared by the flow runtime's hit path)."""
    started = time.perf_counter()
    hit, value = store.fetch(stage, key)
    return hit, value, time.perf_counter() - started
