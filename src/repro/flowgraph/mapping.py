"""The paper's mapping stages as flow-graph nodes.

This module binds the five canonical stages (plus two optional variants)
to a :class:`~repro.mapping.pipeline.MappingPipeline` instance and wires
them into the default flow::

    build_dfg >> base_schedule >> extract_profile
    base_schedule >> (rearrange | passthrough) >> generate_context

``rearrange`` carries ``when !target_is_base`` and ``passthrough`` (a
virtual node whose output key is the base-schedule key) carries
``when target_is_base``, so the routed flow reproduces the legacy
pipeline's base-target behaviour byte for byte — same artifact keys, same
store traffic, same stats.

Custom flows re-wire the same registered nodes from JSON configs
(:func:`build_mapping_flow`): skip the rearrangement when the schedule
profile is balanced, or race ``rearrange`` against ``remap`` (the full
re-mapper) and keep whichever schedule is shorter.

Only *leaf* modules of :mod:`repro.mapping` are imported here — never the
package or its ``pipeline`` module — so `pipeline.py` can import this
module (lazily) without a cycle.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.arch.config_cache import ConfigurationContext
from repro.core.stalls import ScheduleProfile
from repro.flowgraph.config import ConfigSource, flow_from_config
from repro.flowgraph.core import Flow, FlowContext, Node, Selector
from repro.flowgraph.dsl import parse_edges
from repro.ir.dfg import DFG
from repro.mapping.context_gen import generate_context
from repro.mapping.loop_pipelining import LoopPipeliningScheduler
from repro.mapping.profile import extract_profile
from repro.mapping.rearrange import (
    RearrangedSchedule,
    RearrangementResult,
    rearrange_schedule,
    rebind_schedule,
    remap_schedule,
)
from repro.mapping.schedule import Schedule

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.mapping.pipeline import MappingPipeline

#: Seed value names every mapping flow may consume.  ``base_architecture``
#: and ``target_architecture`` are pre-keyed with their structural
#: fingerprints when the pipeline builds a context.
MAPPING_FLOW_INPUTS = ("kernel", "iterations", "base_architecture", "target_architecture")

#: The default flow's edge expressions — the canonical five-node shape.
DEFAULT_MAPPING_EDGES = (
    "build_dfg >> base_schedule >> extract_profile",
    "base_schedule >> (rearrange | passthrough) >> generate_context",
)


# ----------------------------------------------------------------------
# Routing conditions
# ----------------------------------------------------------------------
def _target_is_base(ctx: FlowContext) -> bool:
    return ctx["target_architecture"].is_base


def _profile_balanced(ctx: FlowContext) -> bool:
    """True when the base schedule never over-subscribes the target's
    shared critical resources — rearrangement then cannot add RS stalls."""
    return ctx["profile"].max_critical_per_cycle <= ctx["target_architecture"].total_shared_units


#: Named predicates usable in flow configs (``"when": "!target_is_base"``).
MAPPING_CONDITIONS: Dict[str, Callable[[FlowContext], bool]] = {
    "target_is_base": _target_is_base,
    "profile_balanced": _profile_balanced,
}


# ----------------------------------------------------------------------
# Node factories
# ----------------------------------------------------------------------
def _restamp_rearranged(value: RearrangedSchedule, ctx: FlowContext) -> RearrangedSchedule:
    # The store keys by structure, not by name; rebind the schedule and
    # restamp the summary so results carry the caller's design-point name
    # (the stored object stays untouched for consumers using the original
    # name).
    target = ctx["target_architecture"]
    if value.summary.architecture == target.name:
        return value
    return RearrangedSchedule(
        schedule=rebind_schedule(value.schedule, target),
        summary=replace(value.summary, architecture=target.name),
    )


def _restamp_context(value: ConfigurationContext, ctx: FlowContext) -> ConfigurationContext:
    expected = f"{ctx['kernel'].name}@{ctx['target_architecture'].name}"
    if value.name == expected:
        return value
    # Same structural-alias situation as for rearranged schedules: the
    # stored context carries the name of whichever spec computed it.
    return value.renamed(expected)


def node_registry(pipeline: "MappingPipeline") -> Dict[str, Callable[[], Node]]:
    """Factories for every registered mapping node, bound to ``pipeline``.

    Each call builds a fresh :class:`Node`, so per-flow config overrides
    (conditions, retry policies) never leak between flows.
    """

    def build_dfg() -> Node:
        return Node(
            "build_dfg",
            inputs=("kernel", "iterations"),
            output="dfg",
            resolver=lambda ctx: pipeline.dfg_artifact(ctx["kernel"], ctx.get("iterations")),
            persistent=False,
            output_type=DFG,
            doc="Unroll the kernel into its DFG; key = content fingerprint.",
        )

    def base_schedule() -> Node:
        return Node(
            "base_schedule",
            fn=lambda ctx: LoopPipeliningScheduler(ctx["base_architecture"]).schedule(
                ctx["dfg"], kernel_name=ctx["kernel"].name
            ),
            inputs=("dfg", "base_architecture", "kernel"),
            output="schedule",
            key_inputs={"dfg": "dfg", "architecture": "base_architecture"},
            output_type=Schedule,
            input_types={"dfg": DFG},
            doc="Loop-pipeline the kernel onto the base architecture.",
        )

    def extract_profile_node() -> Node:
        return Node(
            "extract_profile",
            fn=lambda ctx: extract_profile(ctx["schedule"], ctx["dfg"]),
            inputs=("schedule", "dfg"),
            output="profile",
            key_inputs={"schedule": "schedule", "dfg": "dfg"},
            output_type=ScheduleProfile,
            input_types={"schedule": Schedule, "dfg": DFG},
            doc="Extract the stall-estimation profile of the base schedule.",
        )

    def rearrange() -> Node:
        def compute(ctx: FlowContext) -> RearrangedSchedule:
            base = ctx["schedule"]
            dfg = ctx["dfg"]
            target = ctx["target_architecture"]
            actual = rearrange_schedule(base, dfg, target)
            stall_free = rearrange_schedule(base, dfg, target, unlimited_shared=True)
            summary = RearrangementResult(
                kernel=base.kernel_name,
                architecture=target.name,
                base_cycles=base.length,
                stall_free_cycles=stall_free.length,
                cycles=actual.length,
            )
            return RearrangedSchedule(schedule=actual, summary=summary)

        return Node(
            "rearrange",
            fn=compute,
            inputs=("schedule", "dfg", "target_architecture"),
            output="rearranged",
            key_inputs={
                "schedule": "schedule",
                "dfg": "dfg",
                "architecture": "target_architecture",
            },
            when=lambda ctx: not _target_is_base(ctx),
            when_label="!target_is_base",
            adapt=_restamp_rearranged,
            output_type=RearrangedSchedule,
            input_types={"schedule": Schedule, "dfg": DFG},
            doc="Apply the paper's RS/RP rearrangement rules (Section 4).",
        )

    def passthrough() -> Node:
        def compute(ctx: FlowContext) -> RearrangedSchedule:
            schedule = ctx["schedule"]
            length = schedule.length
            summary = RearrangementResult(
                kernel=ctx["kernel"].name,
                architecture=ctx["target_architecture"].name,
                base_cycles=length,
                stall_free_cycles=length,
                cycles=length,
            )
            return RearrangedSchedule(schedule=schedule, summary=summary)

        return Node(
            "passthrough",
            fn=compute,
            inputs=("schedule", "kernel", "target_architecture"),
            output="rearranged",
            virtual=True,
            key_from="schedule",
            when=_target_is_base,
            when_label="target_is_base",
            output_type=RearrangedSchedule,
            doc="Base targets keep the base schedule; the key chain skips "
            "this node entirely (downstream keys see the schedule key).",
        )

    def remap() -> Node:
        def compute(ctx: FlowContext) -> RearrangedSchedule:
            base = ctx["schedule"]
            target = ctx["target_architecture"]
            remapped = remap_schedule(ctx["dfg"], target, kernel_name=ctx["kernel"].name)
            summary = RearrangementResult(
                kernel=base.kernel_name,
                architecture=target.name,
                base_cycles=base.length,
                # A full re-map schedules directly on the target, so its
                # length is its own stall-free reference (stalls = 0).
                stall_free_cycles=remapped.length,
                cycles=remapped.length,
            )
            return RearrangedSchedule(schedule=remapped, summary=summary)

        return Node(
            "remap",
            fn=compute,
            inputs=("schedule", "dfg", "kernel", "target_architecture"),
            output="rearranged",
            key_inputs={"dfg": "dfg", "architecture": "target_architecture"},
            when=lambda ctx: not _target_is_base(ctx),
            when_label="!target_is_base",
            adapt=_restamp_rearranged,
            output_type=RearrangedSchedule,
            input_types={"dfg": DFG},
            doc="Fully re-map the DFG onto the target (the 'smarter mapper' "
            "upper-bound variant); race it against rearrange.",
        )

    def generate_context_node() -> Node:
        return Node(
            "generate_context",
            fn=lambda ctx: generate_context(ctx["rearranged"].schedule, ctx["dfg"]),
            inputs=("rearranged", "dfg", "kernel", "target_architecture"),
            output="context",
            key_inputs={"schedule": "rearranged", "dfg": "dfg"},
            adapt=_restamp_context,
            output_type=ConfigurationContext,
            input_types={"rearranged": RearrangedSchedule, "dfg": DFG},
            doc="Encode the routed schedule into configuration contexts.",
        )

    return {
        "build_dfg": build_dfg,
        "base_schedule": base_schedule,
        "extract_profile": extract_profile_node,
        "rearrange": rearrange,
        "passthrough": passthrough,
        "remap": remap,
        "generate_context": generate_context_node,
    }


# ----------------------------------------------------------------------
# Flow construction
# ----------------------------------------------------------------------
def build_mapping_flow(
    pipeline: "MappingPipeline",
    config: Optional[ConfigSource] = None,
) -> Flow:
    """The mapping flow of ``pipeline``: canonical by default, or rewired
    from a JSON/dict config (see :mod:`repro.flowgraph.config`)."""
    registry = node_registry(pipeline)
    if config is None:
        nodes = [
            registry[name]()
            for name in (
                "build_dfg",
                "base_schedule",
                "extract_profile",
                "rearrange",
                "passthrough",
                "generate_context",
            )
        ]
        return Flow(
            nodes,
            parse_edges(list(DEFAULT_MAPPING_EDGES)),
            name="mapping",
            inputs=MAPPING_FLOW_INPUTS,
            description="The paper's five-stage mapping flow (Figure 7).",
        )
    return flow_from_config(
        config,
        registry=registry,
        conditions=MAPPING_CONDITIONS,
        inputs=MAPPING_FLOW_INPUTS,
        name="mapping",
    )
