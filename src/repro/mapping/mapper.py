"""Top-level kernel-to-architecture mapping interface.

:class:`RSPMapper` is the single entry point used by examples, benchmarks
and the evaluation harness.  Since the staged refactor it is a thin facade
over :class:`~repro.mapping.pipeline.MappingPipeline`: base scheduling,
RS/RP rearrangement and context generation run as content-hashed pipeline
stages, memoised by an :class:`~repro.engine.artifacts.ArtifactStore`
(in-memory by default, which reproduces the seed mapper's per-instance
caching; pass a persistent store to share schedules across processes).

>>> from repro.arch import base_architecture, rsp_architecture
>>> from repro.kernels import get_kernel
>>> from repro.mapping import RSPMapper
>>> mapper = RSPMapper()
>>> result = mapper.map_kernel(get_kernel("MVM"), rsp_architecture(2))
>>> result.cycles >= 1
True
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence

from repro.arch.template import ArchitectureSpec
from repro.ir.dfg import DFG
from repro.ir.loops import Kernel
from repro.mapping.pipeline import MappingPipeline, MappingResult
from repro.mapping.schedule import Schedule

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.engine.artifacts import ArtifactStore

__all__ = ["MappingResult", "RSPMapper"]


class RSPMapper:
    """Maps kernels onto base, RS, RP and RSP design points.

    The mapper caches base-architecture schedules per kernel so sweeping the
    nine paper architectures only schedules each kernel once and then
    rearranges, exactly like the paper's flow (base mapping happens in the
    upper half of Figure 7, rearrangement in the lower half).

    Parameters
    ----------
    base:
        Reference base architecture; must be a base design.
    generate_contexts:
        Whether :meth:`map_kernel` produces configuration contexts.
    store:
        Optional persistent artifact store; defaults to in-memory
        memoisation (the seed behaviour).
    pipeline:
        An existing pipeline to wrap; overrides the other arguments.
    flow:
        Custom mapping flow forwarded to :class:`MappingPipeline` — a
        pre-built :class:`~repro.flowgraph.core.Flow` or a flow config
        (dict or JSON path).  ``None`` keeps the canonical five-node flow.
        Ignored when ``pipeline`` is supplied.
    """

    def __init__(
        self,
        base: Optional[ArchitectureSpec] = None,
        generate_contexts: bool = False,
        store: Optional["ArtifactStore"] = None,
        pipeline: Optional[MappingPipeline] = None,
        flow=None,
    ) -> None:
        self.pipeline = pipeline or MappingPipeline(
            base=base, store=store, generate_contexts=generate_contexts, flow=flow
        )
        self.base = self.pipeline.base
        self.generate_contexts = self.pipeline.generate_contexts

    # ------------------------------------------------------------------
    # Base mapping
    # ------------------------------------------------------------------
    def build_dfg(self, kernel: Kernel, iterations: Optional[int] = None) -> DFG:
        """Materialise (and cache) the unrolled DFG of ``kernel``."""
        return self.pipeline.dfg_artifact(kernel, iterations).value

    def base_schedule(self, kernel: Kernel, iterations: Optional[int] = None) -> Schedule:
        """The initial configuration context (base-architecture schedule)."""
        return self.pipeline.base_schedule_artifact(kernel, iterations).value

    # ------------------------------------------------------------------
    # Mapping onto a design point
    # ------------------------------------------------------------------
    def map_kernel(
        self,
        kernel: Kernel,
        architecture: Optional[ArchitectureSpec] = None,
        iterations: Optional[int] = None,
    ) -> MappingResult:
        """Map ``kernel`` onto ``architecture`` (defaults to the base design)."""
        return self.pipeline.run(kernel, architecture, iterations)

    def map_suite(
        self,
        kernels: Sequence[Kernel],
        architectures: Sequence[ArchitectureSpec],
    ) -> Dict[str, Dict[str, MappingResult]]:
        """Map every kernel onto every architecture.

        Returns a nested mapping ``{kernel name: {architecture name: result}}``.
        """
        results: Dict[str, Dict[str, MappingResult]] = {}
        for kernel in kernels:
            per_arch: Dict[str, MappingResult] = {}
            for architecture in architectures:
                per_arch[architecture.name] = self.map_kernel(kernel, architecture)
            results[kernel.name] = per_arch
        return results
