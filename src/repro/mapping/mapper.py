"""Top-level kernel-to-architecture mapping interface.

:class:`RSPMapper` bundles the base scheduling, the RS/RP rearrangement and
the configuration-context generation into the single entry point used by
examples, benchmarks and the evaluation harness:

>>> from repro.arch import base_architecture, rsp_architecture
>>> from repro.kernels import get_kernel
>>> from repro.mapping import RSPMapper
>>> mapper = RSPMapper()
>>> result = mapper.map_kernel(get_kernel("MVM"), rsp_architecture(2))
>>> result.cycles >= 1
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.arch.config_cache import ConfigurationContext
from repro.arch.template import ArchitectureSpec, base_architecture
from repro.errors import MappingError
from repro.ir.dfg import DFG
from repro.ir.loops import Kernel
from repro.mapping.context_gen import generate_context
from repro.mapping.loop_pipelining import LoopPipeliningScheduler
from repro.mapping.rearrange import (
    RearrangementResult,
    evaluate_rearrangement,
    rearrange_schedule,
)
from repro.mapping.schedule import Schedule


@dataclass
class MappingResult:
    """Everything produced by mapping one kernel onto one design point."""

    kernel: str
    architecture: ArchitectureSpec
    dfg: DFG
    base_schedule: Schedule
    schedule: Schedule
    cycles: int
    stall_cycles: int
    base_cycles: int
    context: Optional[ConfigurationContext] = None

    @property
    def max_multiplications_per_cycle(self) -> int:
        """Peak multiplications executing in one cycle (paper Table 3 metric)."""
        return self.base_schedule.max_multiplications_per_cycle()

    @property
    def cycle_overhead_vs_base(self) -> int:
        """Extra cycles relative to the base architecture mapping."""
        return self.cycles - self.base_cycles


class RSPMapper:
    """Maps kernels onto base, RS, RP and RSP design points.

    The mapper caches base-architecture schedules per kernel so sweeping the
    nine paper architectures only schedules each kernel once and then
    rearranges, exactly like the paper's flow (base mapping happens in the
    upper half of Figure 7, rearrangement in the lower half).
    """

    def __init__(self, base: Optional[ArchitectureSpec] = None,
                 generate_contexts: bool = False) -> None:
        self.base = base or base_architecture()
        if not self.base.is_base:
            raise MappingError("the reference architecture of RSPMapper must be a base design")
        self.generate_contexts = generate_contexts
        self._dfg_cache: Dict[str, DFG] = {}
        self._base_schedule_cache: Dict[str, Schedule] = {}

    # ------------------------------------------------------------------
    # Base mapping
    # ------------------------------------------------------------------
    def build_dfg(self, kernel: Kernel, iterations: Optional[int] = None) -> DFG:
        """Materialise (and cache) the unrolled DFG of ``kernel``."""
        key = f"{kernel.name}@{iterations or kernel.iterations}"
        if key not in self._dfg_cache:
            self._dfg_cache[key] = kernel.build(iterations)
        return self._dfg_cache[key]

    def base_schedule(self, kernel: Kernel, iterations: Optional[int] = None) -> Schedule:
        """The initial configuration context (base-architecture schedule)."""
        key = f"{kernel.name}@{iterations or kernel.iterations}"
        if key not in self._base_schedule_cache:
            dfg = self.build_dfg(kernel, iterations)
            scheduler = LoopPipeliningScheduler(self.base)
            self._base_schedule_cache[key] = scheduler.schedule(dfg, kernel_name=kernel.name)
        return self._base_schedule_cache[key]

    # ------------------------------------------------------------------
    # Mapping onto a design point
    # ------------------------------------------------------------------
    def map_kernel(
        self,
        kernel: Kernel,
        architecture: Optional[ArchitectureSpec] = None,
        iterations: Optional[int] = None,
    ) -> MappingResult:
        """Map ``kernel`` onto ``architecture`` (defaults to the base design)."""
        target = architecture or self.base
        if target.array.rows != self.base.array.rows or target.array.cols != self.base.array.cols:
            raise MappingError(
                "the target architecture must have the same array dimensions as the base"
            )
        dfg = self.build_dfg(kernel, iterations)
        base_schedule = self.base_schedule(kernel, iterations)
        if target.is_base:
            schedule = base_schedule
            summary = RearrangementResult(
                kernel=kernel.name,
                architecture=target.name,
                base_cycles=base_schedule.length,
                stall_free_cycles=base_schedule.length,
                cycles=base_schedule.length,
            )
        else:
            schedule = rearrange_schedule(base_schedule, dfg, target)
            summary = evaluate_rearrangement(base_schedule, dfg, target)
        context = generate_context(schedule, dfg) if self.generate_contexts else None
        return MappingResult(
            kernel=kernel.name,
            architecture=target,
            dfg=dfg,
            base_schedule=base_schedule,
            schedule=schedule,
            cycles=summary.cycles,
            stall_cycles=summary.stall_cycles,
            base_cycles=summary.base_cycles,
            context=context,
        )

    def map_suite(
        self,
        kernels: Sequence[Kernel],
        architectures: Sequence[ArchitectureSpec],
    ) -> Dict[str, Dict[str, MappingResult]]:
        """Map every kernel onto every architecture.

        Returns a nested mapping ``{kernel name: {architecture name: result}}``.
        """
        results: Dict[str, Dict[str, MappingResult]] = {}
        for kernel in kernels:
            per_arch: Dict[str, MappingResult] = {}
            for architecture in architectures:
                per_arch[architecture.name] = self.map_kernel(kernel, architecture)
            results[kernel.name] = per_arch
        return results
