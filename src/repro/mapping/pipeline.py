"""Staged mapping pipeline with content-hashed, store-backed artifacts.

The seed's :class:`~repro.mapping.mapper.RSPMapper` bundled the paper's
Figure-7 mapping flow into one monolithic call.  This module makes the
stages explicit and independently runnable::

    build_dfg -> base_schedule -> extract_profile        (upper half)
                       \\-> rearrange -> generate_context (lower half)

Every stage consumes and produces :class:`Artifact` values whose identity
is a SHA-256 *input* hash (:func:`stage_key`, built on the same hashing
convention as the evaluation engine's job keys): the hash of a stage's
inputs is the hash of the upstream artifact keys plus the stage's own
parameters, so the whole chain is derivable from the kernel DFG
fingerprint and the architecture fingerprints alone — without doing any
mapping work.  That is what lets a warm
:class:`~repro.engine.artifacts.ArtifactStore` serve base schedules,
profiles, rearranged schedules and configuration contexts across
processes and campaigns while the only recomputed step is the cheap DFG
construction that *defines* the fingerprint.

Kernels carry Python callables, so the kernel itself cannot be content
hashed; the built DFG can (:func:`dfg_fingerprint` digests
:meth:`repro.ir.dfg.DFG.to_dict`).  The ``build_dfg`` stage is therefore
memoised in memory only and marked non-persistent: its output hash seeds
every downstream key, which also makes the store self-validating — a
changed kernel body changes the DFG, the fingerprint and every key.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.arch.config_cache import ConfigurationContext
from repro.arch.template import ArchitectureSpec, base_architecture
from repro.core.stalls import ScheduleProfile
from repro.errors import MappingError
from repro.ir.dfg import DFG
from repro.ir.loops import Kernel
from repro.mapping.context_gen import generate_context
from repro.mapping.loop_pipelining import LoopPipeliningScheduler
from repro.mapping.profile import extract_profile
from repro.mapping.rearrange import RearrangementResult, rearrange_schedule
from repro.mapping.schedule import Schedule
from repro.trace.db import percentile
from repro.trace.spans import get_tracer
from repro.utils.serialization import content_hash

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.engine.artifacts import ArtifactStore


# ----------------------------------------------------------------------
# Stage declarations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageSpec:
    """Declaration of one pipeline stage: its artifact interface.

    Attributes
    ----------
    name:
        Stage name; also the artifact namespace in the store.
    inputs:
        Names of the upstream artifacts (or raw inputs) the stage consumes.
    output:
        Name of the artifact the stage produces.
    persistent:
        Whether the stage's output is written to the artifact store.  The
        ``build_dfg`` stage is memoised in memory only: its output hash is
        what keys every downstream artifact, so it must be recomputed to
        validate the chain (and is cheap enough that this never matters).
    """

    name: str
    inputs: Tuple[str, ...]
    output: str
    persistent: bool = True


#: The five stages of the mapping pipeline, in dataflow order.
PIPELINE_STAGES: Tuple[StageSpec, ...] = (
    StageSpec("build_dfg", inputs=("kernel",), output="dfg", persistent=False),
    StageSpec("base_schedule", inputs=("dfg", "base_architecture"), output="schedule"),
    StageSpec("extract_profile", inputs=("schedule", "dfg"), output="profile"),
    StageSpec("rearrange", inputs=("schedule", "dfg", "target_architecture"), output="rearranged"),
    StageSpec("generate_context", inputs=("rearranged", "dfg"), output="context"),
)

#: Stage names in dataflow order (report/table ordering).
STAGE_NAMES: Tuple[str, ...] = tuple(stage.name for stage in PIPELINE_STAGES)

#: Stage declarations by name; ``MappingPipeline._memoise`` consults the
#: ``persistent`` flag here, so the declaration is authoritative.
STAGES_BY_NAME: Dict[str, StageSpec] = {stage.name: stage for stage in PIPELINE_STAGES}


@dataclass
class Artifact:
    """One stage output together with its provenance.

    Attributes
    ----------
    stage:
        Name of the producing stage.
    key:
        SHA-256 input hash that identifies the artifact in the store.
    value:
        The stage's output object.
    from_store:
        True when the value was served by the artifact store rather than
        computed in this call.
    seconds:
        Wall time spent obtaining the value (compute time on a miss,
        fetch time on a hit).
    """

    stage: str
    key: str
    value: Any
    from_store: bool = False
    seconds: float = 0.0


@dataclass
class RearrangedSchedule:
    """Output of the ``rearrange`` stage: the schedule plus its cycle summary."""

    schedule: Schedule
    summary: RearrangementResult


# ----------------------------------------------------------------------
# Content hashing
# ----------------------------------------------------------------------
def dfg_fingerprint(dfg: DFG) -> str:
    """SHA-256 digest of a DFG's full content (operations and edges)."""
    return content_hash(dfg.to_dict())


def architecture_fingerprint(spec: ArchitectureSpec) -> str:
    """SHA-256 digest of an architecture's *structure*.

    The human-readable name is excluded on purpose: ``RSP#2`` and the
    exploration grid's ``rsp(shr=2,shc=0,stages=2)`` describe the same
    design point and must map to the same artifacts.
    """
    return content_hash(
        {
            "array": spec.array,
            "sharing": spec.sharing,
            "pipelining": spec.pipelining,
            "shared_resource": spec.shared_resource,
        }
    )


def stage_key(stage: str, **inputs: object) -> str:
    """Memoisation key of one stage invocation: ``hash(stage + input hashes)``."""
    return content_hash({"stage": stage, "inputs": inputs})


# ----------------------------------------------------------------------
# Per-stage accounting
# ----------------------------------------------------------------------
@dataclass
class StageTiming:
    """Hit/miss counters, wall time and duration samples of one stage."""

    stage: str
    hits: int = 0
    misses: int = 0
    seconds: float = 0.0
    #: Individual invocation durations (hit fetches and miss computes
    #: alike) — the sample behind the report's per-stage p50/p95.
    durations: List[float] = field(default_factory=list)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class PipelineStats:
    """Per-stage counters of one :class:`MappingPipeline`."""

    def __init__(self) -> None:
        self.stages: Dict[str, StageTiming] = {}

    def timing(self, stage: str) -> StageTiming:
        if stage not in self.stages:
            self.stages[stage] = StageTiming(stage=stage)
        return self.stages[stage]

    def record(self, stage: str, hit: bool, seconds: float) -> None:
        timing = self.timing(stage)
        if hit:
            timing.hits += 1
        else:
            timing.misses += 1
        timing.seconds += seconds
        timing.durations.append(seconds)
        # Single choke point for stage observability: every pipeline path
        # funnels through here, so span counts always equal hit + miss
        # counts and ``python -m repro.trace stages`` matches the report.
        tracer = get_tracer()
        if tracer.active:
            tracer.record_span(stage, kind="stage", duration_s=seconds, hit=hit)

    @property
    def total_hits(self) -> int:
        return sum(timing.hits for timing in self.stages.values())

    @property
    def total_misses(self) -> int:
        return sum(timing.misses for timing in self.stages.values())

    @property
    def total_seconds(self) -> float:
        return sum(timing.seconds for timing in self.stages.values())

    def snapshot(self) -> Dict[str, Tuple[int, int, float, int]]:
        """Freeze the current counters (used to compute per-suite deltas)."""
        return {
            name: (timing.hits, timing.misses, timing.seconds, len(timing.durations))
            for name, timing in self.stages.items()
        }

    def since(self, snapshot: Dict[str, Tuple]) -> Dict[str, StageTiming]:
        """Counters accumulated after ``snapshot`` was taken.

        Accepts legacy 3-tuple snapshots (pre-duration-sample) as well:
        their deltas then carry the full sample list.
        """
        deltas: Dict[str, StageTiming] = {}
        for name, timing in self.stages.items():
            frozen = snapshot.get(name, (0, 0, 0.0))
            hits, misses, seconds = frozen[0], frozen[1], frozen[2]
            seen = frozen[3] if len(frozen) > 3 else 0
            delta = StageTiming(
                stage=name,
                hits=timing.hits - hits,
                misses=timing.misses - misses,
                seconds=timing.seconds - seconds,
                durations=list(timing.durations[seen:]),
            )
            if delta.lookups or delta.seconds:
                deltas[name] = delta
        return deltas

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly per-stage summary in dataflow order."""
        return stage_timings_as_dict(self.stages)


def stage_timings_as_dict(timings: Dict[str, StageTiming]) -> Dict[str, Dict[str, float]]:
    """JSON-friendly form of a per-stage timing delta map.

    ``p50``/``p95`` come from the per-invocation duration samples through
    :func:`repro.trace.db.percentile` — the same function the trace
    dashboard applies to stage spans, so both views always agree.
    """
    ordered = [name for name in STAGE_NAMES if name in timings]
    ordered += [name for name in timings if name not in STAGE_NAMES]
    return {
        name: {
            "hits": timings[name].hits,
            "misses": timings[name].misses,
            "seconds": round(timings[name].seconds, 6),
            "p50": round(percentile(timings[name].durations, 0.50), 6),
            "p95": round(percentile(timings[name].durations, 0.95), 6),
        }
        for name in ordered
    }


# ----------------------------------------------------------------------
# Mapping result (moved here from mapper.py; re-exported there)
# ----------------------------------------------------------------------
@dataclass
class MappingResult:
    """Everything produced by mapping one kernel onto one design point."""

    kernel: str
    architecture: ArchitectureSpec
    dfg: DFG
    base_schedule: Schedule
    schedule: Schedule
    cycles: int
    stall_cycles: int
    base_cycles: int
    context: Optional[ConfigurationContext] = None

    @property
    def max_multiplications_per_cycle(self) -> int:
        """Peak multiplications executing in one cycle (paper Table 3 metric)."""
        return self.base_schedule.max_multiplications_per_cycle()

    @property
    def cycle_overhead_vs_base(self) -> int:
        """Extra cycles relative to the base architecture mapping."""
        return self.cycles - self.base_cycles


def _rebind_schedule(schedule: Schedule, target: ArchitectureSpec) -> Schedule:
    """Copy of ``schedule`` bound to the structurally identical ``target``.

    The immutable entries are shared; only the schedule shell is rebuilt so
    ``schedule.architecture`` reports the caller's spec (figures and the
    simulator read the name from there).
    """
    rebound = Schedule(target, kernel_name=schedule.kernel_name)
    for entry in schedule.operations():
        rebound.add(entry)
    return rebound


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------
class MappingPipeline:
    """Runs the staged mapping flow against an artifact store.

    Parameters
    ----------
    base:
        The reference base architecture; must be a base design (the paper
        derives every RS/RP/RSP schedule from the base mapping).
    store:
        Artifact store memoising stage outputs; an in-memory store is
        created when omitted (the seed's within-run caching behaviour).
        Pass a store rooted at the engine's cache directory — or a path,
        opened with ``store_shards`` shards — to share artifacts across
        processes and campaigns.
    generate_contexts:
        Whether :meth:`run` produces configuration contexts.
    store_shards:
        Shard count used when ``store`` is given as a path (see
        :class:`~repro.engine.artifacts.ArtifactStore`).
    """

    def __init__(
        self,
        base: Optional[ArchitectureSpec] = None,
        store: Optional[Union["ArtifactStore", str, Path]] = None,
        generate_contexts: bool = False,
        store_shards: int = 1,
    ) -> None:
        self.base = base or base_architecture()
        if not self.base.is_base:
            raise MappingError("the reference architecture of the pipeline must be a base design")
        if store is None or isinstance(store, (str, Path)):
            # Imported here (not at module level) to keep repro.mapping
            # importable without triggering repro.engine's package import,
            # which itself imports repro.mapping.
            from repro.engine.artifacts import ArtifactStore

            store = ArtifactStore(store, shards=store_shards)
        self.store = store
        self.generate_contexts = generate_contexts
        self.stats = PipelineStats()
        self._base_fingerprint = architecture_fingerprint(self.base)
        self._dfg_memo: Dict[str, Artifact] = {}

    # ------------------------------------------------------------------
    # Stage execution plumbing
    # ------------------------------------------------------------------
    def _base_schedule_key(self, dfg_key: str) -> str:
        """The base-schedule stage key shared by every downstream stage."""
        return stage_key("base_schedule", dfg=dfg_key, architecture=self._base_fingerprint)

    def _memoise(self, stage: str, key: str, compute: Callable[[], Any]) -> Artifact:
        """Serve ``(stage, key)`` from the store, computing and storing on a miss.

        ``compute`` is only invoked on a miss, so upstream artifacts named
        inside it are materialised lazily: a warm store serves a profile
        without ever touching the schedule it was extracted from.
        """
        started = time.perf_counter()
        hit, value = self.store.fetch(stage, key)
        if hit:
            elapsed = time.perf_counter() - started
            self.stats.record(stage, hit=True, seconds=elapsed)
            return Artifact(stage=stage, key=key, value=value, from_store=True, seconds=elapsed)
        value = compute()
        self.store.put(stage, key, value, persist=STAGES_BY_NAME[stage].persistent)
        elapsed = time.perf_counter() - started
        self.stats.record(stage, hit=False, seconds=elapsed)
        return Artifact(stage=stage, key=key, value=value, seconds=elapsed)

    # ------------------------------------------------------------------
    # Stage 1: build_dfg
    # ------------------------------------------------------------------
    def dfg_artifact(self, kernel: Kernel, iterations: Optional[int] = None) -> Artifact:
        """Materialise (and memoise) the unrolled DFG of ``kernel``.

        The artifact key is the *content* fingerprint of the built DFG,
        which seeds every downstream stage key.  Kernel bodies are Python
        callables and cannot be hashed, so this stage always runs at least
        once per process and is never persisted.
        """
        memo_key = f"{kernel.name}@{iterations or kernel.iterations}"
        if memo_key in self._dfg_memo:
            artifact = self._dfg_memo[memo_key]
            self.stats.record("build_dfg", hit=True, seconds=0.0)
            return artifact
        started = time.perf_counter()
        dfg = kernel.build(iterations)
        artifact = Artifact(
            stage="build_dfg",
            key=dfg_fingerprint(dfg),
            value=dfg,
            seconds=time.perf_counter() - started,
        )
        self._dfg_memo[memo_key] = artifact
        self.stats.record("build_dfg", hit=False, seconds=artifact.seconds)
        return artifact

    # ------------------------------------------------------------------
    # Stage 2: base_schedule
    # ------------------------------------------------------------------
    def base_schedule_artifact(self, kernel: Kernel, iterations: Optional[int] = None) -> Artifact:
        """Schedule ``kernel`` on the base architecture (loop pipelining)."""
        dfg_art = self.dfg_artifact(kernel, iterations)
        key = self._base_schedule_key(dfg_art.key)

        def compute() -> Schedule:
            scheduler = LoopPipeliningScheduler(self.base)
            return scheduler.schedule(dfg_art.value, kernel_name=kernel.name)

        return self._memoise("base_schedule", key, compute)

    # ------------------------------------------------------------------
    # Stage 3: extract_profile
    # ------------------------------------------------------------------
    def profile_artifact(self, kernel: Kernel, iterations: Optional[int] = None) -> Artifact:
        """Extract the stall-estimation profile of the base schedule.

        On a warm store this never materialises the schedule: the profile
        key is derived from the schedule *key*, not its value.
        """
        dfg_art = self.dfg_artifact(kernel, iterations)
        schedule_key = self._base_schedule_key(dfg_art.key)
        key = stage_key("extract_profile", schedule=schedule_key, dfg=dfg_art.key)

        def compute() -> ScheduleProfile:
            schedule = self.base_schedule_artifact(kernel, iterations).value
            return extract_profile(schedule, dfg_art.value)

        return self._memoise("extract_profile", key, compute)

    def profiles_for(
        self, kernels: Sequence[Kernel], iterations: Optional[int] = None
    ) -> Dict[str, ScheduleProfile]:
        """Profiles of a kernel set, keyed by kernel name (store-backed)."""
        return {
            kernel.name: self.profile_artifact(kernel, iterations).value for kernel in kernels
        }

    # ------------------------------------------------------------------
    # Stage-key enumeration (prefetch planning)
    # ------------------------------------------------------------------
    def stage_keys(
        self,
        kernels: Sequence[Kernel],
        targets: Sequence[ArchitectureSpec] = (),
        iterations: Optional[int] = None,
    ) -> Dict[str, List[str]]:
        """Every persistent stage key these kernels would touch — without
        executing any stage.

        The whole key chain is derivable from the DFG fingerprint and the
        architecture fingerprints alone (that is the point of input-hash
        keying), so the only work done here is the cheap, memoised DFG
        construction.  This is what lets a prefetcher warm the artifact
        store for a suite *while the previous suite is still exploring*:
        one batched fetch per stage instead of one blocking lookup per
        kernel inside the mapping call.
        """
        keys: Dict[str, List[str]] = {"base_schedule": [], "extract_profile": []}
        rearrange_keys: List[str] = []
        context_keys: List[str] = []
        for kernel in kernels:
            dfg_key = self.dfg_artifact(kernel, iterations).key
            schedule_key = self._base_schedule_key(dfg_key)
            keys["base_schedule"].append(schedule_key)
            keys["extract_profile"].append(
                stage_key("extract_profile", schedule=schedule_key, dfg=dfg_key)
            )
            for target in targets:
                if target.is_base:
                    upstream_key = schedule_key
                else:
                    upstream_key = stage_key(
                        "rearrange",
                        schedule=schedule_key,
                        dfg=dfg_key,
                        architecture=architecture_fingerprint(target),
                    )
                    rearrange_keys.append(upstream_key)
                if self.generate_contexts:
                    context_keys.append(
                        stage_key("generate_context", schedule=upstream_key, dfg=dfg_key)
                    )
        if rearrange_keys:
            keys["rearrange"] = rearrange_keys
        if context_keys:
            keys["generate_context"] = context_keys
        return keys

    def prefetch_stages(
        self,
        kernels: Sequence[Kernel],
        targets: Sequence[ArchitectureSpec] = (),
        iterations: Optional[int] = None,
    ) -> int:
        """Batch-warm the artifact store for ``kernels`` (one fetch per stage).

        Returns the number of artifacts pulled into the store's memory
        layer; purely in-memory stores return 0 (there is nothing slower
        than memory to fetch from).
        """
        return self.store.prefetch(self.stage_keys(kernels, targets, iterations))

    # ------------------------------------------------------------------
    # Stage 4: rearrange
    # ------------------------------------------------------------------
    def rearrange_artifact(
        self,
        kernel: Kernel,
        target: ArchitectureSpec,
        iterations: Optional[int] = None,
    ) -> Artifact:
        """Rearrange the base schedule for ``target`` (RS/RP rules).

        The artifact bundles the rearranged schedule with the cycle
        summary (actual and stall-free lengths), matching the seed
        mapper's ``rearrange_schedule`` + ``evaluate_rearrangement`` pair
        while running the rearrangement twice instead of three times.
        """
        if target.is_base:
            raise MappingError("the rearrange stage applies to non-base design points only")
        dfg_art = self.dfg_artifact(kernel, iterations)
        schedule_key = self._base_schedule_key(dfg_art.key)
        key = stage_key(
            "rearrange",
            schedule=schedule_key,
            dfg=dfg_art.key,
            architecture=architecture_fingerprint(target),
        )

        def compute() -> RearrangedSchedule:
            base_schedule = self.base_schedule_artifact(kernel, iterations).value
            actual = rearrange_schedule(base_schedule, dfg_art.value, target)
            stall_free = rearrange_schedule(
                base_schedule, dfg_art.value, target, unlimited_shared=True
            )
            summary = RearrangementResult(
                kernel=base_schedule.kernel_name,
                architecture=target.name,
                base_cycles=base_schedule.length,
                stall_free_cycles=stall_free.length,
                cycles=actual.length,
            )
            return RearrangedSchedule(schedule=actual, summary=summary)

        artifact = self._memoise("rearrange", key, compute)
        rearranged: RearrangedSchedule = artifact.value
        if rearranged.summary.architecture != target.name:
            # The store keys by structure, not by name; rebind the schedule
            # and restamp the summary so results carry the caller's
            # design-point name (the stored object stays untouched for
            # consumers using the original name).
            artifact.value = RearrangedSchedule(
                schedule=_rebind_schedule(rearranged.schedule, target),
                summary=replace(rearranged.summary, architecture=target.name),
            )
        return artifact

    # ------------------------------------------------------------------
    # Stage 5: generate_context
    # ------------------------------------------------------------------
    def context_artifact(
        self,
        kernel: Kernel,
        target: Optional[ArchitectureSpec] = None,
        iterations: Optional[int] = None,
    ) -> Artifact:
        """Generate the configuration context of ``kernel`` on ``target``."""
        target = target or self.base
        dfg_art = self.dfg_artifact(kernel, iterations)
        schedule_key = self._base_schedule_key(dfg_art.key)
        if target.is_base:
            upstream_key = schedule_key
        else:
            upstream_key = stage_key(
                "rearrange",
                schedule=schedule_key,
                dfg=dfg_art.key,
                architecture=architecture_fingerprint(target),
            )
        key = stage_key("generate_context", schedule=upstream_key, dfg=dfg_art.key)

        def compute() -> ConfigurationContext:
            if target.is_base:
                schedule = self.base_schedule_artifact(kernel, iterations).value
            else:
                schedule = self.rearrange_artifact(kernel, target, iterations).value.schedule
            return generate_context(schedule, dfg_art.value)

        artifact = self._memoise("generate_context", key, compute)
        expected_name = f"{kernel.name}@{target.name}"
        if artifact.value.name != expected_name:
            # Same structural-alias situation as in rearrange_artifact: the
            # stored context carries the name of whichever spec computed it.
            artifact.value = artifact.value.renamed(expected_name)
        return artifact

    # ------------------------------------------------------------------
    # End-to-end run
    # ------------------------------------------------------------------
    def run(
        self,
        kernel: Kernel,
        architecture: Optional[ArchitectureSpec] = None,
        iterations: Optional[int] = None,
    ) -> MappingResult:
        """Map ``kernel`` onto ``architecture`` through the staged flow.

        Produces a :class:`MappingResult` bit-identical to the seed
        mapper's ``map_kernel`` for the same inputs, with every stage
        served from the artifact store when warm.
        """
        target = architecture or self.base
        if target.array.rows != self.base.array.rows or target.array.cols != self.base.array.cols:
            raise MappingError(
                "the target architecture must have the same array dimensions as the base"
            )
        dfg = self.dfg_artifact(kernel, iterations).value
        base_schedule = self.base_schedule_artifact(kernel, iterations).value
        if target.is_base:
            schedule = base_schedule
            summary = RearrangementResult(
                kernel=kernel.name,
                architecture=target.name,
                base_cycles=base_schedule.length,
                stall_free_cycles=base_schedule.length,
                cycles=base_schedule.length,
            )
        else:
            rearranged: RearrangedSchedule = self.rearrange_artifact(
                kernel, target, iterations
            ).value
            schedule = rearranged.schedule
            summary = rearranged.summary
        context = (
            self.context_artifact(kernel, target, iterations).value
            if self.generate_contexts
            else None
        )
        return MappingResult(
            kernel=kernel.name,
            architecture=target,
            dfg=dfg,
            base_schedule=base_schedule,
            schedule=schedule,
            cycles=summary.cycles,
            stall_cycles=summary.stall_cycles,
            base_cycles=summary.base_cycles,
            context=context,
        )
