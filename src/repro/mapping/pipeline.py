"""Staged mapping pipeline, executed as a declarative flow graph.

The seed's :class:`~repro.mapping.mapper.RSPMapper` bundled the paper's
Figure-7 mapping flow into one monolithic call; this module makes the
stages explicit and independently runnable::

    build_dfg -> base_schedule -> extract_profile        (upper half)
                       \\-> rearrange -> generate_context (lower half)

Since the flow-graph refactor the stages are :class:`repro.flowgraph.Node`
definitions (:mod:`repro.flowgraph.mapping`) executed by the
:class:`repro.flowgraph.Flow` runtime; :class:`MappingPipeline` is the
canonical facade over the default five-node flow and accepts custom flow
configs (skip-rearrange routing, raced mapper variants) through its
``flow`` parameter.  The execution discipline is unchanged and the
produced artifacts are byte-identical to the pre-flow pipeline.

Every stage consumes and produces :class:`~repro.flowgraph.stats.Artifact`
values whose identity is a SHA-256 *input* hash (:func:`stage_key`, built
on the same hashing convention as the evaluation engine's job keys): the
hash of a stage's inputs is the hash of the upstream artifact keys plus
the stage's own parameters, so the whole chain is derivable from the
kernel DFG fingerprint and the architecture fingerprints alone — without
doing any mapping work.  That is what lets a warm
:class:`~repro.engine.artifacts.ArtifactStore` serve base schedules,
profiles, rearranged schedules and configuration contexts across
processes and campaigns while the only recomputed step is the cheap DFG
construction that *defines* the fingerprint.

Kernels carry Python callables, so the kernel itself cannot be content
hashed; the built DFG can (:func:`dfg_fingerprint` digests
:meth:`repro.ir.dfg.DFG.to_dict`).  The ``build_dfg`` stage is therefore
memoised in memory only and marked non-persistent: its output hash seeds
every downstream key, which also makes the store self-validating — a
changed kernel body changes the DFG, the fingerprint and every key.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.arch.config_cache import ConfigurationContext
from repro.arch.template import ArchitectureSpec, base_architecture
from repro.core.stalls import ScheduleProfile
from repro.errors import MappingError
from repro.flowgraph import stats as _flowstats
from repro.flowgraph.core import Flow, FlowContext
from repro.ir.dfg import DFG
from repro.ir.loops import Kernel
from repro.mapping.fingerprints import (
    architecture_fingerprint,
    dfg_fingerprint,
    stage_key,
)
from repro.mapping.rearrange import RearrangedSchedule, rebind_schedule
from repro.mapping.schedule import Schedule

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.engine.artifacts import ArtifactStore
    from repro.flowgraph.config import ConfigSource
    from repro.flowgraph.stats import Artifact

#: Compatibility alias for the pre-flow private helper name.
_rebind_schedule = rebind_schedule


# ----------------------------------------------------------------------
# Stage declarations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageSpec:
    """Declaration of one pipeline stage: its artifact interface.

    Since the flow-graph refactor this is a descriptive summary of the
    canonical flow's nodes (the executable definitions live in
    :mod:`repro.flowgraph.mapping`); it remains the documented contract
    of the five-stage pipeline.

    Attributes
    ----------
    name:
        Stage name; also the artifact namespace in the store.
    inputs:
        Names of the upstream artifacts (or raw inputs) the stage consumes.
    output:
        Name of the artifact the stage produces.
    persistent:
        Whether the stage's output is written to the artifact store.  The
        ``build_dfg`` stage is memoised in memory only: its output hash is
        what keys every downstream artifact, so it must be recomputed to
        validate the chain (and is cheap enough that this never matters).
    """

    name: str
    inputs: Tuple[str, ...]
    output: str
    persistent: bool = True


#: The five stages of the mapping pipeline, in dataflow order.
PIPELINE_STAGES: Tuple[StageSpec, ...] = (
    StageSpec("build_dfg", inputs=("kernel",), output="dfg", persistent=False),
    StageSpec("base_schedule", inputs=("dfg", "base_architecture"), output="schedule"),
    StageSpec("extract_profile", inputs=("schedule", "dfg"), output="profile"),
    StageSpec("rearrange", inputs=("schedule", "dfg", "target_architecture"), output="rearranged"),
    StageSpec("generate_context", inputs=("rearranged", "dfg"), output="context"),
)

#: Stage names in dataflow order (report/table ordering).
STAGE_NAMES: Tuple[str, ...] = tuple(stage.name for stage in PIPELINE_STAGES)

#: Stage declarations by name.
STAGES_BY_NAME: Dict[str, StageSpec] = {stage.name: stage for stage in PIPELINE_STAGES}


# ----------------------------------------------------------------------
# Moved names: deprecation shims
# ----------------------------------------------------------------------
#: Accounting types that moved to :mod:`repro.flowgraph.stats` in the
#: flow-graph refactor.  Importing them from here still works but warns.
_MOVED_TO_FLOWGRAPH_STATS = (
    "Artifact",
    "PipelineStats",
    "StageTiming",
    "stage_timings_as_dict",
)


def __getattr__(name: str) -> Any:
    if name in _MOVED_TO_FLOWGRAPH_STATS:
        warnings.warn(
            f"repro.mapping.pipeline.{name} moved to repro.flowgraph.stats; "
            f"import it from repro.flowgraph (or the repro package root) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_flowstats, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# ----------------------------------------------------------------------
# Mapping result (moved here from mapper.py; re-exported there)
# ----------------------------------------------------------------------
@dataclass
class MappingResult:
    """Everything produced by mapping one kernel onto one design point."""

    kernel: str
    architecture: ArchitectureSpec
    dfg: DFG
    base_schedule: Schedule
    schedule: Schedule
    cycles: int
    stall_cycles: int
    base_cycles: int
    context: Optional[ConfigurationContext] = None

    @property
    def max_multiplications_per_cycle(self) -> int:
        """Peak multiplications executing in one cycle (paper Table 3 metric)."""
        return self.base_schedule.max_multiplications_per_cycle()

    @property
    def cycle_overhead_vs_base(self) -> int:
        """Extra cycles relative to the base architecture mapping."""
        return self.cycles - self.base_cycles


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------
class MappingPipeline:
    """Runs the mapping flow against an artifact store.

    Parameters
    ----------
    base:
        The reference base architecture; must be a base design (the paper
        derives every RS/RP/RSP schedule from the base mapping).
    store:
        Artifact store memoising stage outputs; an in-memory store is
        created when omitted (the seed's within-run caching behaviour).
        Pass a store rooted at the engine's cache directory — or a path,
        opened with ``store_shards`` shards — to share artifacts across
        processes and campaigns.
    generate_contexts:
        Whether :meth:`run` produces configuration contexts.
    store_shards:
        Shard count used when ``store`` is given as a path (see
        :class:`~repro.engine.artifacts.ArtifactStore`).
    flow:
        The flow to execute: ``None`` for the canonical five-node flow, a
        pre-built :class:`~repro.flowgraph.core.Flow`, or a flow config
        (dict or JSON path, see :mod:`repro.flowgraph.config`) rewiring
        the registered mapping nodes — e.g. skipping ``rearrange`` for
        balanced profiles or racing ``rearrange`` against ``remap``.
    """

    def __init__(
        self,
        base: Optional[ArchitectureSpec] = None,
        store: Optional[Union["ArtifactStore", str, Path]] = None,
        generate_contexts: bool = False,
        store_shards: int = 1,
        flow: Union[Flow, "ConfigSource", None] = None,
    ) -> None:
        self.base = base or base_architecture()
        if not self.base.is_base:
            raise MappingError("the reference architecture of the pipeline must be a base design")
        if store is None or isinstance(store, (str, Path)):
            # Imported here (not at module level) to keep repro.mapping
            # importable without triggering repro.engine's package import,
            # which itself imports repro.mapping.
            from repro.engine.artifacts import ArtifactStore

            store = ArtifactStore(store, shards=store_shards)
        self.store = store
        self.generate_contexts = generate_contexts
        self.stats = _flowstats.PipelineStats()
        #: Optional unified observer (:mod:`repro.observers`) receiving a
        #: :class:`~repro.flowgraph.core.NodeEvent` per materialised node.
        self.observer: Any = None
        self._base_fingerprint = architecture_fingerprint(self.base)
        self._dfg_memo: Dict[str, "Artifact"] = {}
        if isinstance(flow, Flow):
            self.flow = flow
        else:
            # Imported lazily: repro.flowgraph.mapping imports the leaf
            # modules of repro.mapping, so a module-level import here
            # would be circular.
            from repro.flowgraph.mapping import build_mapping_flow

            self.flow = build_mapping_flow(self, flow)

    # ------------------------------------------------------------------
    # Flow plumbing
    # ------------------------------------------------------------------
    def _flow_context(
        self,
        kernel: Kernel,
        target: ArchitectureSpec,
        iterations: Optional[int] = None,
    ) -> FlowContext:
        """A fresh execution context seeded with this call's inputs.

        Seed architectures are pre-keyed with their structural
        fingerprints so node key derivations never re-hash them.
        """
        values: Dict[str, Any] = {
            "kernel": kernel,
            "base_architecture": self.base,
            "target_architecture": target,
        }
        if iterations is not None:
            values["iterations"] = iterations
        keys = {
            "base_architecture": self._base_fingerprint,
            "target_architecture": (
                self._base_fingerprint
                if target is self.base
                else architecture_fingerprint(target)
            ),
        }
        return FlowContext(values, keys)

    def _resolve(
        self,
        output: str,
        kernel: Kernel,
        target: ArchitectureSpec,
        iterations: Optional[int] = None,
    ) -> "Artifact":
        return self.flow.resolve(
            output,
            context=self._flow_context(kernel, target, iterations),
            store=self.store,
            stats=self.stats,
            observer=self.observer,
        )

    def describe_flow(self) -> Dict[str, Any]:
        """JSON-friendly description of the executing flow (for reports)."""
        return {
            "name": self.flow.name,
            "edges": list(self.flow.edge_graph.expressions),
            "nodes": [node.name for node in self.flow.nodes],
        }

    # ------------------------------------------------------------------
    # Stage 1: build_dfg
    # ------------------------------------------------------------------
    def dfg_artifact(self, kernel: Kernel, iterations: Optional[int] = None) -> "Artifact":
        """Materialise (and memoise) the unrolled DFG of ``kernel``.

        The artifact key is the *content* fingerprint of the built DFG,
        which seeds every downstream stage key.  Kernel bodies are Python
        callables and cannot be hashed, so this stage always runs at least
        once per process and is never persisted.  (This is the canonical
        flow's ``build_dfg`` resolver.)
        """
        memo_key = f"{kernel.name}@{iterations or kernel.iterations}"
        if memo_key in self._dfg_memo:
            artifact = self._dfg_memo[memo_key]
            self.stats.record("build_dfg", hit=True, seconds=0.0)
            return artifact
        started = time.perf_counter()
        dfg = kernel.build(iterations)
        artifact = _flowstats.Artifact(
            stage="build_dfg",
            key=dfg_fingerprint(dfg),
            value=dfg,
            seconds=time.perf_counter() - started,
        )
        self._dfg_memo[memo_key] = artifact
        self.stats.record("build_dfg", hit=False, seconds=artifact.seconds)
        return artifact

    # ------------------------------------------------------------------
    # Stage 2: base_schedule
    # ------------------------------------------------------------------
    def base_schedule_artifact(self, kernel: Kernel, iterations: Optional[int] = None) -> "Artifact":
        """Schedule ``kernel`` on the base architecture (loop pipelining)."""
        return self._resolve("schedule", kernel, self.base, iterations)

    # ------------------------------------------------------------------
    # Stage 3: extract_profile
    # ------------------------------------------------------------------
    def profile_artifact(self, kernel: Kernel, iterations: Optional[int] = None) -> "Artifact":
        """Extract the stall-estimation profile of the base schedule.

        On a warm store this never materialises the schedule: the profile
        key is derived from the schedule *key*, not its value (the flow
        runtime resolves keys without fetching values).
        """
        return self._resolve("profile", kernel, self.base, iterations)

    def profiles_for(
        self, kernels: Sequence[Kernel], iterations: Optional[int] = None
    ) -> Dict[str, ScheduleProfile]:
        """Profiles of a kernel set, keyed by kernel name (store-backed)."""
        return {
            kernel.name: self.profile_artifact(kernel, iterations).value for kernel in kernels
        }

    # ------------------------------------------------------------------
    # Stage-key enumeration (prefetch planning)
    # ------------------------------------------------------------------
    def stage_keys(
        self,
        kernels: Sequence[Kernel],
        targets: Sequence[ArchitectureSpec] = (),
        iterations: Optional[int] = None,
    ) -> Dict[str, List[str]]:
        """Every persistent stage key these kernels would touch — without
        executing any stage.

        The whole key chain is derivable from the DFG fingerprint and the
        architecture fingerprints alone (that is the point of input-hash
        keying), so the only work done here is the cheap, memoised DFG
        construction.  This is what lets a prefetcher warm the artifact
        store for a suite *while the previous suite is still exploring*:
        one batched fetch per stage instead of one blocking lookup per
        kernel inside the mapping call.

        Works for any flow: node names are the key buckets, every
        candidate of a raced group is enumerated, and keys downstream of
        a race stop at the raced output (the winner is run-time data).
        """
        flow = self.flow
        keys: Dict[str, List[str]] = {}
        if "profile" in flow.producers:
            for name in flow.dependencies(("profile",)):
                node = flow.by_name[name]
                if node.persistent and not node.virtual:
                    keys[name] = []

        def absorb(per_call: Dict[str, str]) -> None:
            for name, key in per_call.items():
                node = flow.by_name[name]
                if not node.persistent or node.virtual:
                    continue
                bucket = keys.setdefault(name, [])
                if key not in bucket:
                    bucket.append(key)

        profile_outputs = tuple(
            output for output in ("profile",) if output in flow.producers
        )
        target_wanted: Tuple[str, ...] = ("rearranged",)
        if self.generate_contexts:
            target_wanted += ("context",)
        target_outputs = tuple(
            output for output in target_wanted if output in flow.producers
        )
        for kernel in kernels:
            if profile_outputs:
                absorb(
                    flow.keys_for(
                        context=self._flow_context(kernel, self.base, iterations),
                        outputs=profile_outputs,
                        store=self.store,
                        stats=self.stats,
                    )
                )
            for target in targets:
                if target_outputs:
                    absorb(
                        flow.keys_for(
                            context=self._flow_context(kernel, target, iterations),
                            outputs=target_outputs,
                            store=self.store,
                            stats=self.stats,
                        )
                    )
        return keys

    def prefetch_stages(
        self,
        kernels: Sequence[Kernel],
        targets: Sequence[ArchitectureSpec] = (),
        iterations: Optional[int] = None,
    ) -> int:
        """Batch-warm the artifact store for ``kernels`` (one fetch per stage).

        Returns the number of artifacts pulled into the store's memory
        layer; purely in-memory stores return 0 (there is nothing slower
        than memory to fetch from).
        """
        return self.store.prefetch(self.stage_keys(kernels, targets, iterations))

    # ------------------------------------------------------------------
    # Stage 4: rearrange
    # ------------------------------------------------------------------
    def rearrange_artifact(
        self,
        kernel: Kernel,
        target: ArchitectureSpec,
        iterations: Optional[int] = None,
    ) -> "Artifact":
        """Rearrange the base schedule for ``target`` (RS/RP rules).

        The artifact bundles the rearranged schedule with the cycle
        summary (actual and stall-free lengths), matching the seed
        mapper's ``rearrange_schedule`` + ``evaluate_rearrangement`` pair
        while running the rearrangement twice instead of three times.
        With a custom flow, the returned artifact is whatever branch the
        flow routed (or raced) the ``rearranged`` output through.
        """
        if target.is_base:
            raise MappingError("the rearrange stage applies to non-base design points only")
        return self._resolve("rearranged", kernel, target, iterations)

    # ------------------------------------------------------------------
    # Stage 5: generate_context
    # ------------------------------------------------------------------
    def context_artifact(
        self,
        kernel: Kernel,
        target: Optional[ArchitectureSpec] = None,
        iterations: Optional[int] = None,
    ) -> "Artifact":
        """Generate the configuration context of ``kernel`` on ``target``."""
        return self._resolve("context", kernel, target or self.base, iterations)

    # ------------------------------------------------------------------
    # End-to-end run
    # ------------------------------------------------------------------
    def run(
        self,
        kernel: Kernel,
        architecture: Optional[ArchitectureSpec] = None,
        iterations: Optional[int] = None,
    ) -> MappingResult:
        """Map ``kernel`` onto ``architecture`` through the flow.

        Produces a :class:`MappingResult` bit-identical to the seed
        mapper's ``map_kernel`` for the same inputs, with every stage
        served from the artifact store when warm.
        """
        target = architecture or self.base
        if target.array.rows != self.base.array.rows or target.array.cols != self.base.array.cols:
            raise MappingError(
                "the target architecture must have the same array dimensions as the base"
            )
        outputs: Tuple[str, ...] = ("dfg", "schedule", "rearranged")
        if self.generate_contexts:
            outputs += ("context",)
        ctx = self.flow.run(
            context=self._flow_context(kernel, target, iterations),
            outputs=outputs,
            store=self.store,
            stats=self.stats,
            observer=self.observer,
        )
        rearranged: RearrangedSchedule = ctx["rearranged"]
        summary = rearranged.summary
        return MappingResult(
            kernel=kernel.name,
            architecture=target,
            dfg=ctx["dfg"],
            base_schedule=ctx["schedule"],
            schedule=rearranged.schedule,
            cycles=summary.cycles,
            stall_cycles=summary.stall_cycles,
            base_cycles=summary.base_cycles,
            context=ctx["context"] if self.generate_contexts else None,
        )
