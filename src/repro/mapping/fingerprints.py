"""Content fingerprints that seed every mapping artifact key.

Leaf module (imports nothing from the rest of :mod:`repro.mapping`) so
both the legacy pipeline facade and the flow-graph node definitions in
:mod:`repro.flowgraph.mapping` can share one set of formulas.  Changing
any of these invalidates every persisted artifact store.
"""

from __future__ import annotations

from repro.arch.template import ArchitectureSpec
from repro.flowgraph.core import stage_key
from repro.ir.dfg import DFG
from repro.utils.serialization import content_hash

__all__ = ["architecture_fingerprint", "dfg_fingerprint", "stage_key"]


def dfg_fingerprint(dfg: DFG) -> str:
    """SHA-256 digest of a DFG's full content (operations and edges)."""
    return content_hash(dfg.to_dict())


def architecture_fingerprint(spec: ArchitectureSpec) -> str:
    """SHA-256 digest of an architecture's *structure*.

    The human-readable name is excluded on purpose: ``RSP#2`` and the
    exploration grid's ``rsp(shr=2,shc=0,stages=2)`` describe the same
    design point and must map to the same artifacts.
    """
    return content_hash(
        {
            "array": spec.array,
            "sharing": spec.sharing,
            "pipelining": spec.pipelining,
            "shared_resource": spec.shared_resource,
        }
    )
