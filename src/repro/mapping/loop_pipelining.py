"""Loop-pipelining mapper (the base scheduling step of the RSP flow).

The paper assumes loop-pipelining execution in the style of Lee, Choi and
Dutt's CGRA mapping work [7][8]: the iterations of a kernel loop are
distributed over the columns of the array and their operations execute in a
software-pipelined fashion, so heterogeneous operations of different
iterations run simultaneously (the property that makes resource sharing and
pipelining attractive in the first place).

This module implements that mapping as a resource-constrained list
scheduler:

* every operation occupies one PE for its full latency,
* every row sustains at most ``read_buses`` loads and ``write_buses``
  stores per cycle (the row data buses of paper Figure 1),
* on sharing architectures every multiplication must acquire an issue slot
  of a reachable shared multiplier (one new issue per multiplier per
  cycle),
* multiplications take :attr:`ArchitectureSpec.multiplier_latency` cycles
  (1 when combinational, the pipeline depth when pipelined),
* operations prefer the column ``iteration mod columns`` (which yields the
  staggered column pattern of paper Figure 2) and may spill to neighbouring
  columns when their preferred column is full.

Ready operations compete in (iteration, criticality) order, matching the
paper's rule that shared resources are granted in loop-iteration order.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.arch.template import ArchitectureSpec
from repro.errors import SchedulingError
from repro.ir.dfg import DFG, Operation, OpType
from repro.mapping.placement import ResourceTracker, column_preference
from repro.mapping.schedule import Schedule, ScheduledOperation

#: Operation types that never occupy a PE slot (resolved at configuration time).
_UNSCHEDULED_OPTYPES = (OpType.CONST, OpType.NOP)


class LoopPipeliningScheduler:
    """Resource-constrained list scheduler for one architecture design point."""

    def __init__(self, architecture: ArchitectureSpec, max_cycles: Optional[int] = None) -> None:
        self.architecture = architecture
        self.max_cycles = max_cycles

    # ------------------------------------------------------------------
    # Latency model
    # ------------------------------------------------------------------
    def latency_of(self, operation: Operation) -> int:
        """Cycles from issue until the operation's result is available."""
        if operation.is_multiplication:
            return self.architecture.multiplier_latency
        return 1

    def occupancy_of(self, operation: Operation) -> int:
        """Cycles the issuing PE stays busy with ``operation``.

        A multiplication sent to a *shared* multiplier only occupies its PE
        for the issue cycle (the operands are latched by the bus switch and
        the remaining stages run in the shared unit); every other operation
        holds its PE until the result is available.
        """
        if operation.is_multiplication and self.architecture.uses_sharing:
            return 1
        return self.latency_of(operation)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, dfg: DFG, kernel_name: Optional[str] = None) -> Schedule:
        """Map ``dfg`` onto the architecture and return the schedule."""
        name = kernel_name or dfg.name
        result = Schedule(self.architecture, kernel_name=name)
        schedulable = [
            op for op in dfg.operations() if op.optype not in _UNSCHEDULED_OPTYPES
        ]
        if not schedulable:
            return result

        priorities = self._downstream_priorities(dfg)
        pending_preds: Dict[str, int] = {}
        earliest: Dict[str, int] = {}
        for op in schedulable:
            real_preds = [
                pred
                for pred in dfg.predecessors(op.name)
                if dfg.operation(pred).optype not in _UNSCHEDULED_OPTYPES
            ]
            pending_preds[op.name] = len(real_preds)
            earliest[op.name] = 0

        ready: Set[str] = {
            op.name for op in schedulable if pending_preds[op.name] == 0
        }
        unscheduled = {op.name for op in schedulable}
        tracker = ResourceTracker(self.architecture)
        placements: Dict[str, Tuple[int, int]] = {}

        limit = self.max_cycles or (10 * len(schedulable) + 1000)
        cycle = 0
        while unscheduled:
            if cycle > limit:
                raise SchedulingError(
                    f"kernel {name!r} did not finish scheduling within {limit} cycles "
                    f"on architecture {self.architecture.name!r}"
                )
            candidates = sorted(
                (op_name for op_name in ready if earliest[op_name] <= cycle),
                key=lambda op_name: (
                    dfg.operation(op_name).iteration,
                    -priorities[op_name],
                    op_name,
                ),
            )
            for op_name in candidates:
                operation = dfg.operation(op_name)
                latency = self.latency_of(operation)
                occupancy = self.occupancy_of(operation)
                placement = self._find_placement(
                    operation, cycle, occupancy, tracker, dfg, placements
                )
                if placement is None:
                    continue
                row, col, shared_unit = placement
                tracker.claim(operation, cycle, row, col, occupancy, shared_unit)
                result.add(
                    ScheduledOperation(
                        operation=operation,
                        cycle=cycle,
                        row=row,
                        col=col,
                        latency=latency,
                        occupancy=occupancy,
                        shared_unit=shared_unit,
                    )
                )
                placements[op_name] = (row, col)
                ready.discard(op_name)
                unscheduled.discard(op_name)
                finish = cycle + latency
                for successor in dfg.successors(op_name):
                    successor_op = dfg.operation(successor)
                    if successor_op.optype in _UNSCHEDULED_OPTYPES:
                        continue
                    earliest[successor] = max(earliest[successor], finish)
                    pending_preds[successor] -= 1
                    if pending_preds[successor] == 0:
                        ready.add(successor)
            cycle += 1
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _downstream_priorities(self, dfg: DFG) -> Dict[str, int]:
        """Longest downstream dependence chain of every operation (in cycles)."""
        priorities: Dict[str, int] = {}
        for op_name in reversed(dfg.topological_order()):
            operation = dfg.operation(op_name)
            latency = self.latency_of(operation) if operation.optype not in _UNSCHEDULED_OPTYPES else 0
            downstream = 0
            for successor in dfg.successors(op_name):
                downstream = max(downstream, priorities[successor])
            priorities[op_name] = latency + downstream
        return priorities

    def _find_placement(
        self,
        operation: Operation,
        cycle: int,
        duration: int,
        tracker: ResourceTracker,
        dfg: DFG,
        placements: Dict[str, Tuple[int, int]],
    ) -> Optional[Tuple[int, int, Optional[Tuple[str, int, int]]]]:
        """Pick a PE (and shared unit) for ``operation`` at ``cycle``.

        Columns are visited in preference order (the iteration's column
        first); within a column, rows already holding the operation's
        predecessors are preferred so operands stay local.
        """
        spec = self.architecture.array
        preferred_rows = [
            placements[pred][0]
            for pred in dfg.predecessors(operation.name)
            if pred in placements
        ]
        row_order = list(dict.fromkeys(preferred_rows)) + [
            row for row in range(spec.rows) if row not in preferred_rows
        ]
        if operation.is_multiplication:
            # Spread concurrent multiplications over the rows so the per-row
            # demand on row-shared multipliers stays balanced; ties fall back
            # to the operand-locality order computed above.
            rank = {row: index for index, row in enumerate(row_order)}
            row_order = sorted(
                row_order,
                key=lambda row: (tracker.multiplications_in_row(cycle, row), rank[row]),
            )
        for col in column_preference(operation.iteration, spec.cols):
            for row in row_order:
                feasible, shared_unit = tracker.placement_feasible(
                    operation, cycle, row, col, duration
                )
                if feasible:
                    return row, col, shared_unit
        return None
