"""Resource tracking used by the scheduler and the RSP rearrangement.

The tracker answers two questions for every candidate (operation, cycle,
PE) triple:

* is the PE free for the operation's whole latency, does the row still have
  a free read/write bus slot, and — for multiplications on sharing
  architectures — is there a reachable shared multiplier with a free issue
  slot in that cycle?
* once the answer is yes, record the claims so later decisions see them.

The same tracker is used by the base mapper (:mod:`repro.mapping.loop_pipelining`)
and by the context rearrangement (:mod:`repro.mapping.rearrange`), which is
what keeps the two paths consistent.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.arch.array import SharedUnitId
from repro.arch.template import ArchitectureSpec
from repro.errors import PlacementError
from repro.ir.dfg import Operation, OpType


class ResourceTracker:
    """Tracks PE, bus and shared-multiplier usage per cycle.

    Parameters
    ----------
    architecture:
        The design point whose constraints are enforced.
    unlimited_shared:
        When True the shared-multiplier issue constraint is lifted (used to
        compute the stall-free reference length for stall accounting).
    """

    def __init__(self, architecture: ArchitectureSpec, unlimited_shared: bool = False) -> None:
        self.architecture = architecture
        self.unlimited_shared = unlimited_shared
        self._pe_busy: Dict[Tuple[int, int, int], str] = {}
        self._loads: Dict[Tuple[int, int], int] = defaultdict(int)
        self._stores: Dict[Tuple[int, int], int] = defaultdict(int)
        self._unit_issues: Dict[Tuple[SharedUnitId, int], str] = {}
        self._row_mults: Dict[Tuple[int, int], int] = defaultdict(int)
        # Counter used to mint pseudo-unit ordinals in unlimited mode.
        self._unlimited_counter: Dict[Tuple[int, int], int] = defaultdict(int)

    # ------------------------------------------------------------------
    # Processing elements
    # ------------------------------------------------------------------
    def pe_free(self, cycle: int, row: int, col: int, duration: int) -> bool:
        """True when PE (row, col) is idle for ``duration`` cycles from ``cycle``."""
        return all(
            (offset_cycle, row, col) not in self._pe_busy
            for offset_cycle in range(cycle, cycle + duration)
        )

    def claim_pe(self, cycle: int, row: int, col: int, duration: int, name: str) -> None:
        """Mark PE (row, col) busy for ``duration`` cycles starting at ``cycle``."""
        for offset_cycle in range(cycle, cycle + duration):
            key = (offset_cycle, row, col)
            if key in self._pe_busy:
                raise PlacementError(
                    f"PE ({row},{col}) already busy at cycle {offset_cycle} "
                    f"with {self._pe_busy[key]!r}"
                )
            self._pe_busy[key] = name

    # ------------------------------------------------------------------
    # Row data buses
    # ------------------------------------------------------------------
    def bus_free(self, cycle: int, row: int, optype: OpType) -> bool:
        """True when row ``row`` still has a bus slot for ``optype`` at ``cycle``."""
        buses = self.architecture.array.row_buses
        if optype is OpType.LOAD:
            return self._loads[(cycle, row)] < buses.read_buses
        if optype is OpType.STORE:
            return self._stores[(cycle, row)] < buses.write_buses
        return True

    def claim_bus(self, cycle: int, row: int, optype: OpType) -> None:
        """Consume one bus slot for ``optype`` on row ``row`` at ``cycle``."""
        if optype is OpType.LOAD:
            self._loads[(cycle, row)] += 1
        elif optype is OpType.STORE:
            self._stores[(cycle, row)] += 1

    # ------------------------------------------------------------------
    # Shared multipliers
    # ------------------------------------------------------------------
    def reachable_units(self, row: int, col: int) -> List[SharedUnitId]:
        """Shared-unit identifiers reachable from PE (row, col)."""
        sharing = self.architecture.sharing
        units: List[SharedUnitId] = [
            ("row", row, ordinal) for ordinal in range(sharing.rows_shared)
        ]
        units.extend(("col", col, ordinal) for ordinal in range(sharing.cols_shared))
        return units

    def available_shared_unit(self, cycle: int, row: int, col: int) -> Optional[SharedUnitId]:
        """A reachable shared unit with a free issue slot at ``cycle``, if any.

        Row units are preferred over column units, and lower ordinals over
        higher ones, so the assignment is deterministic.
        """
        if self.unlimited_shared:
            ordinal = self._unlimited_counter[(cycle, row)]
            self._unlimited_counter[(cycle, row)] += 1
            return ("row", row, ordinal)
        for unit in self.reachable_units(row, col):
            if (unit, cycle) not in self._unit_issues:
                return unit
        return None

    def claim_shared_unit(self, unit: SharedUnitId, cycle: int, name: str) -> None:
        """Record that ``unit`` accepts the multiplication ``name`` at ``cycle``."""
        if self.unlimited_shared:
            return
        key = (unit, cycle)
        if key in self._unit_issues:
            raise PlacementError(
                f"shared unit {unit} already issues {self._unit_issues[key]!r} at cycle {cycle}"
            )
        self._unit_issues[key] = name

    # ------------------------------------------------------------------
    # Combined feasibility check
    # ------------------------------------------------------------------
    def placement_feasible(
        self,
        operation: Operation,
        cycle: int,
        row: int,
        col: int,
        duration: int,
    ) -> Tuple[bool, Optional[SharedUnitId]]:
        """Check whether ``operation`` can issue at (cycle, row, col).

        Returns ``(feasible, shared_unit)`` where ``shared_unit`` is the
        unit to bind a multiplication to (``None`` for non-multiplications
        or architectures without sharing).
        """
        if not self.pe_free(cycle, row, col, duration):
            return False, None
        if operation.is_memory and not self.bus_free(cycle, row, operation.optype):
            return False, None
        if operation.is_multiplication and self.architecture.uses_sharing:
            unit = self.available_shared_unit(cycle, row, col)
            if unit is None:
                return False, None
            return True, unit
        return True, None

    def claim(
        self,
        operation: Operation,
        cycle: int,
        row: int,
        col: int,
        duration: int,
        shared_unit: Optional[SharedUnitId],
    ) -> None:
        """Record all resource claims of a placed operation."""
        self.claim_pe(cycle, row, col, duration, operation.name)
        if operation.is_memory:
            self.claim_bus(cycle, row, operation.optype)
        if operation.is_multiplication:
            self._row_mults[(cycle, row)] += 1
            if shared_unit is not None:
                self.claim_shared_unit(shared_unit, cycle, operation.name)

    def multiplications_in_row(self, cycle: int, row: int) -> int:
        """Multiplications already issued by the PEs of ``row`` at ``cycle``.

        The base mapper uses this to spread concurrent multiplications over
        the rows of the array, which keeps the per-row demand on row-shared
        multipliers balanced (the situation the RS designs are built for).
        """
        return self._row_mults[(cycle, row)]


def column_preference(iteration: int, cols: int) -> List[int]:
    """Column visit order for an operation of the given loop iteration.

    The preferred column is ``iteration mod cols`` (this produces the
    staggered column pattern of paper Figure 2); the remaining columns are
    visited by increasing ring distance so spill placements stay close.
    """
    if cols <= 0:
        raise PlacementError("column count must be positive")
    preferred = iteration % cols
    order = [preferred]
    for distance in range(1, cols):
        order.append((preferred + distance) % cols)
    return order
