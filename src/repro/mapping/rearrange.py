"""Configuration-context rearrangement for RS, RP and RSP (paper Section 4).

The paper derives the schedule of a sharing/pipelining design point from the
*initial* configuration contexts of the base architecture by rearranging
them according to two rules:

1. **RS rule** — shared resources are assigned to PEs in the order of loop
   iteration; when shared resources are lacking in a cycle, the operations
   of later loop iterations are moved to the next cycle (an *RS stall*).
2. **RP rule** — operations on pipelined resources take multiple cycles, so
   operations that depend on their results are stalled together (an *RP
   stall*); consecutive pipelined operations overlap, removing the shared
   cycles.

:func:`rearrange_schedule` implements both rules by re-timing the base
schedule while keeping every operation on the PE the base mapping chose:
operations are visited in (base cycle, iteration) order and placed at the
earliest cycle — no earlier than their base cycle — at which their operands
are available and their PE, row bus and (for multiplications) a reachable
shared multiplier issue slot are free.  Keeping the base placement is what
distinguishes rearrangement from a full re-mapping and is exactly why the
stall counts of the paper's Tables 4/5 are an upper bound on what a smarter
mapper could achieve; :func:`remap_schedule` provides that smarter full
re-mapping for comparison (used by the ablation benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch.template import ArchitectureSpec
from repro.errors import MappingError, SchedulingError
from repro.ir.dfg import DFG, OpType
from repro.mapping.loop_pipelining import LoopPipeliningScheduler
from repro.mapping.placement import ResourceTracker
from repro.mapping.schedule import Schedule, ScheduledOperation

#: Operation types that never occupy a PE slot.
_UNSCHEDULED_OPTYPES = (OpType.CONST, OpType.NOP)

#: Safety bound on how far a single operation may be pushed past its
#: dependence-feasible cycle while searching for free resources.
_MAX_PUSH = 100000


def rearrange_schedule(
    base_schedule: Schedule,
    dfg: DFG,
    target: ArchitectureSpec,
    unlimited_shared: bool = False,
) -> Schedule:
    """Apply the RS/RP rearrangement rules to a base-architecture schedule.

    Parameters
    ----------
    base_schedule:
        The initial configuration context (schedule on the base
        architecture) produced by :class:`LoopPipeliningScheduler`.
    dfg:
        The kernel dataflow graph the base schedule was produced from.
    target:
        The RS/RP/RSP design point to rearrange for.
    unlimited_shared:
        When True the shared-multiplier capacity constraint is lifted; the
        resulting length is the stall-free reference used to count RS
        stalls (RP stretching is still applied).

    Returns
    -------
    Schedule
        The rearranged schedule on ``target``.
    """
    scheduler = LoopPipeliningScheduler(target)
    tracker = ResourceTracker(target, unlimited_shared=unlimited_shared)
    rearranged = Schedule(target, kernel_name=base_schedule.kernel_name)

    ordered = sorted(
        base_schedule.operations(),
        key=lambda entry: (entry.cycle, entry.operation.iteration, entry.col, entry.row),
    )
    finish_cycle: Dict[str, int] = {}
    for entry in ordered:
        operation = entry.operation
        latency = scheduler.latency_of(operation)
        occupancy = scheduler.occupancy_of(operation)
        earliest = entry.cycle
        for predecessor in dfg.predecessors(operation.name):
            predecessor_op = dfg.operation(predecessor)
            if predecessor_op.optype in _UNSCHEDULED_OPTYPES:
                continue
            if predecessor not in finish_cycle:
                raise MappingError(
                    f"operation {operation.name!r} depends on {predecessor!r} which is "
                    f"not part of the base schedule"
                )
            earliest = max(earliest, finish_cycle[predecessor])
        cycle = earliest
        placed = False
        while cycle <= earliest + _MAX_PUSH:
            feasible, shared_unit = tracker.placement_feasible(
                operation, cycle, entry.row, entry.col, occupancy
            )
            if feasible:
                tracker.claim(operation, cycle, entry.row, entry.col, occupancy, shared_unit)
                rearranged.add(
                    ScheduledOperation(
                        operation=operation,
                        cycle=cycle,
                        row=entry.row,
                        col=entry.col,
                        latency=latency,
                        occupancy=occupancy,
                        shared_unit=shared_unit,
                    )
                )
                finish_cycle[operation.name] = cycle + latency
                placed = True
                break
            cycle += 1
        if not placed:
            raise SchedulingError(
                f"operation {operation.name!r} could not be rearranged onto "
                f"architecture {target.name!r}"
            )
    return rearranged


def rebind_schedule(schedule: Schedule, target: ArchitectureSpec) -> Schedule:
    """Copy of ``schedule`` bound to the structurally identical ``target``.

    The immutable entries are shared; only the schedule shell is rebuilt so
    ``schedule.architecture`` reports the caller's spec (figures and the
    simulator read the name from there).
    """
    rebound = Schedule(target, kernel_name=schedule.kernel_name)
    for entry in schedule.operations():
        rebound.add(entry)
    return rebound


def remap_schedule(dfg: DFG, target: ArchitectureSpec, kernel_name: Optional[str] = None) -> Schedule:
    """Fully re-map ``dfg`` onto ``target`` (free placement, not rearrangement).

    This is the "smarter mapper" alternative to the paper's rearrangement:
    placements are chosen with knowledge of the sharing topology, so fewer
    stalls may be needed.  Used by the ablation benchmarks to quantify how
    pessimistic the rearrangement rules are.
    """
    return LoopPipeliningScheduler(target).schedule(dfg, kernel_name=kernel_name)


@dataclass(frozen=True)
class RearrangementResult:
    """Outcome of rearranging one kernel for one design point."""

    kernel: str
    architecture: str
    base_cycles: int
    stall_free_cycles: int
    cycles: int

    @property
    def stall_cycles(self) -> int:
        """Stalls caused by a shortage of shared resources.

        The stall-free reference applies the same pipelining stretch but
        assumes unlimited shared multipliers, so the difference isolates
        the "stall number of resource lack" reported in paper Tables 4/5.
        """
        return max(0, self.cycles - self.stall_free_cycles)

    @property
    def pipeline_overhead_cycles(self) -> int:
        """Extra cycles caused purely by the multi-cycle pipelined multiplier."""
        return max(0, self.stall_free_cycles - self.base_cycles)


@dataclass
class RearrangedSchedule:
    """Output of the ``rearrange`` stage: the schedule plus its cycle summary."""

    schedule: Schedule
    summary: RearrangementResult


def evaluate_rearrangement(
    base_schedule: Schedule,
    dfg: DFG,
    target: ArchitectureSpec,
) -> RearrangementResult:
    """Rearrange ``base_schedule`` for ``target`` and summarise the cycle counts."""
    if target.is_base:
        length = base_schedule.length
        return RearrangementResult(
            kernel=base_schedule.kernel_name,
            architecture=target.name,
            base_cycles=length,
            stall_free_cycles=length,
            cycles=length,
        )
    actual = rearrange_schedule(base_schedule, dfg, target, unlimited_shared=False)
    stall_free = rearrange_schedule(base_schedule, dfg, target, unlimited_shared=True)
    return RearrangementResult(
        kernel=base_schedule.kernel_name,
        architecture=target.name,
        base_cycles=base_schedule.length,
        stall_free_cycles=stall_free.length,
        cycles=actual.length,
    )
