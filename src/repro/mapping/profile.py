"""Extraction of :class:`~repro.core.stalls.ScheduleProfile` objects.

The design-space exploration estimates stalls on a lightweight summary of
the base-architecture schedule rather than on the schedule itself (so the
exploration core stays independent of the mapper).  This module builds that
summary: one record per multiplication issue, annotated with whether its
result is consumed in the very next cycle of the base schedule (the
condition under which pipelining the multiplier forces an RP stall).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.stalls import CriticalOpIssue, ScheduleProfile
from repro.ir.dfg import DFG, OpType
from repro.mapping.schedule import Schedule


def extract_profile(schedule: Schedule, dfg: DFG) -> ScheduleProfile:
    """Summarise a base-architecture ``schedule`` for stall estimation."""
    issues: List[CriticalOpIssue] = []
    # One dictionary lookup per successor instead of a membership test plus
    # a guarded accessor call — this loop runs for every successor of every
    # multiplication and dominates profile extraction on large kernels.
    scheduled = schedule.entries_by_name()
    for entry in schedule.operations():
        if not entry.is_multiplication:
            continue
        has_immediate_dependent = False
        for successor in dfg.successors(entry.name):
            successor_op = dfg.operation(successor)
            if successor_op.optype in (OpType.CONST, OpType.NOP):
                continue
            successor_entry = scheduled.get(successor)
            if successor_entry is not None and successor_entry.cycle == entry.finish_cycle:
                has_immediate_dependent = True
                break
        issues.append(
            CriticalOpIssue(
                cycle=entry.cycle,
                row=entry.row,
                col=entry.col,
                iteration=entry.operation.iteration,
                has_immediate_dependent=has_immediate_dependent,
            )
        )
    return ScheduleProfile(
        kernel=schedule.kernel_name,
        length=schedule.length,
        critical_issues=tuple(issues),
        rows=schedule.architecture.array.rows,
        cols=schedule.architecture.array.cols,
    )


def extract_profiles(schedules: Dict[str, Schedule], dfgs: Dict[str, DFG]) -> Dict[str, ScheduleProfile]:
    """Profile a set of base schedules keyed by kernel name."""
    profiles: Dict[str, ScheduleProfile] = {}
    for kernel_name, schedule in schedules.items():
        profiles[kernel_name] = extract_profile(schedule, dfgs[kernel_name])
    return profiles
