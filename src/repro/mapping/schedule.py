"""Schedule data structure produced by the loop-pipelining mapper.

A :class:`Schedule` assigns every compute/memory operation of a kernel DFG
an issue cycle, a processing element and (for shared-resource operations) a
shared unit.  Constants are *not* scheduled — they live in the
configuration cache and are available from cycle 0 — which mirrors the
paper's treatment of the constant ``C`` in the matrix-multiplication
example.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.arch.array import SharedUnitId
from repro.arch.template import ArchitectureSpec
from repro.errors import SchedulingError
from repro.ir.dfg import DFG, Operation, OpType


@dataclass(frozen=True)
class ScheduledOperation:
    """One operation with its cycle, PE placement and resource binding.

    Attributes
    ----------
    operation:
        The DFG operation being scheduled.
    cycle:
        Issue cycle (0-based).
    row / col:
        Processing element executing (or issuing) the operation.
    latency:
        Cycles until the result is available (1 for primitive operations,
        the pipeline depth for multiplications on pipelined multipliers).
    occupancy:
        Cycles the issuing PE stays busy.  ``None`` means "same as the
        latency"; multiplications routed to a *shared* multiplier occupy
        their PE only for the issue cycle — the remaining stages run inside
        the shared unit while the PE is free to issue other operations.
    shared_unit:
        Identifier of the shared resource used, when the operation executes
        on one.
    """

    operation: Operation
    cycle: int
    row: int
    col: int
    latency: int = 1
    occupancy: Optional[int] = None
    shared_unit: Optional[SharedUnitId] = None

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise SchedulingError(f"operation {self.operation.name!r} scheduled at negative cycle")
        if self.latency < 1:
            raise SchedulingError(f"operation {self.operation.name!r} must have latency >= 1")
        if self.occupancy is not None and self.occupancy < 1:
            raise SchedulingError(f"operation {self.operation.name!r} must occupy its PE >= 1 cycle")
        if self.row < 0 or self.col < 0:
            raise SchedulingError(f"operation {self.operation.name!r} has no PE placement")

    @property
    def pe_occupancy(self) -> int:
        """Cycles the issuing PE is busy (defaults to the result latency)."""
        return self.occupancy if self.occupancy is not None else self.latency

    @property
    def name(self) -> str:
        return self.operation.name

    @property
    def finish_cycle(self) -> int:
        """First cycle in which the result can be consumed."""
        return self.cycle + self.latency

    @property
    def position(self) -> Tuple[int, int]:
        return (self.row, self.col)

    @property
    def is_multiplication(self) -> bool:
        return self.operation.is_multiplication

    @property
    def is_memory(self) -> bool:
        return self.operation.is_memory


class Schedule:
    """A complete mapping of one kernel onto one architecture."""

    def __init__(self, architecture: ArchitectureSpec, kernel_name: str = "kernel") -> None:
        self.architecture = architecture
        self.kernel_name = kernel_name
        self._by_name: Dict[str, ScheduledOperation] = {}
        self._by_cycle: Dict[int, List[ScheduledOperation]] = defaultdict(list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, scheduled: ScheduledOperation) -> None:
        """Add one scheduled operation; operation names must be unique."""
        if scheduled.name in self._by_name:
            raise SchedulingError(f"operation {scheduled.name!r} scheduled twice")
        if not self.architecture.array.contains(scheduled.row, scheduled.col):
            raise SchedulingError(
                f"operation {scheduled.name!r} placed outside the "
                f"{self.architecture.array.rows}x{self.architecture.array.cols} array"
            )
        self._by_name[scheduled.name] = scheduled
        self._by_cycle[scheduled.cycle].append(scheduled)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> ScheduledOperation:
        """The scheduled operation with the given DFG name."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise SchedulingError(f"operation {name!r} is not in the schedule") from exc

    def entries_by_name(self) -> Dict[str, ScheduledOperation]:
        """The name → scheduled-operation mapping (treat as read-only).

        Hot loops (e.g. profile extraction) use this to replace repeated
        ``name in schedule`` + ``schedule.get(name)`` pairs with a single
        dictionary lookup.
        """
        return self._by_name

    def operations(self) -> List[ScheduledOperation]:
        """All scheduled operations ordered by (cycle, col, row)."""
        return sorted(
            self._by_name.values(), key=lambda entry: (entry.cycle, entry.col, entry.row)
        )

    def operations_at(self, cycle: int) -> List[ScheduledOperation]:
        """Operations issued at ``cycle``."""
        return sorted(self._by_cycle.get(cycle, []), key=lambda entry: (entry.col, entry.row))

    @property
    def length(self) -> int:
        """Total execution cycles: the latest result-available cycle."""
        if not self._by_name:
            return 0
        return max(entry.finish_cycle for entry in self._by_name.values())

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def multiplications_at(self, cycle: int) -> List[ScheduledOperation]:
        """Multiplication operations *issued* at ``cycle``."""
        return [entry for entry in self.operations_at(cycle) if entry.is_multiplication]

    def multiplications_in_flight_at(self, cycle: int) -> List[ScheduledOperation]:
        """Multiplications occupying a multiplier during ``cycle`` (any stage)."""
        return [
            entry
            for entry in self._by_name.values()
            if entry.is_multiplication and entry.cycle <= cycle < entry.finish_cycle
        ]

    def max_multiplications_per_cycle(self) -> int:
        """Maximum multiplications executing simultaneously in any cycle.

        This is the "Mult No" column of paper Table 3: the maximum number
        of multiplications mapped to the array in a cycle.
        """
        peak = 0
        for cycle in range(self.length):
            peak = max(peak, len(self.multiplications_in_flight_at(cycle)))
        return peak

    def max_multiplication_issues_per_cycle(self) -> int:
        """Maximum multiplications *issued* in any single cycle."""
        peak = 0
        for cycle, entries in self._by_cycle.items():
            peak = max(peak, sum(1 for entry in entries if entry.is_multiplication))
        return peak

    def pe_utilisation(self) -> float:
        """Fraction of PE-cycles that issue an operation."""
        total = self.length * self.architecture.array.num_pes
        if total == 0:
            return 0.0
        return len(self._by_name) / total

    def busy_pes_at(self, cycle: int) -> List[Tuple[int, int]]:
        """PE positions occupied during ``cycle`` (issue through release)."""
        return [
            entry.position
            for entry in self._by_name.values()
            if entry.cycle <= cycle < entry.cycle + entry.pe_occupancy
        ]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, dfg: DFG) -> None:
        """Check the schedule against the DFG and architecture constraints.

        Raises :class:`SchedulingError` on the first violation found:
        missing operations, dependence violations, PE double-booking, bus
        over-subscription or shared-unit conflicts.
        """
        spec = self.architecture
        for op in dfg.operations():
            if op.optype in (OpType.CONST, OpType.NOP):
                continue
            if op.name not in self._by_name:
                raise SchedulingError(
                    f"operation {op.name!r} of kernel {dfg.name!r} is not scheduled"
                )
        # Dependences.
        for producer, consumer in dfg.edges():
            producer_op = dfg.operation(producer)
            if producer_op.optype in (OpType.CONST, OpType.NOP):
                continue
            consumer_op = dfg.operation(consumer)
            if consumer_op.optype in (OpType.CONST, OpType.NOP):
                continue
            produced = self.get(producer)
            consumed = self.get(consumer)
            if consumed.cycle < produced.finish_cycle:
                raise SchedulingError(
                    f"dependence violated: {consumer!r} issues at cycle {consumed.cycle} "
                    f"but {producer!r} finishes at cycle {produced.finish_cycle}"
                )
        # PE occupancy (a PE is busy from issue until it releases the slot).
        occupancy: Dict[Tuple[int, int, int], str] = {}
        for entry in self._by_name.values():
            for cycle in range(entry.cycle, entry.cycle + entry.pe_occupancy):
                key = (cycle, entry.row, entry.col)
                if key in occupancy:
                    raise SchedulingError(
                        f"PE ({entry.row},{entry.col}) double-booked at cycle {cycle}: "
                        f"{occupancy[key]!r} and {entry.name!r}"
                    )
                occupancy[key] = entry.name
        # Row data buses.
        loads: Dict[Tuple[int, int], int] = defaultdict(int)
        stores: Dict[Tuple[int, int], int] = defaultdict(int)
        for entry in self._by_name.values():
            if entry.operation.optype is OpType.LOAD:
                loads[(entry.cycle, entry.row)] += 1
            elif entry.operation.optype is OpType.STORE:
                stores[(entry.cycle, entry.row)] += 1
        for (cycle, row), count in loads.items():
            if count > spec.array.row_buses.read_buses:
                raise SchedulingError(
                    f"row {row} issues {count} loads at cycle {cycle}, but only "
                    f"{spec.array.row_buses.read_buses} read buses exist"
                )
        for (cycle, row), count in stores.items():
            if count > spec.array.row_buses.write_buses:
                raise SchedulingError(
                    f"row {row} issues {count} stores at cycle {cycle}, but only "
                    f"{spec.array.row_buses.write_buses} write buses exist"
                )
        # Shared-resource issue conflicts and reachability.
        if spec.uses_sharing:
            unit_issues: Dict[Tuple[SharedUnitId, int], str] = {}
            for entry in self._by_name.values():
                if not entry.is_multiplication:
                    continue
                if entry.shared_unit is None:
                    raise SchedulingError(
                        f"multiplication {entry.name!r} has no shared multiplier on "
                        f"architecture {spec.name!r}"
                    )
                scope, line, _ = entry.shared_unit
                if scope == "row" and line != entry.row:
                    raise SchedulingError(
                        f"multiplication {entry.name!r} on PE row {entry.row} uses a "
                        f"multiplier of row {line}"
                    )
                if scope == "col" and line != entry.col:
                    raise SchedulingError(
                        f"multiplication {entry.name!r} on PE column {entry.col} uses a "
                        f"multiplier of column {line}"
                    )
                key = (entry.shared_unit, entry.cycle)
                if key in unit_issues:
                    raise SchedulingError(
                        f"shared multiplier {entry.shared_unit} receives two issues at "
                        f"cycle {entry.cycle}: {unit_issues[key]!r} and {entry.name!r}"
                    )
                unit_issues[key] = entry.name

    def __repr__(self) -> str:
        return (
            f"Schedule(kernel={self.kernel_name!r}, architecture={self.architecture.name!r}, "
            f"operations={len(self)}, cycles={self.length})"
        )
