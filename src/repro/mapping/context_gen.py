"""Configuration-context generation from a schedule.

The RSP flow's final artefact is the *RSP configuration context*: for every
PE and every cycle, the control word that selects the operation, the
operand sources, the constant and — on sharing architectures — the shared
multiplier the bus switch must route to (paper Figure 4: "the dynamic
mapping of a multiplier to a PE is determined in compile time and the
information is annotated to the configuration instructions").

:func:`generate_context` turns a :class:`~repro.mapping.schedule.Schedule`
into a :class:`~repro.arch.config_cache.ConfigurationContext`, which the
functional simulator (:mod:`repro.sim`) can execute.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.arch.config_cache import ConfigurationContext, ConfigurationWord
from repro.errors import ConfigurationError
from repro.ir.dfg import DFG, OpType
from repro.mapping.schedule import Schedule


def generate_context(schedule: Schedule, dfg: DFG) -> ConfigurationContext:
    """Generate the configuration context of ``schedule``.

    Multi-cycle (pipelined) operations occupy only their issue cycle in the
    context: the subsequent stages run inside the shared multiplier, whose
    progress needs no further configuration words.
    """
    spec = schedule.architecture
    context = ConfigurationContext(
        rows=spec.array.rows, cols=spec.array.cols, name=f"{schedule.kernel_name}@{spec.name}"
    )
    constants = _constant_values(dfg)
    for entry in schedule.operations():
        operation = entry.operation
        operand_names = tuple(dfg.predecessors(operation.name))
        immediate = operation.immediate
        if immediate is None:
            immediate = _single_constant_operand(operand_names, constants)
        word = ConfigurationWord(
            opcode=operation.optype,
            operation_name=operation.name,
            operands=tuple(
                name for name in operand_names if name not in constants
            ),
            uses_shared_resource=entry.shared_unit is not None,
            shared_resource_id=entry.shared_unit,
            immediate=immediate,
            array=operation.array,
            index=operation.index,
        )
        context.set_word(entry.cycle, entry.row, entry.col, word)
    return context


def _constant_values(dfg: DFG) -> Dict[str, int]:
    """Immediate values of all CONST operations in ``dfg``."""
    constants: Dict[str, int] = {}
    for operation in dfg.operations_of_type(OpType.CONST):
        if operation.immediate is None:
            raise ConfigurationError(f"constant {operation.name!r} has no immediate value")
        constants[operation.name] = operation.immediate
    return constants


def _single_constant_operand(
    operand_names: Tuple[str, ...], constants: Dict[str, int]
) -> Optional[int]:
    """The immediate to embed when exactly one operand is a constant."""
    constant_operands = [name for name in operand_names if name in constants]
    if not constant_operands:
        return None
    return constants[constant_operands[0]]


def context_statistics(context: ConfigurationContext) -> Dict[str, float]:
    """Summary statistics of a configuration context (for reports/tests)."""
    return {
        "cycles": float(context.num_cycles),
        "active_words": float(context.active_word_count()),
        "utilisation": context.utilisation(),
        "storage_bits": float(context.storage_bits()),
    }
