"""Loop-pipelining mapper, RS/RP rearrangement and context generation."""

from repro.mapping.schedule import Schedule, ScheduledOperation
from repro.mapping.placement import ResourceTracker, column_preference
from repro.mapping.loop_pipelining import LoopPipeliningScheduler
from repro.mapping.rearrange import (
    RearrangedSchedule,
    RearrangementResult,
    evaluate_rearrangement,
    rearrange_schedule,
    rebind_schedule,
    remap_schedule,
)
from repro.mapping.context_gen import context_statistics, generate_context
from repro.mapping.profile import extract_profile, extract_profiles
from repro.mapping.fingerprints import (
    architecture_fingerprint,
    dfg_fingerprint,
    stage_key,
)
# The per-stage accounting types live in repro.flowgraph.stats since the
# flow-graph refactor; this package keeps exporting them (the deprecated
# path is repro.mapping.pipeline.<name>, which warns).
from repro.flowgraph.stats import Artifact, PipelineStats, StageTiming
from repro.mapping.pipeline import (
    PIPELINE_STAGES,
    STAGE_NAMES,
    MappingPipeline,
    MappingResult,
    StageSpec,
)
from repro.mapping.mapper import RSPMapper

__all__ = [
    "PIPELINE_STAGES",
    "STAGE_NAMES",
    "Artifact",
    "MappingPipeline",
    "PipelineStats",
    "RearrangedSchedule",
    "StageSpec",
    "StageTiming",
    "architecture_fingerprint",
    "dfg_fingerprint",
    "stage_key",
    "Schedule",
    "ScheduledOperation",
    "ResourceTracker",
    "column_preference",
    "LoopPipeliningScheduler",
    "RearrangementResult",
    "evaluate_rearrangement",
    "rearrange_schedule",
    "remap_schedule",
    "context_statistics",
    "generate_context",
    "extract_profile",
    "extract_profiles",
    "MappingResult",
    "RSPMapper",
]
