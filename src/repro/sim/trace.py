"""Execution trace of the cycle-accurate simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.ir.dfg import OpType


@dataclass(frozen=True)
class TraceEvent:
    """One operation completion observed during simulation."""

    cycle: int
    row: int
    col: int
    operation: str
    optype: OpType
    value: Optional[int]
    shared_unit: Optional[Tuple[str, int, int]] = None

    @property
    def pe_name(self) -> str:
        return f"PE[{self.row}][{self.col}]"


class ExecutionTrace:
    """Ordered list of :class:`TraceEvent` with small query helpers."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        """Append one event."""
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self) -> List[TraceEvent]:
        """All events in issue order (cycle, column, row)."""
        return sorted(self._events, key=lambda event: (event.cycle, event.col, event.row))

    def events_at(self, cycle: int) -> List[TraceEvent]:
        """Events issued at ``cycle``."""
        return [event for event in self.events() if event.cycle == cycle]

    def events_of_type(self, optype: OpType) -> List[TraceEvent]:
        """Events of a given operation type."""
        return [event for event in self.events() if event.optype is optype]

    def shared_unit_usage(self) -> Dict[Tuple[str, int, int], int]:
        """How many operations each shared unit executed."""
        usage: Dict[Tuple[str, int, int], int] = {}
        for event in self._events:
            if event.shared_unit is not None:
                usage[event.shared_unit] = usage.get(event.shared_unit, 0) + 1
        return usage

    def busiest_cycle(self) -> Tuple[int, int]:
        """(cycle, operation count) of the cycle with the most activity."""
        per_cycle: Dict[int, int] = {}
        for event in self._events:
            per_cycle[event.cycle] = per_cycle.get(event.cycle, 0) + 1
        if not per_cycle:
            return (0, 0)
        cycle = max(per_cycle, key=lambda key: per_cycle[key])
        return cycle, per_cycle[cycle]

    def format(self, max_events: Optional[int] = None) -> str:
        """Readable multi-line rendering of the trace."""
        lines = []
        for event in self.events()[: max_events if max_events is not None else len(self._events)]:
            value_text = "-" if event.value is None else str(event.value)
            shared_text = f" via {event.shared_unit}" if event.shared_unit else ""
            lines.append(
                f"cycle {event.cycle:4d}  {event.pe_name:10s} "
                f"{event.optype.value:6s} {event.operation:24s} = {value_text}{shared_text}"
            )
        return "\n".join(lines)
