"""Cycle-accurate functional simulation of a mapped kernel.

The simulator executes a :class:`~repro.mapping.schedule.Schedule` against
a :class:`~repro.sim.memory.DataMemory`, producing the value of every
operation, the final memory contents and an execution trace.  It enforces
the timing semantics of the schedule while executing: an operation may only
consume operand values whose producers have finished (issue cycle +
latency), so a schedule that violates dependences is caught as a simulation
error rather than silently producing a correct-but-untimed result.

This closes the verification loop that the paper performs in RTL: the
matrix-multiplication example mapped by the loop-pipelining scheduler must
actually compute ``C * X @ Y``, which the integration tests check against
NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arch.template import ArchitectureSpec
from repro.errors import SimulationError
from repro.ir.dfg import DFG, OpType
from repro.mapping.schedule import Schedule
from repro.sim.functional_units import FunctionalUnitBehaviour
from repro.sim.memory import DataMemory
from repro.sim.trace import ExecutionTrace, TraceEvent


@dataclass
class SimulationResult:
    """Outcome of simulating one mapped kernel."""

    kernel: str
    architecture: str
    cycles: int
    memory: DataMemory
    values: Dict[str, int]
    trace: ExecutionTrace

    def value_of(self, operation_name: str) -> int:
        """The computed value of a named operation."""
        try:
            return self.values[operation_name]
        except KeyError as exc:
            raise SimulationError(f"operation {operation_name!r} produced no value") from exc

    @property
    def executed_operations(self) -> int:
        return len(self.trace)


class ArraySimulator:
    """Executes schedules on the reconfigurable-array model."""

    def __init__(
        self,
        architecture: Optional[ArchitectureSpec] = None,
        behaviour: Optional[FunctionalUnitBehaviour] = None,
    ) -> None:
        self.architecture = architecture
        self.behaviour = behaviour or FunctionalUnitBehaviour()

    def run(
        self,
        schedule: Schedule,
        dfg: DFG,
        memory: Optional[DataMemory] = None,
        validate: bool = True,
    ) -> SimulationResult:
        """Simulate ``schedule`` (produced from ``dfg``) against ``memory``.

        Parameters
        ----------
        schedule:
            The mapped kernel to execute.
        dfg:
            The kernel dataflow graph (provides operand ordering and
            constants).
        memory:
            Initial data memory; a fresh empty memory is used when omitted.
        validate:
            When True the schedule is validated against the DFG and the
            architecture constraints before execution.
        """
        architecture = self.architecture or schedule.architecture
        if validate:
            schedule.validate(dfg)
        data_memory = memory if memory is not None else DataMemory()
        values: Dict[str, int] = {}
        finish_cycle: Dict[str, int] = {}
        trace = ExecutionTrace()

        # Constants are available before execution starts.
        for constant in dfg.operations_of_type(OpType.CONST):
            if constant.immediate is None:
                raise SimulationError(f"constant {constant.name!r} has no immediate value")
            values[constant.name] = self.behaviour.wrap_operand(constant.immediate)
            finish_cycle[constant.name] = 0

        total_cycles = schedule.length
        for cycle in range(total_cycles):
            for entry in schedule.operations_at(cycle):
                operation = entry.operation
                operands = self._operand_values(
                    dfg, operation.name, values, finish_cycle, cycle
                )
                if operation.optype is OpType.LOAD:
                    if operation.array is None:
                        raise SimulationError(f"load {operation.name!r} has no array")
                    result: Optional[int] = data_memory.load(
                        operation.array, operation.index if operation.index is not None else 0
                    )
                elif operation.optype is OpType.STORE:
                    if operation.array is None:
                        raise SimulationError(f"store {operation.name!r} has no array")
                    if len(operands) != 1:
                        raise SimulationError(
                            f"store {operation.name!r} expects exactly one operand value"
                        )
                    data_memory.store(
                        operation.array,
                        operation.index if operation.index is not None else 0,
                        operands[0],
                    )
                    result = None
                else:
                    result = self.behaviour.execute(
                        operation.optype, operands, immediate=operation.immediate
                    )
                if result is not None:
                    values[operation.name] = result
                finish_cycle[operation.name] = entry.finish_cycle
                trace.record(
                    TraceEvent(
                        cycle=cycle,
                        row=entry.row,
                        col=entry.col,
                        operation=operation.name,
                        optype=operation.optype,
                        value=result,
                        shared_unit=entry.shared_unit,
                    )
                )
        return SimulationResult(
            kernel=schedule.kernel_name,
            architecture=architecture.name,
            cycles=total_cycles,
            memory=data_memory,
            values=values,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _operand_values(
        self,
        dfg: DFG,
        operation_name: str,
        values: Dict[str, int],
        finish_cycle: Dict[str, int],
        cycle: int,
    ) -> List[int]:
        """Operand values of ``operation_name`` in port order at ``cycle``."""
        edges = []
        for predecessor in dfg.predecessors(operation_name):
            if dfg.operation(predecessor).optype is OpType.STORE:
                # Memory-ordering edge: enforced by schedule validation, it
                # carries no operand value.
                continue
            port = dfg.graph.edges[predecessor, operation_name].get("port")
            edges.append((port if port is not None else 0, predecessor))
        edges.sort(key=lambda item: item[0])
        operand_values: List[int] = []
        for _, predecessor in edges:
            if predecessor not in values:
                raise SimulationError(
                    f"operation {operation_name!r} consumes {predecessor!r} which has not "
                    f"produced a value"
                )
            if finish_cycle.get(predecessor, 0) > cycle:
                raise SimulationError(
                    f"operation {operation_name!r} at cycle {cycle} consumes {predecessor!r} "
                    f"which only finishes at cycle {finish_cycle[predecessor]}"
                )
            operand_values.append(values[predecessor])
        return operand_values
