"""Data-memory model for the functional simulator.

The paper's base architecture attaches the array to a data memory through
per-row read/write buses.  :class:`DataMemory` models that memory as a set
of named arrays; access counting lets tests verify that the schedule's bus
usage matches the accesses the simulation actually performs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.errors import SimulationError


class DataMemory:
    """Named arrays accessible through the row data buses."""

    def __init__(self, arrays: Optional[Mapping[str, Sequence[int]]] = None,
                 default_value: int = 0, strict: bool = False) -> None:
        """Create a memory pre-loaded with ``arrays``.

        Parameters
        ----------
        arrays:
            Initial contents, mapping array names to value sequences.
        default_value:
            Value returned for elements that were never written.
        strict:
            When True, loading from an array that was never declared raises
            :class:`SimulationError` instead of returning ``default_value``.
        """
        self._storage: Dict[str, Dict[int, int]] = {}
        self.default_value = default_value
        self.strict = strict
        self.load_count = 0
        self.store_count = 0
        for name, values in (arrays or {}).items():
            self.initialise(name, values)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def initialise(self, array: str, values: Sequence[int]) -> None:
        """(Re-)initialise ``array`` with ``values`` starting at index 0."""
        self._storage[array] = {index: int(value) for index, value in enumerate(values)}

    def declare(self, array: str) -> None:
        """Declare an empty array (useful in strict mode)."""
        self._storage.setdefault(array, {})

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------
    def load(self, array: str, index: int) -> int:
        """Read ``array[index]``."""
        self.load_count += 1
        if array not in self._storage:
            if self.strict:
                raise SimulationError(f"load from undeclared array {array!r}")
            return self.default_value
        return self._storage[array].get(index, self.default_value)

    def store(self, array: str, index: int, value: int) -> None:
        """Write ``value`` to ``array[index]``."""
        self.store_count += 1
        self._storage.setdefault(array, {})[index] = int(value)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def arrays(self) -> List[str]:
        """Names of all arrays present in the memory."""
        return sorted(self._storage)

    def as_list(self, array: str, length: Optional[int] = None) -> List[int]:
        """Contents of ``array`` as a dense list of ``length`` elements."""
        if array not in self._storage:
            if self.strict:
                raise SimulationError(f"unknown array {array!r}")
            return []
        contents = self._storage[array]
        size = length if length is not None else (max(contents) + 1 if contents else 0)
        return [contents.get(index, self.default_value) for index in range(size)]

    def value(self, array: str, index: int) -> int:
        """Read ``array[index]`` without counting it as a bus access."""
        if array not in self._storage:
            if self.strict:
                raise SimulationError(f"unknown array {array!r}")
            return self.default_value
        return self._storage[array].get(index, self.default_value)

    def copy(self) -> "DataMemory":
        """Deep copy of the memory (access counters reset)."""
        clone = DataMemory(default_value=self.default_value, strict=self.strict)
        for array, contents in self._storage.items():
            clone._storage[array] = dict(contents)
        return clone
