"""Cycle-accurate functional simulator for mapped kernels."""

from repro.sim.functional_units import FunctionalUnitBehaviour
from repro.sim.memory import DataMemory
from repro.sim.simulator import ArraySimulator, SimulationResult
from repro.sim.trace import ExecutionTrace, TraceEvent

__all__ = [
    "FunctionalUnitBehaviour",
    "DataMemory",
    "ArraySimulator",
    "SimulationResult",
    "ExecutionTrace",
    "TraceEvent",
]
