"""Functional-unit behaviour for the cycle-accurate simulator.

The paper's PEs operate on 16-bit data (the base architecture extends the
data bus width to 16 bits); multiplications produce a 2n-bit result that is
returned to the issuing PE.  :class:`FunctionalUnitBehaviour` implements the
arithmetic of every supported operation with configurable word width and
wrap-around, so the functional simulator can execute mapped kernels and the
numerical results can be checked against NumPy reference computations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import SimulationError
from repro.ir.dfg import OpType


@dataclass(frozen=True)
class FunctionalUnitBehaviour:
    """Arithmetic semantics of the PE datapath.

    Attributes
    ----------
    width_bits:
        Operand width.  Results of multiplications are allowed
        ``2 * width_bits`` before wrapping (the 2n-bit product path of
        paper Figure 4).
    wrap:
        When True results wrap to the signed range of their width (models
        the fixed-width hardware); when False arbitrary-precision Python
        integers are kept, which is convenient for checking against exact
        reference results.
    """

    width_bits: int = 16
    wrap: bool = False

    def __post_init__(self) -> None:
        if self.width_bits <= 0:
            raise SimulationError("datapath width must be positive")

    # ------------------------------------------------------------------
    # Wrapping helpers
    # ------------------------------------------------------------------
    def _wrap_to(self, value: int, bits: int) -> int:
        if not self.wrap:
            return value
        modulus = 1 << bits
        value %= modulus
        if value >= modulus // 2:
            value -= modulus
        return value

    def wrap_operand(self, value: int) -> int:
        """Wrap ``value`` to the operand width."""
        return self._wrap_to(value, self.width_bits)

    def wrap_product(self, value: int) -> int:
        """Wrap ``value`` to the double-width product range."""
        return self._wrap_to(value, 2 * self.width_bits)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        optype: OpType,
        operands: Sequence[int],
        immediate: Optional[int] = None,
    ) -> int:
        """Execute one operation and return its result.

        ``operands`` are the dynamic operand values in port order;
        ``immediate`` supplies the constant of shift operations.
        """
        if optype is OpType.MUL:
            self._expect(optype, operands, 2)
            return self.wrap_product(operands[0] * operands[1])
        if optype is OpType.ADD:
            self._expect(optype, operands, 2)
            return self.wrap_operand(operands[0] + operands[1])
        if optype is OpType.SUB:
            self._expect(optype, operands, 2)
            return self.wrap_operand(operands[0] - operands[1])
        if optype is OpType.ABS:
            self._expect(optype, operands, 1)
            return self.wrap_operand(abs(operands[0]))
        if optype is OpType.SHIFT:
            self._expect(optype, operands, 1)
            if immediate is None:
                raise SimulationError("shift operation requires an immediate shift amount")
            if immediate >= 0:
                return self.wrap_operand(operands[0] << immediate)
            return self.wrap_operand(operands[0] >> (-immediate))
        if optype is OpType.AND:
            self._expect(optype, operands, 2)
            return self.wrap_operand(operands[0] & operands[1])
        if optype is OpType.OR:
            self._expect(optype, operands, 2)
            return self.wrap_operand(operands[0] | operands[1])
        if optype is OpType.XOR:
            self._expect(optype, operands, 2)
            return self.wrap_operand(operands[0] ^ operands[1])
        if optype is OpType.MIN:
            self._expect(optype, operands, 2)
            return self.wrap_operand(min(operands))
        if optype is OpType.MAX:
            self._expect(optype, operands, 2)
            return self.wrap_operand(max(operands))
        if optype is OpType.MOV:
            self._expect(optype, operands, 1)
            return self.wrap_operand(operands[0])
        if optype is OpType.CONST:
            if immediate is None:
                raise SimulationError("constant operation requires an immediate value")
            return self.wrap_operand(immediate)
        raise SimulationError(f"operation type {optype.value!r} is not executable on a functional unit")

    @staticmethod
    def _expect(optype: OpType, operands: Sequence[int], count: int) -> None:
        if len(operands) != count:
            raise SimulationError(
                f"{optype.value} expects {count} operand(s), got {len(operands)}"
            )
