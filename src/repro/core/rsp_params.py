"""RSP template parameters and design-space enumeration.

Paper Section 4 lists the principal parameters of the RSP template:

* the types of shared functional resources,
* the types of pipelined resources,
* the number of pipeline stages of the pipelined resources,
* the number of rows of the shared resources (``shr``),
* the number of columns of the shared resources (``shc``).

:class:`RSPParameters` captures one assignment of those parameters and
converts it into a concrete :class:`~repro.arch.template.ArchitectureSpec`;
:func:`enumerate_design_space` generates the candidate set swept by the
design-space exploration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.arch.array import ArraySpec
from repro.arch.template import (
    ArchitectureSpec,
    PipeliningSpec,
    SharingTopology,
    default_array_spec,
)
from repro.errors import ExplorationError


@dataclass(frozen=True)
class RSPParameters:
    """One point of the RSP parameter space.

    Attributes
    ----------
    shared_resources:
        Component names of the shared (area-critical) resources.  Empty
        means no sharing (the base design).
    pipelined_resources:
        Component names of the pipelined (delay-critical) resources.
        Must be a subset of ``shared_resources`` for RSP designs; an empty
        tuple means no pipelining.
    pipeline_stages:
        Number of stages the pipelined resources are split into.
    rows_shared / cols_shared:
        ``shr`` / ``shc`` of paper Eq. 2.
    """

    shared_resources: Tuple[str, ...] = ()
    pipelined_resources: Tuple[str, ...] = ()
    pipeline_stages: int = 1
    rows_shared: int = 0
    cols_shared: int = 0

    def __post_init__(self) -> None:
        if self.pipeline_stages < 1:
            raise ExplorationError("pipeline_stages must be at least 1")
        if self.rows_shared < 0 or self.cols_shared < 0:
            raise ExplorationError("shared-resource counts must be non-negative")
        if self.pipelined_resources and self.pipeline_stages < 2:
            raise ExplorationError(
                "pipelined resources require at least two pipeline stages"
            )
        if self.shared_resources and self.rows_shared == 0 and self.cols_shared == 0:
            raise ExplorationError(
                "shared resources require rows_shared or cols_shared to be positive"
            )
        if not self.shared_resources and (self.rows_shared or self.cols_shared):
            raise ExplorationError(
                "rows_shared/cols_shared given but no shared resource type named"
            )

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    @property
    def uses_sharing(self) -> bool:
        return bool(self.shared_resources) and (self.rows_shared > 0 or self.cols_shared > 0)

    @property
    def uses_pipelining(self) -> bool:
        return bool(self.pipelined_resources) and self.pipeline_stages > 1

    @property
    def kind(self) -> str:
        """``"base"``, ``"rs"``, ``"rp"`` or ``"rsp"``."""
        if self.uses_sharing and self.uses_pipelining:
            return "rsp"
        if self.uses_sharing:
            return "rs"
        if self.uses_pipelining:
            return "rp"
        return "base"

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_architecture(
        self,
        array: Optional[ArraySpec] = None,
        name: Optional[str] = None,
    ) -> ArchitectureSpec:
        """Instantiate the architecture described by these parameters."""
        array_spec = array or default_array_spec()
        stages = self.pipeline_stages if self.uses_pipelining else 1
        shared_resource = self.shared_resources[0] if self.shared_resources else "array_multiplier"
        derived_name = name or self.describe()
        return ArchitectureSpec(
            name=derived_name,
            array=array_spec,
            sharing=SharingTopology(
                rows_shared=self.rows_shared, cols_shared=self.cols_shared
            ),
            pipelining=PipeliningSpec(stages=stages),
            shared_resource=shared_resource,
        )

    def describe(self) -> str:
        """Compact human-readable description, e.g. ``rsp(shr=2,shc=0,stages=2)``."""
        if self.kind == "base":
            return "base"
        return (
            f"{self.kind}(shr={self.rows_shared},shc={self.cols_shared},"
            f"stages={self.pipeline_stages if self.uses_pipelining else 1})"
        )


def base_parameters() -> RSPParameters:
    """Parameters describing the base architecture (no sharing, no pipelining)."""
    return RSPParameters()


def paper_parameters(design: int, pipelined: bool) -> RSPParameters:
    """Parameters of paper design ``RS#design`` / ``RSP#design`` (design in 1..4)."""
    topologies = {1: (1, 0), 2: (2, 0), 3: (2, 1), 4: (2, 2)}
    if design not in topologies:
        raise ExplorationError(f"paper design index must be 1..4, got {design}")
    rows_shared, cols_shared = topologies[design]
    return RSPParameters(
        shared_resources=("array_multiplier",),
        pipelined_resources=("array_multiplier",) if pipelined else (),
        pipeline_stages=2 if pipelined else 1,
        rows_shared=rows_shared,
        cols_shared=cols_shared,
    )


def enumerate_design_space(
    shared_resource: str = "array_multiplier",
    max_rows_shared: int = 2,
    max_cols_shared: int = 2,
    stage_options: Sequence[int] = (1, 2),
    include_base: bool = True,
) -> List[RSPParameters]:
    """Enumerate RSP parameter candidates for exploration.

    The sweep covers every combination of ``shr`` in ``0..max_rows_shared``,
    ``shc`` in ``0..max_cols_shared`` (excluding the all-zero combination,
    which is the base design) and every pipeline-stage option.  Stage counts
    greater than one produce RSP candidates, a stage count of one produces
    RS candidates.
    """
    if max_rows_shared < 0 or max_cols_shared < 0:
        raise ExplorationError("sharing bounds must be non-negative")
    if not stage_options:
        raise ExplorationError("at least one pipeline-stage option is required")
    candidates: List[RSPParameters] = []
    if include_base:
        candidates.append(base_parameters())
    for rows_shared, cols_shared in itertools.product(
        range(max_rows_shared + 1), range(max_cols_shared + 1)
    ):
        if rows_shared == 0 and cols_shared == 0:
            continue
        for stages in sorted(set(stage_options)):
            if stages < 1:
                raise ExplorationError(f"invalid pipeline stage count: {stages}")
            pipelined = stages > 1
            candidates.append(
                RSPParameters(
                    shared_resources=(shared_resource,),
                    pipelined_resources=(shared_resource,) if pipelined else (),
                    pipeline_stages=stages,
                    rows_shared=rows_shared,
                    cols_shared=cols_shared,
                )
            )
    return candidates
