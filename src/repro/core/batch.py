"""Vectorized wave evaluation — the engine's candidate hot path in numpy.

Cold-campaign throughput is bounded by per-candidate Python evaluation:
:meth:`~repro.core.exploration.RSPDesignSpaceExplorer.evaluate` walks the
Eq. 2 cost model, the timing model and the RS/RP stall estimator one
object at a time.  This module evaluates a whole *wave* of candidates as
array operations over a candidate-parameter matrix instead:

* :class:`BatchEvaluator.encode` turns a sequence of
  :class:`~repro.core.rsp_params.RSPParameters` into column arrays
  (``shr``, ``shc``, effective ``stages``, sharing/pipelining masks plus
  per-candidate component lookups);
* :meth:`BatchEvaluator.compute` produces area, critical-path period,
  per-kernel RS/RP stalls, total cycles and total execution time in a
  handful of numpy passes;
* :meth:`BatchEvaluator.feasibility_mask` and
  :meth:`BatchEvaluator.early_reject_mask` vectorize the engine's
  feasibility and dominance pre-filters;
* :meth:`BatchEvaluator.evaluate` materializes
  :class:`~repro.core.exploration.DesignPointEvaluation` objects — for
  the survivors only, when a ``keep`` selection is given.

Two structural facts make this fast without changing any semantics:

1. **Eq. 2 and the timing model are closed-form** in the parameter
   columns, so they vectorize directly.  Every arithmetic operation is
   performed in the same order as the scalar models
   (:mod:`repro.core.cost_model`, :mod:`repro.core.timing_model`), and
   component lookups (including the bus-switch extrapolation beyond the
   calibrated port counts) go through the same
   :class:`~repro.arch.components.ComponentLibrary` calls — IEEE-754
   float64 arithmetic is deterministic, so the results are *bit
   identical* to the scalar path, not merely close.
2. **RS stalls depend only on the ``(rows_shared, cols_shared)`` pair**
   for a given profile — the standard 253-candidate grid has at most 64
   distinct pairs — so each profile keeps a per-capacity stall table:
   the cycle-walk runs once per *distinct capacity*, not per candidate,
   and most capacities are resolved without walking at all (see
   :meth:`_ProfileTable.rs_stalls`).  RP stalls reduce to a per-profile
   ``runs`` constant times a ``(stages - 1)`` column.

The scalar models remain the *oracle*: the property suite
(``tests/properties/test_batch_equivalence.py``) pins ``vectorized ≡
scalar`` over random profiles × random parameter grids.  numpy is an
**optional** dependency — :meth:`BatchEvaluator.available` gates the fast
path, and every consumer (the engine, the CLI, the benchmarks) falls
back to the scalar walk when it is absent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.arch.array import ArraySpec
from repro.core.cost_model import HardwareCostModel
from repro.core.exploration import (
    DesignPointEvaluation,
    ExplorationConstraints,
    RSPDesignSpaceExplorer,
)
from repro.core.rsp_params import RSPParameters
from repro.core.stalls import ScheduleProfile, StallEstimate
from repro.core.timing_model import TimingModel
from repro.errors import ExplorationError

try:  # pragma: no cover - exercised via the no-numpy fallback tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def numpy_available() -> bool:
    """True when numpy imported successfully (module-level, monkeypatchable)."""
    return _np is not None


# ----------------------------------------------------------------------
# Per-profile stall tables
# ----------------------------------------------------------------------
class _ProfileTable:
    """Precomputed stall structure of one :class:`ScheduleProfile`.

    Holds everything the RS/RP estimators derive from the profile alone:

    * the per-cycle critical issues, pre-sorted by the walk's grant key
      ``(iteration, cycle, row, col)``;
    * ``max_row_count`` / ``max_col_count`` — the largest number of
      issues sharing a ``(cycle, row)`` / ``(cycle, col)`` slot, which
      bound the capacities that can ever cause a stall;
    * the RP ``runs`` constant (consecutive dependent-cycle runs);
    * a memo of RS stall counts per ``(rows_shared, cols_shared)`` pair.
    """

    __slots__ = (
        "key",
        "kernel",
        "length",
        "by_cycle",
        "last_cycle",
        "max_row_count",
        "max_col_count",
        "rp_runs",
        "_rs_memo",
    )

    def __init__(self, key: str, profile: ScheduleProfile) -> None:
        self.key = key
        self.kernel = profile.kernel
        self.length = profile.length
        by_cycle: Dict[int, List[Tuple[int, int, int, int]]] = {}
        row_counts: Dict[Tuple[int, int], int] = {}
        col_counts: Dict[Tuple[int, int], int] = {}
        for issue in profile.critical_issues:
            entry = (issue.iteration, issue.cycle, issue.row, issue.col)
            by_cycle.setdefault(issue.cycle, []).append(entry)
            row_key = (issue.cycle, issue.row)
            col_key = (issue.cycle, issue.col)
            row_counts[row_key] = row_counts.get(row_key, 0) + 1
            col_counts[col_key] = col_counts.get(col_key, 0) + 1
        for entries in by_cycle.values():
            entries.sort()
        self.by_cycle = by_cycle
        self.last_cycle = max(by_cycle) if by_cycle else -1
        self.max_row_count = max(row_counts.values()) if row_counts else 0
        self.max_col_count = max(col_counts.values()) if col_counts else 0
        self.rp_runs = self._dependent_runs(profile)
        self._rs_memo: Dict[Tuple[int, int], int] = {}

    @staticmethod
    def _dependent_runs(profile: ScheduleProfile) -> int:
        """Runs of consecutive cycles issuing immediately-consumed results.

        Mirrors :meth:`StallEstimator.estimate_rp_stalls`: RP stalls are
        ``runs * (stages - 1)``, and ``runs`` is a pure profile property.
        """
        cycles = sorted(
            {
                issue.cycle
                for issue in profile.critical_issues
                if issue.has_immediate_dependent
            }
        )
        if not cycles:
            return 0
        runs = 1
        for previous, current in zip(cycles, cycles[1:]):
            if current != previous + 1:
                runs += 1
        return runs

    def rs_stalls(self, rows_capacity: int, cols_capacity: int) -> int:
        """RS stalls for one capacity pair (memoized; walk only when needed).

        Capacities at or above the profile's densest ``(cycle, row)`` /
        ``(cycle, col)`` slot can never overflow: every cycle's fresh
        issues are granted outright, nothing is ever carried, so the walk
        would trivially count zero.  Only the small-capacity corner of
        the grid pays for an actual cycle-walk — and that walk is a merge
        of two pre-sorted lists instead of a per-cycle ``sorted()`` call.
        """
        if not self.by_cycle:
            return 0
        if rows_capacity >= self.max_row_count or cols_capacity >= self.max_col_count:
            return 0
        key = (rows_capacity, cols_capacity)
        stalls = self._rs_memo.get(key)
        if stalls is None:
            stalls = self._walk(rows_capacity, cols_capacity)
            self._rs_memo[key] = stalls
        return stalls

    def _walk(self, rows_capacity: int, cols_capacity: int) -> int:
        """The scalar grant walk of :meth:`StallEstimator.estimate_rs_stalls`.

        Semantically identical to the estimator's loop: per cycle the
        carried backlog and the fresh issues are ordered by ``(iteration,
        cycle, row, col)`` — ``sorted()`` is stable, so carried entries
        precede fresh ones on key ties, which the ``<=`` merge below
        preserves — then row capacity is granted before column capacity
        and overflowing issues carry to the next cycle.  Every cycle past
        the original schedule end costs one stall.
        """
        by_cycle = self.by_cycle
        last_cycle = self.last_cycle
        carried: List[Tuple[int, int, int, int]] = []
        cycle = 0
        extra_cycles = 0
        while cycle <= last_cycle or carried:
            fresh = by_cycle.get(cycle)
            if carried and fresh:
                pending: List[Tuple[int, int, int, int]] = []
                i = j = 0
                left, right = len(carried), len(fresh)
                while i < left and j < right:
                    if carried[i] <= fresh[j]:
                        pending.append(carried[i])
                        i += 1
                    else:
                        pending.append(fresh[j])
                        j += 1
                pending.extend(carried[i:])
                pending.extend(fresh[j:])
            else:
                pending = carried if carried else (fresh or [])
            carried = []
            row_free: Dict[int, int] = {}
            col_free: Dict[int, int] = {}
            for entry in pending:
                row, col = entry[2], entry[3]
                free = row_free.get(row, rows_capacity)
                if free > 0:
                    row_free[row] = free - 1
                    continue
                free = col_free.get(col, cols_capacity)
                if free > 0:
                    col_free[col] = free - 1
                else:
                    carried.append(entry)
            if cycle > last_cycle:
                extra_cycles += 1
            cycle += 1
        return extra_cycles


# ----------------------------------------------------------------------
# Encoded wave columns and computed batch results
# ----------------------------------------------------------------------
@dataclass
class WaveColumns:
    """A wave of candidates as column arrays (one entry per candidate)."""

    parameters: List[RSPParameters]
    #: int64 parameter columns.
    shr: Any
    shc: Any
    #: Effective stage count (``pipeline_stages`` when pipelining is in
    #: use, 1 otherwise — mirroring ``RSPParameters.to_architecture``).
    stages: Any
    #: Boolean masks.
    sharing: Any
    pipelined: Any
    #: Per-candidate component lookups (float64): the shared resource's
    #: area/delay and the port-matched bus switch's area/delay (0 when
    #: the candidate has no switch ports).
    resource_area: Any
    resource_delay: Any
    switch_area: Any
    switch_delay: Any
    #: ``kind`` strings, as classified by :class:`RSPParameters`.
    kind: List[str]
    #: Distinct ``(rows_shared, cols_shared)`` pairs of the sharing
    #: candidates, plus each candidate's index into that pair list
    #: (meaningful only where ``sharing`` is set).
    pairs: List[Tuple[int, int]] = field(default_factory=list)
    pair_index: Any = None

    def __len__(self) -> int:
        return len(self.parameters)


@dataclass
class BatchEvaluation:
    """Vectorized evaluation results for one encoded wave.

    All arrays are indexed by candidate position; ``rs_stalls`` and
    ``rp_stalls`` are ``(kernels, candidates)`` matrices in the
    explorer's profile order.
    """

    columns: WaveColumns
    #: Eq. 2 array area per candidate (float64 slices).
    area_slices: Any
    #: Critical-path period per candidate (float64 ns).
    critical_path_ns: Any
    #: Per-kernel stall matrices (int64).
    rs_stalls: Any
    rp_stalls: Any
    #: Domain totals per candidate.
    total_cycles: Any
    total_stalls: Any
    total_execution_time_ns: Any

    def __len__(self) -> int:
        return len(self.columns)


class BatchEvaluator:
    """Vectorized counterpart of ``RSPDesignSpaceExplorer.evaluate``.

    Construct one per explorer (the engine builds it lazily per run);
    profile tables are computed once and shared by every wave the
    evaluator processes.  Raises :class:`ExplorationError` when numpy is
    unavailable — use :meth:`from_explorer` for a ``None``-returning
    factory, or :meth:`available` to test first.
    """

    def __init__(
        self,
        profiles: Dict[str, ScheduleProfile],
        array: Optional[ArraySpec] = None,
        cost_model: Optional[HardwareCostModel] = None,
        timing_model: Optional[TimingModel] = None,
    ) -> None:
        if _np is None:
            raise ExplorationError(
                "BatchEvaluator requires numpy; install repro[fast] or use the scalar path"
            )
        if not profiles:
            raise ExplorationError("batch evaluation requires at least one kernel profile")
        from repro.arch.template import default_array_spec

        self.array = array or default_array_spec()
        self.cost_model = cost_model or HardwareCostModel()
        self.timing_model = timing_model or TimingModel()
        self.tables: List[_ProfileTable] = [
            _ProfileTable(key, profile) for key, profile in profiles.items()
        ]
        library = self.cost_model.library
        # Scalar constants, computed through the exact scalar-model calls
        # so every float matches the per-candidate path bit for bit.
        self._full_pe_area = self.cost_model.full_pe_area()
        self._register_area = library.pipeline_register.area_slices
        self._pipe_register_delay = self.timing_model.library.pipeline_register.delay_ns
        self._full_pe_path = self.timing_model.full_pe_path_ns()
        self._primitive_path = self.timing_model.primitive_pe_path_ns()
        self._mux_delay = self.timing_model.library.multiplexer.delay_ns
        self._shifter_delay = self.timing_model.library.shifter.delay_ns
        self._margin = self.timing_model.wiring_margin_ns
        self._resource_memo: Dict[str, Tuple[float, float]] = {}
        self._switch_memo: Dict[int, Tuple[float, float]] = {0: (0.0, 0.0)}

    # ------------------------------------------------------------------
    # Availability / construction
    # ------------------------------------------------------------------
    @staticmethod
    def available() -> bool:
        """True when the vectorized fast path can run (numpy importable)."""
        return numpy_available()

    @classmethod
    def from_explorer(
        cls, explorer: RSPDesignSpaceExplorer
    ) -> Optional["BatchEvaluator"]:
        """Build an evaluator matching ``explorer``; ``None`` without numpy."""
        if not cls.available():
            return None
        return cls(
            explorer.profiles,
            array=explorer.array,
            cost_model=explorer.cost_model,
            timing_model=explorer.timing_model,
        )

    # ------------------------------------------------------------------
    # Component lookups (memoized per distinct name / port count)
    # ------------------------------------------------------------------
    def _resource(self, name: str) -> Tuple[float, float]:
        entry = self._resource_memo.get(name)
        if entry is None:
            component = self.cost_model.library.get(name)
            timing = self.timing_model.library.get(name)
            entry = (component.area_slices, timing.delay_ns)
            self._resource_memo[name] = entry
        return entry

    def _switch(self, ports: int) -> Tuple[float, float]:
        entry = self._switch_memo.get(ports)
        if entry is None:
            # The library call covers both the calibrated 1..4-port
            # switches and the linear extrapolation beyond them.
            area = self.cost_model.library.bus_switch(ports).area_slices
            delay = self.timing_model.library.bus_switch(ports).delay_ns
            entry = (area, delay)
            self._switch_memo[ports] = entry
        return entry

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, parameters: Sequence[RSPParameters]) -> WaveColumns:
        """Encode a wave of candidates into column arrays."""
        np = _np
        count = len(parameters)
        shr = np.empty(count, dtype=np.int64)
        shc = np.empty(count, dtype=np.int64)
        stages = np.empty(count, dtype=np.int64)
        sharing = np.empty(count, dtype=bool)
        pipelined = np.empty(count, dtype=bool)
        resource_area = np.empty(count, dtype=np.float64)
        resource_delay = np.empty(count, dtype=np.float64)
        switch_area = np.empty(count, dtype=np.float64)
        switch_delay = np.empty(count, dtype=np.float64)
        kind: List[str] = []
        pairs: List[Tuple[int, int]] = []
        pair_positions: Dict[Tuple[int, int], int] = {}
        pair_index = np.zeros(count, dtype=np.intp)
        for position, candidate in enumerate(parameters):
            uses_sharing = candidate.uses_sharing
            uses_pipelining = candidate.uses_pipelining
            shr[position] = candidate.rows_shared
            shc[position] = candidate.cols_shared
            stages[position] = candidate.pipeline_stages if uses_pipelining else 1
            sharing[position] = uses_sharing
            pipelined[position] = uses_pipelining
            resource_name = (
                candidate.shared_resources[0]
                if candidate.shared_resources
                else "array_multiplier"
            )
            resource_area[position], resource_delay[position] = self._resource(
                resource_name
            )
            ports = candidate.rows_shared + candidate.cols_shared
            switch_area[position], switch_delay[position] = self._switch(ports)
            kind.append(candidate.kind)
            if uses_sharing:
                pair = (candidate.rows_shared, candidate.cols_shared)
                slot = pair_positions.get(pair)
                if slot is None:
                    slot = len(pairs)
                    pair_positions[pair] = slot
                    pairs.append(pair)
                pair_index[position] = slot
        return WaveColumns(
            parameters=list(parameters),
            shr=shr,
            shc=shc,
            stages=stages,
            sharing=sharing,
            pipelined=pipelined,
            resource_area=resource_area,
            resource_delay=resource_delay,
            switch_area=switch_area,
            switch_delay=switch_delay,
            kind=kind,
            pairs=pairs,
            pair_index=pair_index,
        )

    # ------------------------------------------------------------------
    # Vectorized model passes
    # ------------------------------------------------------------------
    def _area_pass(self, columns: WaveColumns) -> Any:
        """Eq. 2 in column arrays, term order matching ``HardwareCostModel``."""
        np = _np
        rows, cols = self.array.rows, self.array.cols
        num_pes = rows * cols
        registers = self._register_area * (columns.stages - 1)
        pe_area = np.where(
            columns.sharing,
            self._full_pe_area - columns.resource_area,
            self._full_pe_area,
        )
        register_per_pe = np.where(columns.pipelined, registers, 0.0)
        shared_unit_area = np.where(
            columns.sharing,
            columns.resource_area + np.where(columns.pipelined, registers, 0.0),
            0.0,
        )
        shared_units = rows * columns.shr + cols * columns.shc
        pe_total = num_pes * pe_area
        register_total = num_pes * register_per_pe
        switch_total = num_pes * columns.switch_area
        shared_total = shared_units * shared_unit_area
        return pe_total + register_total + switch_total + shared_total

    def _timing_pass(self, columns: WaveColumns) -> Any:
        """The four timing-model branches as masked assignments."""
        np = _np
        detour = 2.0 * columns.switch_delay
        stage = columns.resource_delay / columns.stages
        stage = np.where(columns.pipelined, stage + self._pipe_register_delay, stage)
        critical = np.empty(len(columns), dtype=np.float64)
        base_mask = ~columns.sharing & ~columns.pipelined
        critical[base_mask] = self._full_pe_path + self._margin
        rs_mask = columns.sharing & ~columns.pipelined
        if rs_mask.any():
            critical[rs_mask] = np.maximum(
                self._primitive_path + self._margin,
                self._full_pe_path + detour[rs_mask],
            )
        rsp_mask = columns.sharing & columns.pipelined
        if rsp_mask.any():
            critical[rsp_mask] = np.maximum(
                self._primitive_path + detour[rsp_mask],
                self._mux_delay + stage[rsp_mask] + detour[rsp_mask],
            )
        rp_mask = ~columns.sharing & columns.pipelined
        if rp_mask.any():
            critical[rp_mask] = (
                np.maximum(
                    self._primitive_path,
                    self._mux_delay + stage[rp_mask] + self._shifter_delay,
                )
                + self._margin
            )
        return critical

    def _stall_pass(self, columns: WaveColumns) -> Tuple[Any, Any]:
        """Per-kernel RS/RP stall matrices, ``(kernels, candidates)``."""
        np = _np
        count = len(columns)
        kernels = len(self.tables)
        rs = np.zeros((kernels, count), dtype=np.int64)
        rp = np.zeros((kernels, count), dtype=np.int64)
        fill_stages = columns.stages - 1
        for row, table in enumerate(self.tables):
            if columns.pairs and table.by_cycle:
                per_pair = np.array(
                    [table.rs_stalls(pair[0], pair[1]) for pair in columns.pairs],
                    dtype=np.int64,
                )
                rs[row] = np.where(columns.sharing, per_pair[columns.pair_index], 0)
            if table.rp_runs:
                rp[row] = np.where(columns.pipelined, table.rp_runs * fill_stages, 0)
        return rs, rp

    def compute(self, columns: WaveColumns) -> BatchEvaluation:
        """Run the area/timing/stall passes over one encoded wave."""
        area = self._area_pass(columns)
        critical = self._timing_pass(columns)
        rs, rp = self._stall_pass(columns)
        base_cycles = sum(table.length for table in self.tables)
        total_stalls = rs.sum(axis=0) + rp.sum(axis=0)
        total_cycles = base_cycles + total_stalls
        return BatchEvaluation(
            columns=columns,
            area_slices=area,
            critical_path_ns=critical,
            rs_stalls=rs,
            rp_stalls=rp,
            total_cycles=total_cycles,
            total_stalls=total_stalls,
            total_execution_time_ns=total_cycles * critical,
        )

    # ------------------------------------------------------------------
    # Vectorized filters
    # ------------------------------------------------------------------
    def feasibility_mask(
        self,
        batch: BatchEvaluation,
        base_evaluation: DesignPointEvaluation,
        constraints: Optional[ExplorationConstraints] = None,
    ) -> Any:
        """Vectorized :func:`repro.core.exploration.is_feasible`."""
        np = _np
        constraints = constraints or ExplorationConstraints()
        feasible = np.ones(len(batch), dtype=bool)
        max_area = constraints.max_area_slices
        if max_area is None:
            max_area = base_evaluation.area_slices
        non_base = np.fromiter(
            (kind != "base" for kind in batch.columns.kind), dtype=bool, count=len(batch)
        )
        feasible &= ~(non_base & (batch.area_slices >= max_area))
        ratio_bound = constraints.max_execution_time_ratio
        base_time = base_evaluation.total_execution_time_ns
        if ratio_bound is not None and base_time > 0:
            feasible &= ~(batch.total_execution_time_ns / base_time > ratio_bound)
        if constraints.max_stall_cycles is not None:
            feasible &= ~(batch.total_stalls > constraints.max_stall_cycles)
        return feasible

    def early_reject_mask(
        self, batch: BatchEvaluation, frontier, lower_bound_cycles: int
    ) -> Any:
        """Vectorized dominance pre-filter against a 2-objective frontier.

        Mirrors ``EvaluationEngine._early_reject``: a candidate is
        rejected when a completed feasible point at no larger area
        already beats its execution-time lower bound strictly.
        """
        np = _np
        vectors = frontier.vectors()
        if not vectors:
            return np.zeros(len(batch), dtype=bool)
        firsts = np.array([vector[0] for vector in vectors], dtype=np.float64)
        seconds = np.array([vector[1] for vector in vectors], dtype=np.float64)
        position = np.searchsorted(firsts, batch.area_slices, side="right")
        best = np.where(
            position > 0, seconds[np.maximum(position - 1, 0)], np.inf
        )
        return best < lower_bound_cycles * batch.critical_path_ns

    def pareto_indices(self, batch: BatchEvaluation, mask: Any = None) -> List[int]:
        """Front indices over (area, time) — of the masked subset when given."""
        from repro.engine.frontier import pareto_front_indices

        positions = (
            range(len(batch)) if mask is None else [int(i) for i in _np.nonzero(mask)[0]]
        )
        vectors = [
            (float(batch.area_slices[i]), float(batch.total_execution_time_ns[i]))
            for i in positions
        ]
        front = pareto_front_indices(vectors)
        lookup = list(positions)
        return [lookup[i] for i in front]

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def materialize(
        self,
        batch: BatchEvaluation,
        names: Optional[Sequence[Optional[str]]] = None,
        keep: Optional[Sequence[int]] = None,
    ) -> List[DesignPointEvaluation]:
        """Build ``DesignPointEvaluation`` objects from batch arrays.

        ``keep`` selects the candidate positions to materialize (survivors
        of a pre-filter); by default every candidate is materialized.
        The objects are indistinguishable from the scalar path's output —
        same architecture specs, same floats, same stall dictionaries.
        """
        columns = batch.columns
        if keep is None:
            positions: Sequence[int] = range(len(columns))
        else:
            positions = [int(index) for index in keep]
        area = batch.area_slices
        critical = batch.critical_path_ns
        rs, rp = batch.rs_stalls, batch.rp_stalls
        evaluations: List[DesignPointEvaluation] = []
        for position in positions:
            candidate = columns.parameters[position]
            name = names[position] if names is not None else None
            architecture = candidate.to_architecture(self.array, name=name)
            estimates: Dict[str, StallEstimate] = {}
            for row, table in enumerate(self.tables):
                estimates[table.key] = StallEstimate(
                    kernel=table.kernel,
                    architecture=architecture.name,
                    rs_stalls=int(rs[row, position]),
                    rp_stalls=int(rp[row, position]),
                    base_cycles=table.length,
                )
            evaluations.append(
                DesignPointEvaluation(
                    parameters=candidate,
                    architecture=architecture,
                    area_slices=float(area[position]),
                    critical_path_ns=float(critical[position]),
                    stall_estimates=estimates,
                )
            )
        return evaluations

    def evaluate(
        self,
        parameters: Sequence[RSPParameters],
        names: Optional[Sequence[Optional[str]]] = None,
        keep: Optional[Sequence[int]] = None,
    ) -> List[DesignPointEvaluation]:
        """Encode, compute and materialize one wave in a single call."""
        batch = self.compute(self.encode(parameters))
        return self.materialize(batch, names=names, keep=keep)
