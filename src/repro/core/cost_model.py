"""Hardware cost (area) model — paper Equation 2.

The RSP exploration estimates the area of a candidate design from
pre-synthesised components:

.. math::

    HW_{cost} = n \\cdot m \\cdot (Sh\\_PE_{area} + Reg_{area} + SW_{area})
              + Sh\\_Res_{area} \\cdot (n \\cdot shr + m \\cdot shc)
              < n \\cdot m \\cdot PE_{area}

where ``n``/``m`` are the numbers of rows/columns, ``Sh_PE`` is a PE
without the shared resource, ``Reg`` the pipeline/operand registers added
for RSP, ``SW`` the per-PE bus switch, ``Sh_Res`` the shared resource and
``shr``/``shc`` the numbers of shared resources per row/column.  The base
architecture corresponds to the right-hand side: ``n * m * PE_area``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch.components import (
    ComponentLibrary,
    default_component_library,
)
from repro.arch.template import ArchitectureSpec
from repro.errors import CostModelError


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-category area of one architecture design point (slices)."""

    architecture: str
    pe_area: float
    switch_area_per_pe: float
    register_area_per_pe: float
    shared_resource_area: float
    pe_total: float
    switch_total: float
    register_total: float
    shared_total: float
    array_total: float

    @property
    def reduction_vs(self) -> float:  # pragma: no cover - convenience only
        return self.array_total


class HardwareCostModel:
    """Area estimator implementing paper Eq. 2.

    Parameters
    ----------
    library:
        Pre-synthesised component library; defaults to the paper-calibrated
        library of :func:`repro.arch.components.default_component_library`.
    """

    def __init__(self, library: Optional[ComponentLibrary] = None) -> None:
        self.library = library or default_component_library()

    # ------------------------------------------------------------------
    # Per-component areas
    # ------------------------------------------------------------------
    def full_pe_area(self) -> float:
        """Area of a base PE that contains its own critical resource.

        Computed as the sum of the PE's components (multiplexer + ALU +
        multiplier + shifter + output register/glue); with the default
        library this reproduces the 910 slices of paper Table 1.
        """
        return (
            self.library.multiplexer.area_slices
            + self.library.alu.area_slices
            + self.library.multiplier.area_slices
            + self.library.shifter.area_slices
            + self.library.get("output_register").area_slices
        )

    def shared_pe_area(self, spec: ArchitectureSpec) -> float:
        """Area of a PE whose critical resource has been extracted (``Sh_PE``)."""
        shared = self.library.get(spec.shared_resource)
        return self.full_pe_area() - shared.area_slices

    def register_area_per_pe(self, spec: ArchitectureSpec) -> float:
        """``Reg_area`` of Eq. 2: operand/pipeline registers added for RSP."""
        if not spec.uses_pipelining:
            return 0.0
        return self.library.pipeline_register.area_slices * spec.pipelining.registers_inserted

    def switch_area_per_pe(self, spec: ArchitectureSpec) -> float:
        """``SW_area`` of Eq. 2: the per-PE bus switch."""
        ports = spec.switch_ports_per_pe
        if ports == 0:
            return 0.0
        return self.library.bus_switch(ports).area_slices

    def shared_resource_area(self, spec: ArchitectureSpec) -> float:
        """Area of one shared resource instance, including pipeline registers."""
        area = self.library.get(spec.shared_resource).area_slices
        if spec.uses_pipelining:
            area += (
                self.library.pipeline_register.area_slices
                * spec.pipelining.registers_inserted
            )
        return area

    # ------------------------------------------------------------------
    # Whole-array area (Eq. 2)
    # ------------------------------------------------------------------
    def pe_area(self, spec: ArchitectureSpec) -> float:
        """Area of one PE of the given design (without the bus switch)."""
        if spec.uses_sharing:
            return self.shared_pe_area(spec) + self.register_area_per_pe(spec)
        return self.full_pe_area() + self.register_area_per_pe(spec)

    def array_area(self, spec: ArchitectureSpec) -> float:
        """Total array area in slices for ``spec`` (paper Eq. 2)."""
        breakdown = self.breakdown(spec)
        return breakdown.array_total

    def breakdown(self, spec: ArchitectureSpec) -> AreaBreakdown:
        """Detailed per-category area for ``spec``."""
        rows, cols = spec.array.rows, spec.array.cols
        num_pes = rows * cols
        if spec.uses_sharing:
            pe_area = self.shared_pe_area(spec)
        else:
            pe_area = self.full_pe_area()
        register_per_pe = self.register_area_per_pe(spec)
        switch_per_pe = self.switch_area_per_pe(spec)
        shared_unit_area = self.shared_resource_area(spec) if spec.uses_sharing else 0.0
        shared_units = spec.total_shared_units

        pe_total = num_pes * pe_area
        register_total = num_pes * register_per_pe
        switch_total = num_pes * switch_per_pe
        shared_total = shared_units * shared_unit_area
        array_total = pe_total + register_total + switch_total + shared_total
        return AreaBreakdown(
            architecture=spec.name,
            pe_area=pe_area,
            switch_area_per_pe=switch_per_pe,
            register_area_per_pe=register_per_pe,
            shared_resource_area=shared_unit_area,
            pe_total=pe_total,
            switch_total=switch_total,
            register_total=register_total,
            shared_total=shared_total,
            array_total=array_total,
        )

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def area_reduction_percent(self, spec: ArchitectureSpec,
                               base: Optional[ArchitectureSpec] = None) -> float:
        """Area reduction of ``spec`` relative to ``base`` in percent.

        ``base`` defaults to the same array dimensions without sharing or
        pipelining (the paper's "Base" column).  Positive values mean the
        design is smaller than the base.
        """
        base_spec = base or _implicit_base(spec)
        base_area = self.array_area(base_spec)
        if base_area <= 0:
            raise CostModelError("base architecture area must be positive")
        return 100.0 * (base_area - self.array_area(spec)) / base_area

    def satisfies_cost_constraint(self, spec: ArchitectureSpec,
                                  base: Optional[ArchitectureSpec] = None) -> bool:
        """Paper Eq. 2 constraint: the RSP design must be smaller than the base."""
        base_spec = base or _implicit_base(spec)
        return self.array_area(spec) < self.array_area(base_spec)


def _implicit_base(spec: ArchitectureSpec) -> ArchitectureSpec:
    """The base design with the same array dimensions as ``spec``."""
    from repro.arch.template import base_architecture

    return base_architecture(spec.array.rows, spec.array.cols)
