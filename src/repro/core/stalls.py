"""Upper-bound stall estimation for RSP design-space exploration.

"The mapping and evaluation of all the candidate RSP designs are
time-consuming.  Therefore, in the RSP exploration stage, we use the upper
bound for the performance estimation" (paper Section 4).  Two stall kinds
are counted on the *initial* (base-architecture) configuration context:

* **RS stalls** — in every cycle the number of operations destined for the
  critical resource is compared with the number of reachable shared
  resources; overflowing operations (those of later loop iterations) are
  pushed to the next cycle, and every push of the frontier costs one stall
  cycle.
* **RP stalls** — operations executed on a pipelined resource take
  ``stages`` cycles, so their dependents must be delayed; consecutive
  pipelined operations overlap, removing the shared cycles.

The estimator works on a :class:`ScheduleProfile`, a lightweight summary of
the base schedule, so this module does not depend on the mapper.  The exact
cycle counts used for the paper's Tables 4/5 come from re-scheduling in
:mod:`repro.mapping`; the estimator is intentionally pessimistic (an upper
bound), which is what the exploration needs to reject under-provisioned
designs safely.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.template import ArchitectureSpec
from repro.errors import ExplorationError


@dataclass(frozen=True)
class CriticalOpIssue:
    """One critical-resource operation issued in the base schedule.

    Attributes
    ----------
    cycle:
        Issue cycle in the base schedule.
    row / col:
        Position of the PE issuing the operation.
    iteration:
        Loop iteration the operation belongs to (RS rule: later iterations
        are the ones pushed back on conflicts).
    has_immediate_dependent:
        True when another operation consumes this result in the very next
        cycle of the base schedule (RP rule: that dependent must be
        delayed when the resource is pipelined).
    """

    cycle: int
    row: int
    col: int
    iteration: int
    has_immediate_dependent: bool = False


@dataclass(frozen=True)
class ScheduleProfile:
    """Summary of a base-architecture schedule used for stall estimation.

    Attributes
    ----------
    kernel:
        Name of the kernel the profile was extracted from.
    length:
        Schedule length of the base mapping in cycles.
    critical_issues:
        All critical-resource (multiplication) issues of the schedule.
    rows / cols:
        Array dimensions the schedule was produced for.
    """

    kernel: str
    length: int
    critical_issues: Tuple[CriticalOpIssue, ...]
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ExplorationError("schedule profile length must be positive")
        if self.rows <= 0 or self.cols <= 0:
            raise ExplorationError("schedule profile dimensions must be positive")

    @cached_property
    def max_critical_per_cycle(self) -> int:
        """Maximum number of critical operations issued in any single cycle.

        Cached: the dataclass is frozen, ``critical_issues`` never changes,
        and every ``StallEstimator.estimate`` call used to rebuild this
        from scratch (``cached_property`` writes the instance ``__dict__``
        directly, which works on frozen dataclasses and stays invisible
        to field-based serialization and hashing).
        """
        per_cycle: Dict[int, int] = defaultdict(int)
        for issue in self.critical_issues:
            per_cycle[issue.cycle] += 1
        return max(per_cycle.values()) if per_cycle else 0

    def issues_by_cycle(self) -> Dict[int, List[CriticalOpIssue]]:
        """Critical issues grouped by their base-schedule cycle.

        The grouping is computed once per profile and memoized; callers
        must treat the returned mapping as read-only.
        """
        grouped = self.__dict__.get("_issues_by_cycle")
        if grouped is None:
            fresh: Dict[int, List[CriticalOpIssue]] = defaultdict(list)
            for issue in self.critical_issues:
                fresh[issue.cycle].append(issue)
            grouped = dict(fresh)
            self.__dict__["_issues_by_cycle"] = grouped
        return grouped


@dataclass(frozen=True)
class StallEstimate:
    """Result of the upper-bound stall estimation for one design point."""

    kernel: str
    architecture: str
    rs_stalls: int
    rp_stalls: int
    base_cycles: int

    @property
    def total_stalls(self) -> int:
        return self.rs_stalls + self.rp_stalls

    @property
    def estimated_cycles(self) -> int:
        """Upper-bound cycle count: base schedule plus all stalls."""
        return self.base_cycles + self.total_stalls


class StallEstimator:
    """Estimate RS and RP stalls for an RSP candidate (paper Section 4)."""

    def estimate(self, profile: ScheduleProfile, spec: ArchitectureSpec) -> StallEstimate:
        """Upper-bound stall estimate for executing ``profile`` on ``spec``."""
        rs_stalls = self.estimate_rs_stalls(profile, spec)
        rp_stalls = self.estimate_rp_stalls(profile, spec)
        return StallEstimate(
            kernel=profile.kernel,
            architecture=spec.name,
            rs_stalls=rs_stalls,
            rp_stalls=rp_stalls,
            base_cycles=profile.length,
        )

    # ------------------------------------------------------------------
    # RS stalls
    # ------------------------------------------------------------------
    def estimate_rs_stalls(self, profile: ScheduleProfile, spec: ArchitectureSpec) -> int:
        """Stall cycles caused by a shortage of shared critical resources.

        Implements the paper's first rearrangement rule: per cycle, shared
        resources are granted in loop-iteration order; overflowing
        operations move to the next cycle.  Every cycle appended beyond the
        original schedule length counts as one RS stall.
        """
        if not spec.uses_sharing:
            return 0
        issues_by_cycle = profile.issues_by_cycle()
        if not issues_by_cycle:
            return 0
        rows_capacity = spec.sharing.rows_shared
        cols_capacity = spec.sharing.cols_shared

        carried: List[CriticalOpIssue] = []
        cycle = 0
        last_cycle_with_work = max(issues_by_cycle)
        extra_cycles = 0
        # Walk cycles until both the original schedule and the carried
        # backlog are drained.
        while cycle <= last_cycle_with_work or carried:
            pending = sorted(
                carried + issues_by_cycle.get(cycle, []),
                key=lambda issue: (issue.iteration, issue.cycle, issue.row, issue.col),
            )
            carried = []
            row_free: Dict[int, int] = defaultdict(lambda: rows_capacity)
            col_free: Dict[int, int] = defaultdict(lambda: cols_capacity)
            for issue in pending:
                if row_free[issue.row] > 0:
                    row_free[issue.row] -= 1
                elif col_free[issue.col] > 0:
                    col_free[issue.col] -= 1
                else:
                    carried.append(issue)
            if cycle > last_cycle_with_work:
                extra_cycles += 1
            cycle += 1
        return extra_cycles

    # ------------------------------------------------------------------
    # RP stalls
    # ------------------------------------------------------------------
    def estimate_rp_stalls(self, profile: ScheduleProfile, spec: ArchitectureSpec) -> int:
        """Stall cycles caused by the multi-cycle latency of pipelined resources.

        Every base-schedule cycle that issues at least one critical
        operation whose result is consumed in the immediately following
        cycle forces its dependents back by ``stages - 1`` cycles.
        Consecutive such cycles overlap (the paper's "overlapped cycles
        between the operations should be removed"), so a run of consecutive
        multiplication cycles only pays the penalty once.
        """
        if not spec.uses_pipelining:
            return 0
        extra_per_occurrence = spec.pipelining.stages - 1
        cycles_with_dependents = sorted(
            {
                issue.cycle
                for issue in profile.critical_issues
                if issue.has_immediate_dependent
            }
        )
        if not cycles_with_dependents:
            return 0
        # Collapse consecutive runs: each run pays the pipeline fill once.
        runs = 1
        for previous, current in zip(cycles_with_dependents, cycles_with_dependents[1:]):
            if current != previous + 1:
                runs += 1
        return runs * extra_per_occurrence
