"""The paper's primary contribution: resource sharing, pipelining and DSE."""

from repro.core.resources import (
    ClassificationThresholds,
    ResourceClass,
    classify_components,
    component_for_optype,
    critical_components,
    optypes_for_component,
)
from repro.core.cost_model import AreaBreakdown, HardwareCostModel
from repro.core.timing_model import TimingBreakdown, TimingModel, DEFAULT_WIRING_MARGIN_NS
from repro.core.rsp_params import (
    RSPParameters,
    base_parameters,
    enumerate_design_space,
    paper_parameters,
)
from repro.core.pareto import dominates, knee_point, pareto_front, pareto_front_vectors
from repro.core.stalls import (
    CriticalOpIssue,
    ScheduleProfile,
    StallEstimate,
    StallEstimator,
)
from repro.core.exploration import (
    DesignPointEvaluation,
    ExplorationConstraints,
    ExplorationResult,
    RSPDesignSpaceExplorer,
)

__all__ = [
    "ClassificationThresholds",
    "ResourceClass",
    "classify_components",
    "component_for_optype",
    "critical_components",
    "optypes_for_component",
    "AreaBreakdown",
    "HardwareCostModel",
    "TimingBreakdown",
    "TimingModel",
    "DEFAULT_WIRING_MARGIN_NS",
    "RSPParameters",
    "base_parameters",
    "enumerate_design_space",
    "paper_parameters",
    "dominates",
    "knee_point",
    "pareto_front",
    "pareto_front_vectors",
    "CriticalOpIssue",
    "ScheduleProfile",
    "StallEstimate",
    "StallEstimator",
    "DesignPointEvaluation",
    "ExplorationConstraints",
    "ExplorationResult",
    "RSPDesignSpaceExplorer",
]
