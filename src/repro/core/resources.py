"""Resource classification: primitive vs. critical resources.

The paper "splits the computational resources into two groups: primitive
resources and critical resources.  Critical resources can be area-critical
and/or delay-critical" (Section 6).  In the evaluated template the array
multiplier is the critical resource — it has the largest area and the
largest delay ratio of all PE components (Table 1) — while the ALU, the
shift logic and the multiplexer are primitive.

:func:`classify_components` reproduces that decision automatically from a
component library using relative-area/relative-delay thresholds, so the
same flow applies to other component mixes (e.g. a divider-heavy domain).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch.components import Component, ComponentKind, ComponentLibrary
from repro.errors import ArchitectureError
from repro.ir.dfg import OpType


class ResourceClass(enum.Enum):
    """Classification of a functional resource."""

    PRIMITIVE = "primitive"
    AREA_CRITICAL = "area_critical"
    DELAY_CRITICAL = "delay_critical"
    AREA_AND_DELAY_CRITICAL = "area_and_delay_critical"

    @property
    def is_critical(self) -> bool:
        return self is not ResourceClass.PRIMITIVE

    @property
    def is_area_critical(self) -> bool:
        return self in (ResourceClass.AREA_CRITICAL, ResourceClass.AREA_AND_DELAY_CRITICAL)

    @property
    def is_delay_critical(self) -> bool:
        return self in (ResourceClass.DELAY_CRITICAL, ResourceClass.AREA_AND_DELAY_CRITICAL)


#: Component kinds that are functional units (eligible for classification).
FUNCTIONAL_KINDS = (
    ComponentKind.ALU,
    ComponentKind.MULTIPLIER,
    ComponentKind.SHIFTER,
    ComponentKind.MULTIPLEXER,
)


@dataclass(frozen=True)
class ClassificationThresholds:
    """Relative thresholds for calling a resource critical.

    A resource is *area-critical* when its area exceeds
    ``area_fraction`` x (total functional area of the PE), and
    *delay-critical* when its delay exceeds ``delay_fraction`` x (PE
    critical-path delay estimate).  The defaults reproduce the paper's
    choice: only the array multiplier (45.7% of the area, 77% of the delay)
    qualifies.
    """

    area_fraction: float = 0.40
    delay_fraction: float = 0.50

    def __post_init__(self) -> None:
        if not (0.0 < self.area_fraction < 1.0):
            raise ArchitectureError("area_fraction must be in (0, 1)")
        if not (0.0 < self.delay_fraction < 1.0):
            raise ArchitectureError("delay_fraction must be in (0, 1)")


def classify_components(
    library: ComponentLibrary,
    thresholds: Optional[ClassificationThresholds] = None,
) -> Dict[str, ResourceClass]:
    """Classify every functional component of ``library``.

    Returns a mapping from component name to :class:`ResourceClass`.
    """
    thresholds = thresholds or ClassificationThresholds()
    functional = [
        component
        for component in library.components()
        if component.kind in FUNCTIONAL_KINDS
    ]
    if not functional:
        raise ArchitectureError("component library has no functional units to classify")
    total_area = sum(component.area_slices for component in functional)
    total_delay = sum(component.delay_ns for component in functional)

    result: Dict[str, ResourceClass] = {}
    for component in functional:
        area_critical = component.area_slices > thresholds.area_fraction * total_area
        delay_critical = component.delay_ns > thresholds.delay_fraction * total_delay
        if area_critical and delay_critical:
            result[component.name] = ResourceClass.AREA_AND_DELAY_CRITICAL
        elif area_critical:
            result[component.name] = ResourceClass.AREA_CRITICAL
        elif delay_critical:
            result[component.name] = ResourceClass.DELAY_CRITICAL
        else:
            result[component.name] = ResourceClass.PRIMITIVE
    return result


def critical_components(
    library: ComponentLibrary,
    thresholds: Optional[ClassificationThresholds] = None,
) -> List[Component]:
    """The components classified as critical, sorted by decreasing area."""
    classification = classify_components(library, thresholds)
    critical = [
        library.get(name)
        for name, resource_class in classification.items()
        if resource_class.is_critical
    ]
    return sorted(critical, key=lambda component: component.area_slices, reverse=True)


#: Which component executes each operation type.
_OPTYPE_TO_COMPONENT = {
    OpType.MUL: "array_multiplier",
    OpType.ADD: "alu",
    OpType.SUB: "alu",
    OpType.ABS: "alu",
    OpType.AND: "alu",
    OpType.OR: "alu",
    OpType.XOR: "alu",
    OpType.MIN: "alu",
    OpType.MAX: "alu",
    OpType.MOV: "alu",
    OpType.SHIFT: "shift_logic",
}


def component_for_optype(optype: OpType) -> Optional[str]:
    """Component-library name of the unit executing ``optype``.

    Memory operations, constants and NOPs return ``None`` — they use the
    data buses / configuration cache rather than a functional unit.
    """
    return _OPTYPE_TO_COMPONENT.get(optype)


def optypes_for_component(component_name: str) -> List[OpType]:
    """Operation types executed on the named component."""
    return [optype for optype, name in _OPTYPE_TO_COMPONENT.items() if name == component_name]
