"""Pareto-front utilities for the RSP design-space exploration.

The exploration step keeps "only Pareto points" among the designs that
satisfy the cost/performance constraints (paper Section 4).  The helpers
here are generic: a point dominates another when it is no worse in every
objective and strictly better in at least one (all objectives minimised).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b`` (minimisation)."""
    if len(a) != len(b):
        raise ValueError("objective vectors must have the same length")
    no_worse = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return no_worse and strictly_better


def pareto_front_vectors(vectors: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated vectors in ``vectors`` (minimisation).

    Semantics match the classic all-pairs scan (equal vectors are mutually
    non-dominated and all kept; indices come back in input order), but the
    work is delegated to :mod:`repro.engine.frontier`: an O(n log n)
    sort-based sweep for two objectives, an incremental front for higher
    dimensions — never the O(n²) scan the seed used.
    """
    from repro.engine.frontier import pareto_front_indices

    return pareto_front_indices(vectors)


def pareto_front(
    items: Sequence[T],
    objectives: Sequence[Callable[[T], float]],
) -> List[T]:
    """Non-dominated subset of ``items`` under the given objective functions.

    All objectives are minimised.  The relative order of ``items`` is
    preserved in the result.
    """
    if not objectives:
        raise ValueError("at least one objective is required")
    vectors = [[objective(item) for objective in objectives] for item in items]
    indices = pareto_front_vectors(vectors)
    return [items[index] for index in indices]


def knee_point(
    items: Sequence[T],
    objectives: Sequence[Callable[[T], float]],
) -> T:
    """A balanced single choice from the Pareto front.

    The front is first extracted, every objective is normalised to [0, 1]
    over the front, and the item with the smallest Euclidean distance to
    the ideal (all-zero) point is returned.  This mirrors the paper's
    "an optimal solution is selected" step without committing to a specific
    weighting.
    """
    front = pareto_front(items, objectives)
    if not front:
        raise ValueError("cannot select a knee point from an empty set")
    vectors = [[objective(item) for objective in objectives] for item in front]
    mins = [min(column) for column in zip(*vectors)]
    maxs = [max(column) for column in zip(*vectors)]

    def normalised_distance(vector: Sequence[float]) -> float:
        total = 0.0
        for value, low, high in zip(vector, mins, maxs):
            span = high - low
            normalised = 0.0 if span == 0 else (value - low) / span
            total += normalised * normalised
        return total

    best_index = min(range(len(front)), key=lambda index: normalised_distance(vectors[index]))
    return front[best_index]
