"""RSP design-space exploration (paper Section 4, Figure 7 lower half).

Given the base architecture, the initial configuration contexts of the
domain's critical loops (summarised as :class:`~repro.core.stalls.ScheduleProfile`
objects) and a set of candidate RSP parameters, the explorer

1. estimates the hardware cost of every candidate with the Eq. 2 cost
   model,
2. estimates the performance upper bound with the RS/RP stall estimator,
3. rejects candidates whose cost is too high or whose performance is too
   low,
4. keeps only the Pareto-optimal candidates (area vs. execution time), and
5. selects a single optimum.

The exploration deliberately works on *estimates*; the exact numbers of the
paper's Tables 4/5 are produced afterwards by re-mapping the selected
designs (:mod:`repro.mapping`), exactly as the paper's flow does ("RSP
mapping" after "RSP exploration").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.arch.array import ArraySpec
from repro.arch.template import ArchitectureSpec, default_array_spec
from repro.core.cost_model import HardwareCostModel
from repro.core.rsp_params import RSPParameters
from repro.core.stalls import ScheduleProfile, StallEstimate, StallEstimator
from repro.core.timing_model import TimingModel
from repro.errors import ExplorationError

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.engine.cache import EvaluationCache
    from repro.engine.executor import ExecutorConfig


@dataclass(frozen=True)
class ExplorationConstraints:
    """Feasibility constraints applied before Pareto filtering.

    Attributes
    ----------
    max_area_slices:
        Upper bound on the array area.  ``None`` applies the paper's Eq. 2
        constraint: the design must be smaller than the base architecture.
    max_execution_time_ratio:
        Upper bound on the estimated total execution time relative to the
        base architecture (e.g. 1.2 allows at most 20% slowdown).  ``None``
        disables the check.
    max_stall_cycles:
        Upper bound on the total estimated stall cycles over all kernels.
        ``None`` disables the check.
    """

    max_area_slices: Optional[float] = None
    max_execution_time_ratio: Optional[float] = None
    max_stall_cycles: Optional[int] = None


@dataclass
class DesignPointEvaluation:
    """Cost/performance estimate for one candidate design.

    The domain totals below are cached on first access: feasibility
    checks, Pareto filtering and summary tables all re-read them, and the
    underlying stall dictionary is fixed once an evaluation is built.
    The cache lives in the instance ``__dict__``, so field-based
    serialization, hashing and equality are unaffected.
    """

    parameters: RSPParameters
    architecture: ArchitectureSpec
    area_slices: float
    critical_path_ns: float
    stall_estimates: Dict[str, StallEstimate] = field(default_factory=dict)

    @cached_property
    def total_estimated_cycles(self) -> int:
        """Sum of the upper-bound cycle counts over all domain kernels."""
        return sum(estimate.estimated_cycles for estimate in self.stall_estimates.values())

    @cached_property
    def total_stall_cycles(self) -> int:
        return sum(estimate.total_stalls for estimate in self.stall_estimates.values())

    @cached_property
    def total_execution_time_ns(self) -> float:
        """Estimated execution time over the whole domain (cycles x period)."""
        return self.total_estimated_cycles * self.critical_path_ns

    @property
    def area_delay_product(self) -> float:
        """Area x execution-time product, a common single-figure merit."""
        return self.area_slices * self.total_execution_time_ns


@dataclass
class ExplorationResult:
    """Outcome of one design-space exploration run."""

    base: DesignPointEvaluation
    evaluated: List[DesignPointEvaluation]
    feasible: List[DesignPointEvaluation]
    pareto: List[DesignPointEvaluation]
    selected: Optional[DesignPointEvaluation]

    def by_name(self, name: str) -> DesignPointEvaluation:
        """Look up an evaluated design point by its architecture name.

        Served from a lazily built name index (first match wins, matching
        the original linear scan) instead of an O(n) walk per lookup; the
        index is rebuilt whenever the evaluated list changes length.  It
        lives in the instance ``__dict__`` only, so serialization of the
        dataclass fields is unaffected.
        """
        cached: Optional[Tuple[int, Dict[str, DesignPointEvaluation]]] = self.__dict__.get(
            "_name_index"
        )
        if cached is None or cached[0] != len(self.evaluated):
            index: Dict[str, DesignPointEvaluation] = {}
            for evaluation in self.evaluated:
                index.setdefault(evaluation.architecture.name, evaluation)
            cached = (len(self.evaluated), index)
            self.__dict__["_name_index"] = cached
        evaluation = cached[1].get(name)
        if evaluation is None:
            raise ExplorationError(f"no evaluated design named {name!r}")
        return evaluation

    def summary_rows(self) -> List[List[object]]:
        """Rows (name, kind, area, delay, cycles, ET, stalls, pareto, selected)."""
        pareto_names = {evaluation.architecture.name for evaluation in self.pareto}
        selected_name = self.selected.architecture.name if self.selected else None
        rows: List[List[object]] = []
        for evaluation in self.evaluated:
            name = evaluation.architecture.name
            rows.append(
                [
                    name,
                    evaluation.parameters.kind,
                    round(evaluation.area_slices, 1),
                    round(evaluation.critical_path_ns, 2),
                    evaluation.total_estimated_cycles,
                    round(evaluation.total_execution_time_ns, 1),
                    evaluation.total_stall_cycles,
                    name in pareto_names,
                    name == selected_name,
                ]
            )
        return rows


class RSPDesignSpaceExplorer:
    """The RSP exploration engine.

    Parameters
    ----------
    profiles:
        Base-architecture schedule profiles of the domain's critical loops,
        keyed by kernel name (the "initial configuration contexts" of the
        paper's flow).
    array:
        Array dimensions of the base architecture.
    cost_model / timing_model:
        Models used for the estimates; default to the paper-calibrated ones.
    """

    def __init__(
        self,
        profiles: Dict[str, ScheduleProfile],
        array: Optional[ArraySpec] = None,
        cost_model: Optional[HardwareCostModel] = None,
        timing_model: Optional[TimingModel] = None,
    ) -> None:
        if not profiles:
            raise ExplorationError("exploration requires at least one kernel profile")
        self.profiles = dict(profiles)
        self.array = array or default_array_spec()
        self.cost_model = cost_model or HardwareCostModel()
        self.timing_model = timing_model or TimingModel()
        self.stall_estimator = StallEstimator()

    @classmethod
    def for_kernels(
        cls,
        kernels: Sequence,
        array: Optional[ArraySpec] = None,
        cost_model: Optional[HardwareCostModel] = None,
        timing_model: Optional[TimingModel] = None,
        store=None,
    ) -> "RSPDesignSpaceExplorer":
        """Build an explorer by profiling ``kernels`` through the mapping pipeline.

        This is the upper half of the paper's Figure 7 as a one-liner: the
        kernels are scheduled on the base architecture and summarised into
        :class:`~repro.core.stalls.ScheduleProfile` objects via the staged
        pipeline (:mod:`repro.mapping.pipeline`).  Pass a persistent
        ``store`` (:class:`~repro.engine.artifacts.ArtifactStore`) to fetch
        previously computed schedules and profiles instead of re-mapping.
        """
        from repro.arch.template import base_architecture
        from repro.mapping.pipeline import MappingPipeline

        array_spec = array or default_array_spec()
        pipeline = MappingPipeline(
            base=base_architecture(array_spec.rows, array_spec.cols), store=store
        )
        return cls(
            pipeline.profiles_for(kernels),
            array=array_spec,
            cost_model=cost_model,
            timing_model=timing_model,
        )

    # ------------------------------------------------------------------
    # Evaluation of a single candidate
    # ------------------------------------------------------------------
    def evaluate(self, parameters: RSPParameters, name: Optional[str] = None) -> DesignPointEvaluation:
        """Estimate cost and performance of one RSP parameter assignment."""
        architecture = parameters.to_architecture(self.array, name=name)
        area = self.cost_model.array_area(architecture)
        period = self.timing_model.critical_path_ns(architecture)
        stall_estimates = {
            kernel: self.stall_estimator.estimate(profile, architecture)
            for kernel, profile in self.profiles.items()
        }
        return DesignPointEvaluation(
            parameters=parameters,
            architecture=architecture,
            area_slices=area,
            critical_path_ns=period,
            stall_estimates=stall_estimates,
        )

    # ------------------------------------------------------------------
    # Full exploration
    # ------------------------------------------------------------------
    def explore(
        self,
        candidates: Optional[Sequence[RSPParameters]] = None,
        constraints: Optional[ExplorationConstraints] = None,
        *,
        executor: Optional["ExecutorConfig"] = None,
        cache: Optional["EvaluationCache"] = None,
    ) -> ExplorationResult:
        """Run the exploration over ``candidates`` (defaults to the standard sweep).

        This is a facade over :func:`repro.engine.executor.run_exploration`:
        the engine evaluates the candidates (batched, optionally through a
        parallel backend and a persistent cache), applies the feasibility
        constraints, keeps the Pareto points and selects the knee.  The
        base point is evaluated exactly once, even when it appears in the
        candidate list.  Pass ``executor``/``cache`` to opt into parallel
        or memoised evaluation; campaign-level features (early reject,
        reports, the CLI) live in :mod:`repro.engine`.
        """
        from repro.engine.executor import run_exploration

        outcome = run_exploration(
            self,
            candidates=candidates,
            constraints=constraints,
            config=executor,
            cache=cache,
        )
        return outcome.result

    def _is_feasible(
        self,
        evaluation: DesignPointEvaluation,
        base: DesignPointEvaluation,
        constraints: ExplorationConstraints,
    ) -> bool:
        """Apply the cost/performance rejection step of the paper's flow."""
        return is_feasible(evaluation, base, constraints)


def is_feasible(
    evaluation: DesignPointEvaluation,
    base: DesignPointEvaluation,
    constraints: ExplorationConstraints,
) -> bool:
    """The cost/performance rejection step of the paper's flow (Section 4).

    A non-base design must be strictly smaller than the area bound (the
    base architecture's area by default, per Eq. 2); optional bounds on the
    execution-time ratio and the total stall cycles reject under-performing
    candidates.
    """
    max_area = constraints.max_area_slices
    if max_area is None:
        max_area = base.area_slices
    if evaluation.parameters.kind != "base" and evaluation.area_slices >= max_area:
        return False
    if constraints.max_execution_time_ratio is not None and base.total_execution_time_ns > 0:
        ratio = evaluation.total_execution_time_ns / base.total_execution_time_ns
        if ratio > constraints.max_execution_time_ratio:
            return False
    if constraints.max_stall_cycles is not None:
        if evaluation.total_stall_cycles > constraints.max_stall_cycles:
            return False
    return True
