"""Critical-path (clock period) model.

Paper Table 2 reports the array critical path of the nine evaluated
designs.  The structure of those numbers is:

* **Base** — the critical path runs through the PE's operand multiplexer,
  the array multiplier and the shift/output stage (25.6 ns per Table 1)
  plus a small array-level wiring margin (26 ns for the array).
* **RS#k** — the multiplier moves outside the PE, so the path additionally
  traverses the bus switch twice (operands out, product back); the switch
  delay grows with the number of reachable shared resources.
* **RSP#k** — the shared multiplier is pipelined, so the longest
  single-cycle path inside the PE is the ALU path (multiplexer + ALU +
  shift logic, 15.3 ns per Table 2) and the multiplier stage path is no
  longer limiting; the bus switch detour still applies.

The model composes these paths from the component library so the same
code evaluates non-paper design points (different stage counts, different
shared resources) during exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.components import ComponentLibrary, default_component_library
from repro.arch.template import ArchitectureSpec
from repro.errors import TimingModelError

#: Array-level wiring margin added on top of the PE path (calibrated from
#: the 26 ns base array path vs. the 25.6 ns PE path of paper Tables 1/2).
DEFAULT_WIRING_MARGIN_NS = 0.4


@dataclass(frozen=True)
class TimingBreakdown:
    """Critical-path contributions of one design point (nanoseconds)."""

    architecture: str
    pe_internal_path_ns: float
    shared_resource_path_ns: float
    switch_detour_ns: float
    wiring_margin_ns: float
    critical_path_ns: float


class TimingModel:
    """Critical-path estimator for RSP design points."""

    def __init__(
        self,
        library: Optional[ComponentLibrary] = None,
        wiring_margin_ns: float = DEFAULT_WIRING_MARGIN_NS,
    ) -> None:
        if wiring_margin_ns < 0:
            raise TimingModelError("wiring margin must be non-negative")
        self.library = library or default_component_library()
        self.wiring_margin_ns = wiring_margin_ns

    # ------------------------------------------------------------------
    # PE-internal paths
    # ------------------------------------------------------------------
    def full_pe_path_ns(self) -> float:
        """Critical path of a base PE containing its own multiplier.

        Multiplexer + multiplier + shift logic + output register/glue; with
        the default library this reproduces the 25.6 ns of paper Table 1.
        """
        return (
            self.library.multiplexer.delay_ns
            + self.library.multiplier.delay_ns
            + self.library.shifter.delay_ns
            + self.library.get("output_register").delay_ns
        )

    def primitive_pe_path_ns(self) -> float:
        """Critical path through the primitive resources only (no multiplier).

        Multiplexer + ALU + shift logic; with the default library this is
        15.3 ns, matching the pipelined-PE path of paper Table 2.  The
        output-register overhead is absorbed by the pipeline register in the
        pipelined designs.
        """
        return (
            self.library.multiplexer.delay_ns
            + self.library.alu.delay_ns
            + self.library.shifter.delay_ns
        )

    def shared_resource_stage_ns(self, spec: ArchitectureSpec) -> float:
        """Delay of one pipeline stage of the shared resource."""
        resource = self.library.get(spec.shared_resource)
        stages = spec.pipelining.stages
        stage_delay = resource.delay_ns / stages
        if spec.uses_pipelining:
            stage_delay += self.library.pipeline_register.delay_ns
        return stage_delay

    def switch_detour_ns(self, spec: ArchitectureSpec) -> float:
        """Round-trip delay through the bus switch (operands out, result back)."""
        ports = spec.switch_ports_per_pe
        if ports == 0:
            return 0.0
        return 2.0 * self.library.bus_switch(ports).delay_ns

    # ------------------------------------------------------------------
    # Array critical path
    # ------------------------------------------------------------------
    def breakdown(self, spec: ArchitectureSpec) -> TimingBreakdown:
        """Detailed critical-path composition for ``spec``."""
        switch_detour = self.switch_detour_ns(spec)
        if spec.is_base or (not spec.uses_sharing and not spec.uses_pipelining):
            pe_path = self.full_pe_path_ns()
            shared_path = 0.0
            critical = pe_path + self.wiring_margin_ns
        elif spec.uses_sharing and not spec.uses_pipelining:
            # RS: the multiplication path still traverses the full multiplier,
            # now reached through the bus switch.
            pe_path = self.full_pe_path_ns()
            shared_path = pe_path + switch_detour
            critical = max(self.primitive_pe_path_ns() + self.wiring_margin_ns, shared_path)
        elif spec.uses_sharing and spec.uses_pipelining:
            # RSP: the multiplier stage is pipelined, so the limiting
            # single-cycle path is the primitive PE path extended by the
            # bus-switch detour of the sharing network.
            pe_path = self.primitive_pe_path_ns()
            stage = self.shared_resource_stage_ns(spec)
            mux_to_stage = self.library.multiplexer.delay_ns + stage + switch_detour
            shared_path = mux_to_stage
            critical = max(pe_path + switch_detour, mux_to_stage)
        else:
            # RP only (pipelined per-PE multiplier) — an ablation point the
            # paper motivates with Figure 5 but does not synthesise.
            stage = self.shared_resource_stage_ns(spec)
            pe_path = max(
                self.primitive_pe_path_ns(),
                self.library.multiplexer.delay_ns + stage + self.library.shifter.delay_ns,
            )
            shared_path = 0.0
            critical = pe_path + self.wiring_margin_ns
        return TimingBreakdown(
            architecture=spec.name,
            pe_internal_path_ns=pe_path,
            shared_resource_path_ns=shared_path,
            switch_detour_ns=switch_detour,
            wiring_margin_ns=self.wiring_margin_ns,
            critical_path_ns=critical,
        )

    def critical_path_ns(self, spec: ArchitectureSpec) -> float:
        """The array critical path (clock period) of ``spec`` in nanoseconds."""
        return self.breakdown(spec).critical_path_ns

    def clock_frequency_mhz(self, spec: ArchitectureSpec) -> float:
        """Maximum clock frequency implied by the critical path."""
        period = self.critical_path_ns(spec)
        if period <= 0:
            raise TimingModelError("critical path must be positive")
        return 1000.0 / period

    def delay_reduction_percent(self, spec: ArchitectureSpec,
                                base: Optional[ArchitectureSpec] = None) -> float:
        """Critical-path reduction of ``spec`` vs. ``base`` in percent.

        Positive values mean a shorter (better) critical path.  Matches the
        sign convention of the ``R(%)`` column of paper Table 2, where RS
        designs show negative reductions (their path is longer than the
        base) and RSP designs show positive ones.
        """
        base_spec = base or _implicit_base(spec)
        base_path = self.critical_path_ns(base_spec)
        if base_path <= 0:
            raise TimingModelError("base critical path must be positive")
        return 100.0 * (base_path - self.critical_path_ns(spec)) / base_path


def _implicit_base(spec: ArchitectureSpec) -> ArchitectureSpec:
    from repro.arch.template import base_architecture

    return base_architecture(spec.array.rows, spec.array.cols)
