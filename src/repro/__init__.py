"""repro — reproduction of "Resource Sharing and Pipelining in Coarse-Grained
Reconfigurable Architecture for Domain-Specific Optimization" (Kim, Kiemb,
Park, Jung, Choi — DATE 2005).

The package is organised as:

* :mod:`repro.ir`        — kernel dataflow-graph IR and loop kernels,
* :mod:`repro.kernels`   — the paper's Livermore/DSP kernels and the matmul example,
* :mod:`repro.arch`      — the reconfigurable-array architecture template,
* :mod:`repro.core`      — resource sharing/pipelining models and design-space exploration,
* :mod:`repro.mapping`   — the loop-pipelining mapper and the RS/RP rearrangement,
* :mod:`repro.sim`       — a cycle-accurate functional simulator,
* :mod:`repro.synthesis` — the analytical synthesis surrogate and published reference data,
* :mod:`repro.eval`      — regeneration of the paper's tables and figures,
* :mod:`repro.flow`      — the end-to-end RSP design flow of paper Figure 7,
* :mod:`repro.engine`    — parallel, cache-backed exploration campaigns
  (``python -m repro.engine``).

Quick start::

    from repro.arch import rsp_architecture
    from repro.kernels import get_kernel
    from repro.mapping import RSPMapper

    mapper = RSPMapper()
    result = mapper.map_kernel(get_kernel("MVM"), rsp_architecture(2))
    print(result.cycles, result.stall_cycles)
"""

from repro.errors import (
    ArchitectureError,
    ComponentError,
    ConfigurationError,
    CostModelError,
    DFGError,
    DFGValidationError,
    ExplorationError,
    KernelError,
    MappingError,
    PlacementError,
    ReproError,
    SchedulingError,
    SimulationError,
    TimingModelError,
    UnknownKernelError,
    UnknownOperationError,
)
from repro.flow import FlowOutcome, run_rsp_flow

__version__ = "1.0.0"

__all__ = [
    "ArchitectureError",
    "ComponentError",
    "ConfigurationError",
    "CostModelError",
    "DFGError",
    "DFGValidationError",
    "ExplorationError",
    "KernelError",
    "MappingError",
    "PlacementError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "TimingModelError",
    "UnknownKernelError",
    "UnknownOperationError",
    "FlowOutcome",
    "run_rsp_flow",
    "__version__",
]
