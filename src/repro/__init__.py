"""repro — reproduction of "Resource Sharing and Pipelining in Coarse-Grained
Reconfigurable Architecture for Domain-Specific Optimization" (Kim, Kiemb,
Park, Jung, Choi — DATE 2005).

The package is organised as:

* :mod:`repro.ir`        — kernel dataflow-graph IR and loop kernels,
* :mod:`repro.kernels`   — the paper's Livermore/DSP kernels and the matmul example,
* :mod:`repro.arch`      — the reconfigurable-array architecture template,
* :mod:`repro.core`      — resource sharing/pipelining models and design-space exploration,
* :mod:`repro.mapping`   — the loop-pipelining mapper and the RS/RP rearrangement,
* :mod:`repro.sim`       — a cycle-accurate functional simulator,
* :mod:`repro.synthesis` — the analytical synthesis surrogate and published reference data,
* :mod:`repro.eval`      — regeneration of the paper's tables and figures,
* :mod:`repro.flow`      — the end-to-end RSP design flow of paper Figure 7,
* :mod:`repro.flowgraph` — the declarative flow-graph runtime executing the
  mapping stages as a composable DAG,
* :mod:`repro.engine`    — parallel, cache-backed exploration campaigns
  (``python -m repro.engine``).

Quick start::

    from repro.arch import rsp_architecture
    from repro.kernels import get_kernel
    from repro.mapping import RSPMapper

    mapper = RSPMapper()
    result = mapper.map_kernel(get_kernel("MVM"), rsp_architecture(2))
    print(result.cycles, result.stall_cycles)

The package root re-exports the stable public surface (``repro.RSPMapper``,
``repro.Flow``, ``repro.CampaignRunner``, …); everything in ``__all__``
resolves lazily, so ``import repro`` stays cheap and subsystem imports only
happen when their names are touched.
"""

from repro.errors import (
    ArchitectureError,
    ComponentError,
    ConfigurationError,
    CostModelError,
    DFGError,
    DFGValidationError,
    ExplorationError,
    KernelError,
    MappingError,
    PlacementError,
    ReproError,
    SchedulingError,
    SimulationError,
    TimingModelError,
    UnknownKernelError,
    UnknownOperationError,
)
from repro.errors import (
    FlowError,
    FlowExecutionError,
    FlowParseError,
    FlowRoutingError,
    FlowValidationError,
)
from repro.flow import FlowOutcome, run_rsp_flow

__version__ = "1.0.0"

#: Lazily-resolved public surface: name -> home module.  PEP 562 keeps
#: ``import repro`` from dragging in numpy-heavy subsystems until a name
#: is actually touched, while ``from repro import RSPMapper`` and friends
#: remain the documented, stable spellings.
_PUBLIC_API = {
    # architecture + kernels
    "ArchitectureSpec": "repro.arch.template",
    "base_architecture": "repro.arch",
    "rsp_architecture": "repro.arch",
    "get_kernel": "repro.kernels",
    # mapping pipeline
    "RSPMapper": "repro.mapping.mapper",
    "MappingPipeline": "repro.mapping.pipeline",
    "MappingResult": "repro.mapping.pipeline",
    # flow-graph runtime
    "Flow": "repro.flowgraph.core",
    "FlowContext": "repro.flowgraph.core",
    "Node": "repro.flowgraph.core",
    "NodeEvent": "repro.flowgraph.core",
    "RetryPolicy": "repro.flowgraph.core",
    "Selector": "repro.flowgraph.core",
    "stage_key": "repro.flowgraph.core",
    "parse_edges": "repro.flowgraph.dsl",
    "render_edges": "repro.flowgraph.dsl",
    "flow_from_config": "repro.flowgraph.config",
    "load_flow_config": "repro.flowgraph.config",
    "build_mapping_flow": "repro.flowgraph.mapping",
    # per-node accounting
    "Artifact": "repro.flowgraph.stats",
    "PipelineStats": "repro.flowgraph.stats",
    "StageTiming": "repro.flowgraph.stats",
    "stage_timings_as_dict": "repro.flowgraph.stats",
    # observers
    "CampaignObserver": "repro.observers",
    "MultiObserver": "repro.observers",
    "compose_observers": "repro.observers",
    # engine
    "ArtifactStore": "repro.engine.artifacts",
    "CampaignRunner": "repro.engine.runner",
    "CampaignReport": "repro.engine.runner",
    "CampaignSpec": "repro.engine.jobs",
}


def __getattr__(name: str):
    module_name = _PUBLIC_API.get(name)
    if module_name is not None:
        import importlib

        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_PUBLIC_API))


__all__ = [
    "ArchitectureError",
    "ComponentError",
    "ConfigurationError",
    "CostModelError",
    "DFGError",
    "DFGValidationError",
    "ExplorationError",
    "FlowError",
    "FlowExecutionError",
    "FlowParseError",
    "FlowRoutingError",
    "FlowValidationError",
    "KernelError",
    "MappingError",
    "PlacementError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "TimingModelError",
    "UnknownKernelError",
    "UnknownOperationError",
    "FlowOutcome",
    "run_rsp_flow",
    "__version__",
    *sorted(_PUBLIC_API),
]
