"""The RSP architecture template and the paper's concrete design points.

An :class:`ArchitectureSpec` bundles the array dimensions, the sharing
topology (how many multipliers are shared per row / per column, paper
Figure 8) and the pipelining specification (how many stages the shared
multiplier is split into, paper Figure 5/6).  The module also provides the
nine concrete architectures evaluated in the paper:

* ``Base``   — every PE has its own combinational multiplier,
* ``RS#1–4`` — shared combinational multipliers,
* ``RSP#1–4``— shared two-stage pipelined multipliers,

where the sharing topologies #1–#4 are (paper Section 5.2):

1. one multiplier shared by the 8 PEs of each row,
2. two multipliers shared by the 8 PEs of each row,
3. two per row plus one shared by the 8 PEs of each column,
4. two per row plus two per column.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.arch.array import ArraySpec, ReconfigurableArray, SharedResourceUnit
from repro.arch.bus import RowBusSpec
from repro.arch.pe import PEConfig
from repro.errors import ArchitectureError


@dataclass(frozen=True)
class SharingTopology:
    """How many shared critical resources are placed per row and per column.

    ``rows_shared`` is the ``shr`` parameter of paper Eq. 2 (number of
    shared resources attached to every row), ``cols_shared`` is ``shc``.
    ``rows_shared = cols_shared = 0`` means no sharing (base architecture).
    """

    rows_shared: int = 0
    cols_shared: int = 0

    def __post_init__(self) -> None:
        if self.rows_shared < 0 or self.cols_shared < 0:
            raise ArchitectureError("shared-resource counts must be non-negative")

    @property
    def shares_anything(self) -> bool:
        return self.rows_shared > 0 or self.cols_shared > 0

    def total_shared_units(self, rows: int, cols: int) -> int:
        """Total shared units for an ``rows`` x ``cols`` array (Eq. 2 term)."""
        return rows * self.rows_shared + cols * self.cols_shared

    def ports_per_pe(self) -> int:
        """Shared units reachable from any single PE (row units + column units)."""
        return self.rows_shared + self.cols_shared

    def units_for(self, rows: int, cols: int, pipeline_stages: int = 1,
                  resource: str = "array_multiplier") -> List[SharedResourceUnit]:
        """Materialise the shared units for a concrete array."""
        units: List[SharedResourceUnit] = []
        for row in range(rows):
            for ordinal in range(self.rows_shared):
                units.append(
                    SharedResourceUnit(
                        unit_id=("row", row, ordinal),
                        resource=resource,
                        pipeline_stages=pipeline_stages,
                    )
                )
        for col in range(cols):
            for ordinal in range(self.cols_shared):
                units.append(
                    SharedResourceUnit(
                        unit_id=("col", col, ordinal),
                        resource=resource,
                        pipeline_stages=pipeline_stages,
                    )
                )
        return units


@dataclass(frozen=True)
class PipeliningSpec:
    """Pipelining of the critical resource (paper Section 3.2).

    ``stages = 1`` means the resource stays combinational; ``stages = 2``
    is the paper's two-stage pipelined multiplier.
    """

    stages: int = 1

    def __post_init__(self) -> None:
        if self.stages < 1:
            raise ArchitectureError("pipeline stages must be at least 1")

    @property
    def is_pipelined(self) -> bool:
        return self.stages > 1

    @property
    def registers_inserted(self) -> int:
        """Number of pipeline registers inserted into the resource."""
        return self.stages - 1


@dataclass(frozen=True)
class ArchitectureSpec:
    """A complete design point of the RSP template.

    Attributes
    ----------
    name:
        Human-readable name (``"Base"``, ``"RS#2"``, ``"RSP#2"`` ...).
    array:
        Array dimensions and bus structure.
    sharing:
        Sharing topology of the critical resource.
    pipelining:
        Pipelining of the critical resource.
    shared_resource:
        Component-library name of the critical resource (the paper shares
        and pipelines the array multiplier).
    """

    name: str
    array: ArraySpec = field(default_factory=ArraySpec)
    sharing: SharingTopology = field(default_factory=SharingTopology)
    pipelining: PipeliningSpec = field(default_factory=PipeliningSpec)
    shared_resource: str = "array_multiplier"

    def __post_init__(self) -> None:
        if not self.name:
            raise ArchitectureError("architecture name must be non-empty")
        if self.pipelining.is_pipelined and not self.sharing.shares_anything:
            # The paper always pipelines the *shared* multiplier; a pipelined
            # per-PE multiplier would be a different design point.  We allow
            # constructing it for ablations but it must be explicit, so this
            # combination is accepted silently.
            pass

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def is_base(self) -> bool:
        """True for the base architecture (no sharing, no pipelining)."""
        return not self.sharing.shares_anything and not self.pipelining.is_pipelined

    @property
    def uses_sharing(self) -> bool:
        return self.sharing.shares_anything

    @property
    def uses_pipelining(self) -> bool:
        return self.pipelining.is_pipelined

    @property
    def kind(self) -> str:
        """``"base"``, ``"rs"``, ``"rp"`` or ``"rsp"``."""
        if self.uses_sharing and self.uses_pipelining:
            return "rsp"
        if self.uses_sharing:
            return "rs"
        if self.uses_pipelining:
            return "rp"
        return "base"

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    @property
    def multiplier_latency(self) -> int:
        """Cycles a multiplication occupies before its result is usable."""
        return self.pipelining.stages

    @property
    def total_shared_units(self) -> int:
        return self.sharing.total_shared_units(self.array.rows, self.array.cols)

    @property
    def switch_ports_per_pe(self) -> int:
        return self.sharing.ports_per_pe()

    def pe_config(self) -> PEConfig:
        """The per-PE unit configuration implied by this design point."""
        return PEConfig(
            has_multiplier=not self.uses_sharing,
            has_alu=True,
            has_shifter=True,
            has_multiplexer=True,
            has_pipeline_registers=self.uses_pipelining,
        )

    def build_array(self) -> ReconfigurableArray:
        """Instantiate the structural array for this design point."""
        shared_units = self.sharing.units_for(
            self.array.rows,
            self.array.cols,
            pipeline_stages=self.pipelining.stages,
            resource=self.shared_resource,
        )
        return ReconfigurableArray(
            spec=self.array,
            pe_config=self.pe_config(),
            shared_units=shared_units,
        )

    def with_name(self, name: str) -> "ArchitectureSpec":
        """Copy of this spec under a different name."""
        return replace(self, name=name)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"{self.name}: {self.array.rows}x{self.array.cols}, "
            f"shr={self.sharing.rows_shared}, shc={self.sharing.cols_shared}, "
            f"stages={self.pipelining.stages}"
        )


# ----------------------------------------------------------------------
# Paper design points (Figure 8 + Section 5)
# ----------------------------------------------------------------------

#: Sharing topologies of the four RS/RSP designs in paper Figure 8.
PAPER_SHARING_TOPOLOGIES: Dict[int, SharingTopology] = {
    1: SharingTopology(rows_shared=1, cols_shared=0),
    2: SharingTopology(rows_shared=2, cols_shared=0),
    3: SharingTopology(rows_shared=2, cols_shared=1),
    4: SharingTopology(rows_shared=2, cols_shared=2),
}

#: Number of pipeline stages used by the paper's RSP designs.
PAPER_RSP_STAGES = 2


def default_array_spec(rows: int = 8, cols: int = 8) -> ArraySpec:
    """The paper's base array: 8x8 PEs, two read buses and one write bus per row."""
    return ArraySpec(rows=rows, cols=cols, row_buses=RowBusSpec(read_buses=2, write_buses=1))


def base_architecture(rows: int = 8, cols: int = 8) -> ArchitectureSpec:
    """The Morphosys-like base architecture (per-PE combinational multiplier)."""
    return ArchitectureSpec(name="Base", array=default_array_spec(rows, cols))


def rs_architecture(design: int, rows: int = 8, cols: int = 8) -> ArchitectureSpec:
    """Resource-sharing design ``RS#design`` of paper Figure 8 (design in 1..4)."""
    topology = _paper_topology(design)
    return ArchitectureSpec(
        name=f"RS#{design}",
        array=default_array_spec(rows, cols),
        sharing=topology,
        pipelining=PipeliningSpec(stages=1),
    )


def rsp_architecture(design: int, rows: int = 8, cols: int = 8,
                     stages: int = PAPER_RSP_STAGES) -> ArchitectureSpec:
    """Resource-sharing-and-pipelining design ``RSP#design`` (design in 1..4)."""
    topology = _paper_topology(design)
    return ArchitectureSpec(
        name=f"RSP#{design}",
        array=default_array_spec(rows, cols),
        sharing=topology,
        pipelining=PipeliningSpec(stages=stages),
    )


def _paper_topology(design: int) -> SharingTopology:
    try:
        return PAPER_SHARING_TOPOLOGIES[design]
    except KeyError as exc:
        raise ArchitectureError(
            f"paper sharing design must be 1..4, got {design}"
        ) from exc


def paper_architectures(rows: int = 8, cols: int = 8) -> List[ArchitectureSpec]:
    """The nine architectures of paper Table 2 in table order."""
    architectures = [base_architecture(rows, cols)]
    architectures.extend(rs_architecture(design, rows, cols) for design in range(1, 5))
    architectures.extend(rsp_architecture(design, rows, cols) for design in range(1, 5))
    return architectures


def architecture_by_name(name: str, rows: int = 8, cols: int = 8) -> ArchitectureSpec:
    """Look up one of the paper's architectures by its table name."""
    for spec in paper_architectures(rows, cols):
        if spec.name.lower() == name.lower():
            return spec
    raise ArchitectureError(f"unknown paper architecture: {name!r}")
