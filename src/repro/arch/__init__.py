"""Architecture substrate: components, PEs, buses, arrays and the RSP template."""

from repro.arch.components import (
    Component,
    ComponentKind,
    ComponentLibrary,
    default_component_library,
    PAPER_PE_AREA_SLICES,
    PAPER_PE_CRITICAL_PATH_NS,
    PAPER_SHARED_PE_AREA_SLICES,
    PAPER_PIPELINED_PE_PATH_NS,
)
from repro.arch.bus import BusSwitchSpec, RowBusSpec
from repro.arch.pe import PEConfig, ProcessingElement
from repro.arch.config_cache import (
    ConfigurationCacheSpec,
    ConfigurationContext,
    ConfigurationWord,
    IDLE_WORD,
)
from repro.arch.array import ArraySpec, ReconfigurableArray, SharedResourceUnit, SharedUnitId
from repro.arch.template import (
    ArchitectureSpec,
    PipeliningSpec,
    SharingTopology,
    PAPER_RSP_STAGES,
    PAPER_SHARING_TOPOLOGIES,
    architecture_by_name,
    base_architecture,
    default_array_spec,
    paper_architectures,
    rs_architecture,
    rsp_architecture,
)

__all__ = [
    "Component",
    "ComponentKind",
    "ComponentLibrary",
    "default_component_library",
    "PAPER_PE_AREA_SLICES",
    "PAPER_PE_CRITICAL_PATH_NS",
    "PAPER_SHARED_PE_AREA_SLICES",
    "PAPER_PIPELINED_PE_PATH_NS",
    "BusSwitchSpec",
    "RowBusSpec",
    "PEConfig",
    "ProcessingElement",
    "ConfigurationCacheSpec",
    "ConfigurationContext",
    "ConfigurationWord",
    "IDLE_WORD",
    "ArraySpec",
    "ReconfigurableArray",
    "SharedResourceUnit",
    "SharedUnitId",
    "ArchitectureSpec",
    "PipeliningSpec",
    "SharingTopology",
    "PAPER_RSP_STAGES",
    "PAPER_SHARING_TOPOLOGIES",
    "architecture_by_name",
    "base_architecture",
    "default_array_spec",
    "paper_architectures",
    "rs_architecture",
    "rsp_architecture",
]
