"""Rectangular reconfigurable-array structural model.

:class:`ArraySpec` captures the dimensions and data-bus configuration of
the PE array (paper Figure 1); :class:`SharedResourceUnit` identifies one
shared multiplier placed alongside a row or a column (paper Figures 3/8);
and :class:`ReconfigurableArray` instantiates the PEs, bus switches and
shared units of a concrete architecture so that the mapper and simulator
can reason about reachability ("which shared multipliers can PE (r, c)
use?").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.bus import BusSwitchSpec, RowBusSpec
from repro.arch.pe import PEConfig, ProcessingElement
from repro.errors import ArchitectureError

#: Identifier of a shared resource unit: ("row", row_index, ordinal) for a
#: unit shared by the PEs of a row, ("col", col_index, ordinal) for a unit
#: shared by the PEs of a column.
SharedUnitId = Tuple[str, int, int]


@dataclass(frozen=True)
class ArraySpec:
    """Dimensions and bus structure of the PE array.

    Attributes
    ----------
    rows / cols:
        Array dimensions (8x8 for the paper's base architecture).
    row_buses:
        Read/write data buses shared by each row (paper Figure 1(b)).
    data_width_bits:
        Datapath width (16 bits in the paper's base architecture).
    """

    rows: int = 8
    cols: int = 8
    row_buses: RowBusSpec = field(default_factory=RowBusSpec)
    data_width_bits: int = 16

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ArchitectureError("array dimensions must be positive")
        if self.data_width_bits <= 0:
            raise ArchitectureError("data width must be positive")

    @property
    def num_pes(self) -> int:
        """Total number of processing elements."""
        return self.rows * self.cols

    @property
    def loads_per_cycle(self) -> int:
        """Maximum operand loads the memory interface sustains per cycle."""
        return self.rows * self.row_buses.read_buses

    @property
    def stores_per_cycle(self) -> int:
        """Maximum result stores the memory interface sustains per cycle."""
        return self.rows * self.row_buses.write_buses

    def positions(self) -> List[Tuple[int, int]]:
        """All (row, col) grid positions in row-major order."""
        return [(row, col) for row in range(self.rows) for col in range(self.cols)]

    def contains(self, row: int, col: int) -> bool:
        """True when (row, col) is a valid PE position."""
        return 0 <= row < self.rows and 0 <= col < self.cols


@dataclass(frozen=True)
class SharedResourceUnit:
    """One shared critical resource (an array multiplier in the paper).

    Attributes
    ----------
    unit_id:
        Structural identifier (``("row", r, j)`` / ``("col", c, j)``).
    resource:
        Component-library name of the shared resource.
    pipeline_stages:
        1 for a combinational unit, >1 for a pipelined unit (RSP).
    """

    unit_id: SharedUnitId
    resource: str = "array_multiplier"
    pipeline_stages: int = 1

    def __post_init__(self) -> None:
        scope, index, ordinal = self.unit_id
        if scope not in ("row", "col"):
            raise ArchitectureError(f"shared unit scope must be 'row' or 'col', got {scope!r}")
        if index < 0 or ordinal < 0:
            raise ArchitectureError("shared unit indices must be non-negative")
        if self.pipeline_stages < 1:
            raise ArchitectureError("pipeline stages must be at least 1")

    @property
    def scope(self) -> str:
        """``"row"`` or ``"col"``."""
        return self.unit_id[0]

    @property
    def line_index(self) -> int:
        """The row or column index the unit is attached to."""
        return self.unit_id[1]

    @property
    def is_pipelined(self) -> bool:
        return self.pipeline_stages > 1

    @property
    def name(self) -> str:
        """Readable identifier, e.g. ``MUL[row 3 #0]``."""
        return f"MUL[{self.scope} {self.line_index} #{self.unit_id[2]}]"


class ReconfigurableArray:
    """Structural instantiation of one architecture.

    Parameters
    ----------
    spec:
        The array dimensions and bus structure.
    pe_config:
        Per-PE unit configuration (all PEs are identical — the template
        keeps the array regular, which is one of the paper's stated goals).
    shared_units:
        The shared critical resources placed alongside rows/columns.
    """

    def __init__(
        self,
        spec: ArraySpec,
        pe_config: Optional[PEConfig] = None,
        shared_units: Optional[List[SharedResourceUnit]] = None,
    ) -> None:
        self.spec = spec
        self.pe_config = pe_config or PEConfig()
        self.shared_units: List[SharedResourceUnit] = list(shared_units or [])
        self._validate_shared_units()
        self._pes: Dict[Tuple[int, int], ProcessingElement] = {
            (row, col): ProcessingElement(row=row, col=col, config=self.pe_config)
            for row, col in spec.positions()
        }
        self._reachable: Dict[Tuple[int, int], List[SharedResourceUnit]] = {
            position: self._compute_reachable(*position) for position in spec.positions()
        }

    def _validate_shared_units(self) -> None:
        seen = set()
        for unit in self.shared_units:
            if unit.unit_id in seen:
                raise ArchitectureError(f"duplicate shared unit: {unit.unit_id}")
            seen.add(unit.unit_id)
            scope, index, _ = unit.unit_id
            limit = self.spec.rows if scope == "row" else self.spec.cols
            if index >= limit:
                raise ArchitectureError(
                    f"shared unit {unit.unit_id} attached to non-existent {scope} {index}"
                )

    def _compute_reachable(self, row: int, col: int) -> List[SharedResourceUnit]:
        reachable = []
        for unit in self.shared_units:
            if unit.scope == "row" and unit.line_index == row:
                reachable.append(unit)
            elif unit.scope == "col" and unit.line_index == col:
                reachable.append(unit)
        return reachable

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def pe_at(self, row: int, col: int) -> ProcessingElement:
        """The PE at grid position (row, col)."""
        try:
            return self._pes[(row, col)]
        except KeyError as exc:
            raise ArchitectureError(
                f"PE position ({row},{col}) outside {self.spec.rows}x{self.spec.cols} array"
            ) from exc

    def processing_elements(self) -> List[ProcessingElement]:
        """All PEs in row-major order."""
        return [self._pes[position] for position in self.spec.positions()]

    def reachable_shared_units(self, row: int, col: int) -> List[SharedResourceUnit]:
        """Shared units the PE at (row, col) can use through its bus switch."""
        if not self.spec.contains(row, col):
            raise ArchitectureError(
                f"PE position ({row},{col}) outside {self.spec.rows}x{self.spec.cols} array"
            )
        return list(self._reachable[(row, col)])

    def bus_switch_spec(self) -> Optional[BusSwitchSpec]:
        """The per-PE bus switch, or None when nothing is shared."""
        if not self.shared_units:
            return None
        ports = max(len(units) for units in self._reachable.values())
        return BusSwitchSpec(ports=ports, operand_width_bits=self.spec.data_width_bits)

    @property
    def num_shared_units(self) -> int:
        """Total number of shared critical resources in the array."""
        return len(self.shared_units)

    @property
    def has_shared_resources(self) -> bool:
        return bool(self.shared_units)

    @property
    def multiplier_issue_slots_per_cycle(self) -> int:
        """Upper bound on multiplication issues per cycle for the whole array."""
        if self.pe_config.has_multiplier:
            return self.spec.num_pes
        return self.num_shared_units

    def __repr__(self) -> str:
        return (
            f"ReconfigurableArray({self.spec.rows}x{self.spec.cols}, "
            f"shared_units={self.num_shared_units})"
        )
