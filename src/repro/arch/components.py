"""Pre-synthesised hardware component library.

The RSP design-space exploration estimates hardware cost "with
pre-synthesised architecture components" (paper Section 4).  The paper's
calibration point is Table 1, the RTL synthesis result of one processing
element on a Xilinx Virtex-II FPGA:

==================  ===============  =====================
Component           Area (slices)    Critical path (ns)
==================  ===============  =====================
PE (total)          910              25.6
Multiplexer         58               1.3
ALU                 253              11.5
Array multiplier    416              19.7
Shift logic         156              2.5
==================  ===============  =====================

This module stores those numbers, together with the bus-switch and
pipeline-register variants needed by the RS/RSP designs of paper Table 2,
and exposes them through :class:`ComponentLibrary` so the cost and timing
models never hard-code magic constants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import ComponentError


class ComponentKind(enum.Enum):
    """Kinds of hardware components appearing in the template."""

    MULTIPLEXER = "multiplexer"
    ALU = "alu"
    MULTIPLIER = "multiplier"
    SHIFTER = "shifter"
    PIPELINE_REGISTER = "pipeline_register"
    OUTPUT_REGISTER = "output_register"
    BUS_SWITCH = "bus_switch"
    CONFIG_CACHE = "config_cache"


@dataclass(frozen=True)
class Component:
    """A pre-synthesised component with its area and critical-path delay.

    Attributes
    ----------
    name:
        Library-unique component name.
    kind:
        The :class:`ComponentKind`.
    area_slices:
        Area in FPGA slices (the unit used by the paper).
    delay_ns:
        Combinational critical-path delay contribution in nanoseconds.
    ports:
        For bus switches, the number of shared-resource ports served.
    description:
        Free-form description.
    """

    name: str
    kind: ComponentKind
    area_slices: float
    delay_ns: float
    ports: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if self.area_slices < 0:
            raise ComponentError(f"component {self.name!r} has negative area")
        if self.delay_ns < 0:
            raise ComponentError(f"component {self.name!r} has negative delay")


class ComponentLibrary:
    """A named collection of pre-synthesised components.

    The library is the single source of area/delay numbers for the cost
    model (:mod:`repro.core.cost_model`), the timing model
    (:mod:`repro.core.timing_model`) and the synthesis surrogate
    (:mod:`repro.synthesis`).
    """

    def __init__(self, components: Optional[Iterable[Component]] = None) -> None:
        self._components: Dict[str, Component] = {}
        for component in components or ():
            self.add(component)

    def add(self, component: Component) -> None:
        """Register ``component``; names must be unique."""
        if component.name in self._components:
            raise ComponentError(f"duplicate component name: {component.name!r}")
        self._components[component.name] = component

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def __len__(self) -> int:
        return len(self._components)

    def get(self, name: str) -> Component:
        """Return the component registered under ``name``."""
        try:
            return self._components[name]
        except KeyError as exc:
            raise ComponentError(f"unknown component: {name!r}") from exc

    def components(self) -> List[Component]:
        """All registered components."""
        return list(self._components.values())

    def of_kind(self, kind: ComponentKind) -> List[Component]:
        """All components of the given kind."""
        return [component for component in self._components.values() if component.kind is kind]

    # ------------------------------------------------------------------
    # Convenience accessors used throughout the models
    # ------------------------------------------------------------------
    @property
    def multiplexer(self) -> Component:
        return self.get("multiplexer")

    @property
    def alu(self) -> Component:
        return self.get("alu")

    @property
    def multiplier(self) -> Component:
        return self.get("array_multiplier")

    @property
    def shifter(self) -> Component:
        return self.get("shift_logic")

    @property
    def pipeline_register(self) -> Component:
        return self.get("pipeline_register")

    def bus_switch(self, ports: int) -> Component:
        """Bus switch serving ``ports`` shared-resource ports.

        Ports 1–4 come from the calibrated variants (paper Table 2 lists the
        per-PE switch area/delay for the four RS/RSP designs); larger port
        counts are extrapolated linearly from the last two calibrated
        points.
        """
        if ports <= 0:
            raise ComponentError(f"bus switch needs at least one port, got {ports}")
        name = f"bus_switch_{ports}p"
        if name in self._components:
            return self.get(name)
        calibrated = sorted(
            (component for component in self.of_kind(ComponentKind.BUS_SWITCH)),
            key=lambda component: component.ports,
        )
        if len(calibrated) < 2:
            raise ComponentError("component library has no calibrated bus switches")
        last, previous = calibrated[-1], calibrated[-2]
        area_step = last.area_slices - previous.area_slices
        delay_step = last.delay_ns - previous.delay_ns
        extra = ports - last.ports
        return Component(
            name=name,
            kind=ComponentKind.BUS_SWITCH,
            area_slices=last.area_slices + extra * area_step,
            delay_ns=last.delay_ns + extra * delay_step,
            ports=ports,
            description="extrapolated bus switch",
        )


#: Paper Table 1: PE synthesis result used as the calibration point.
PAPER_PE_AREA_SLICES = 910.0
PAPER_PE_CRITICAL_PATH_NS = 25.6

#: Paper Table 2: per-PE area of the PE variant without the shared
#: multiplier (the "PE" column of the RS/RSP rows).
PAPER_SHARED_PE_AREA_SLICES = 489.0

#: Paper Table 2: critical path of the pipelined PE (the "PE" column of the
#: RSP rows).
PAPER_PIPELINED_PE_PATH_NS = 15.3

#: Paper Table 2: base-architecture array critical path (26 ns) exceeds the
#: PE path by a wiring margin.
PAPER_ARRAY_WIRING_MARGIN_NS = PAPER_PE_CRITICAL_PATH_NS and 0.4


def default_component_library() -> ComponentLibrary:
    """Build the component library calibrated to the paper's Tables 1 and 2.

    The multiplexer/ALU/multiplier/shifter rows are the published Table 1
    values.  The bus-switch variants reproduce the per-PE switch area and
    delay of the four sharing designs in Table 2 (10/34/55/68 slices and
    0.7/1.2/1.8/2.0 ns for 1–4 ports).  The pipeline register models the
    register inserted into the multiplier for the two-stage RSP designs and
    the per-PE operand registers (``Regarea`` in paper Eq. 2); its area is
    calibrated from the RSP-vs-RS array area difference in Table 2
    (roughly 800 slices over 64 PEs ≈ 12 slices per PE).
    """
    library = ComponentLibrary()
    library.add(
        Component(
            name="multiplexer",
            kind=ComponentKind.MULTIPLEXER,
            area_slices=58.0,
            delay_ns=1.3,
            description="operand multiplexer (paper Table 1)",
        )
    )
    library.add(
        Component(
            name="alu",
            kind=ComponentKind.ALU,
            area_slices=253.0,
            delay_ns=11.5,
            description="16-bit ALU (paper Table 1)",
        )
    )
    library.add(
        Component(
            name="array_multiplier",
            kind=ComponentKind.MULTIPLIER,
            area_slices=416.0,
            delay_ns=19.7,
            description="16x16 array multiplier (paper Table 1); the area- and delay-critical resource",
        )
    )
    library.add(
        Component(
            name="shift_logic",
            kind=ComponentKind.SHIFTER,
            area_slices=156.0,
            delay_ns=2.5,
            description="shift logic (paper Table 1)",
        )
    )
    library.add(
        Component(
            name="pipeline_register",
            kind=ComponentKind.PIPELINE_REGISTER,
            area_slices=12.0,
            delay_ns=0.4,
            description="pipeline/operand register added for RSP designs (calibrated to Table 2)",
        )
    )
    library.add(
        Component(
            name="output_register",
            kind=ComponentKind.OUTPUT_REGISTER,
            area_slices=27.0,
            delay_ns=2.1,
            description="PE output register and glue; closes the gap between the component sum and the PE total of Table 1",
        )
    )
    for ports, (area, delay) in {
        1: (10.0, 0.7),
        2: (34.0, 1.2),
        3: (55.0, 1.8),
        4: (68.0, 2.0),
    }.items():
        library.add(
            Component(
                name=f"bus_switch_{ports}p",
                kind=ComponentKind.BUS_SWITCH,
                area_slices=area,
                delay_ns=delay,
                ports=ports,
                description=f"bus switch with {ports} shared-resource port(s) (paper Table 2)",
            )
        )
    library.add(
        Component(
            name="config_cache",
            kind=ComponentKind.CONFIG_CACHE,
            area_slices=0.0,
            delay_ns=0.0,
            description="per-PE configuration cache; its block RAM does not consume slices",
        )
    )
    return library
