"""Processing-element structural model.

A processing element (PE) of the base architecture contains an operand
multiplexer, an ALU, an array multiplier and shift logic (paper Table 1).
Under resource sharing the multiplier is removed from the PE and accessed
through the bus switch; under resource pipelining the PE gains operand /
pipeline registers.  :class:`PEConfig` captures which units are local to
the PE, and :class:`ProcessingElement` instantiates one PE at a grid
position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ArchitectureError
from repro.ir.dfg import OpType


@dataclass(frozen=True)
class PEConfig:
    """Which functional units a PE contains locally.

    Attributes
    ----------
    has_multiplier:
        True for the base architecture; False when the multiplier is
        extracted as a shared resource.
    has_alu / has_shifter / has_multiplexer:
        Primitive resources; present in every paper configuration.
    has_pipeline_registers:
        True for RSP designs (registers that hold operands while a shared
        pipelined multiplier produces the result).
    """

    has_multiplier: bool = True
    has_alu: bool = True
    has_shifter: bool = True
    has_multiplexer: bool = True
    has_pipeline_registers: bool = False

    def local_unit_names(self) -> List[str]:
        """Component-library names of the units inside the PE."""
        names: List[str] = []
        if self.has_multiplexer:
            names.append("multiplexer")
        if self.has_alu:
            names.append("alu")
        if self.has_multiplier:
            names.append("array_multiplier")
        if self.has_shifter:
            names.append("shift_logic")
        if self.has_pipeline_registers:
            names.append("pipeline_register")
        return names

    def supports_locally(self, optype: OpType) -> bool:
        """True when the PE can execute ``optype`` without a shared resource."""
        if optype.is_multiplication:
            return self.has_multiplier
        if optype.is_alu:
            return self.has_alu
        if optype.is_shift:
            return self.has_shifter
        if optype in (OpType.LOAD, OpType.STORE, OpType.CONST, OpType.NOP):
            return True
        return False


@dataclass(frozen=True)
class ProcessingElement:
    """One PE instance at grid position ``(row, col)``."""

    row: int
    col: int
    config: PEConfig = field(default_factory=PEConfig)

    def __post_init__(self) -> None:
        if self.row < 0 or self.col < 0:
            raise ArchitectureError("PE coordinates must be non-negative")

    @property
    def position(self) -> Tuple[int, int]:
        """The (row, col) grid position."""
        return (self.row, self.col)

    @property
    def name(self) -> str:
        """Readable identifier, e.g. ``PE[2][5]``."""
        return f"PE[{self.row}][{self.col}]"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name
