"""Row data buses and the shared-resource bus switch.

Paper Figure 1(b) shows that every row of the array shares read/write data
buses with the data memory (two read buses and one write bus per row in the
running example).  Paper Figure 4 shows the bus switch that routes a PE's
operands to a shared multiplier and the 2n-bit product back to the issuing
PE.

These are small structural descriptions; the scheduling consequences (at
most ``read_buses`` loads and ``write_buses`` stores per row per cycle, one
multiplication issue per shared multiplier per cycle) are enforced by the
mapper in :mod:`repro.mapping`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArchitectureError


@dataclass(frozen=True)
class RowBusSpec:
    """Read/write data buses shared by the PEs of one row.

    Attributes
    ----------
    read_buses:
        Number of read buses per row (operand fetches per cycle per row).
    write_buses:
        Number of write buses per row (result stores per cycle per row).
    width_bits:
        Data width of each bus.
    """

    read_buses: int = 2
    write_buses: int = 1
    width_bits: int = 16

    def __post_init__(self) -> None:
        if self.read_buses < 0 or self.write_buses < 0:
            raise ArchitectureError("bus counts must be non-negative")
        if self.width_bits <= 0:
            raise ArchitectureError("bus width must be positive")

    @property
    def total_buses(self) -> int:
        """Total number of buses attached to one row."""
        return self.read_buses + self.write_buses


@dataclass(frozen=True)
class BusSwitchSpec:
    """The per-PE bus switch of paper Figure 4.

    A switch connects the two n-bit operand outputs of a PE to the shared
    resources it can reach and returns the 2n-bit result.  ``ports`` is the
    number of shared resources reachable from the PE (row-shared plus
    column-shared), which determines the switch's area and delay in the
    component library.
    """

    ports: int
    operand_width_bits: int = 16

    def __post_init__(self) -> None:
        if self.ports < 0:
            raise ArchitectureError("bus switch port count must be non-negative")
        if self.operand_width_bits <= 0:
            raise ArchitectureError("operand width must be positive")

    @property
    def result_width_bits(self) -> int:
        """Width of the result path (2n bits for an n x n multiplier)."""
        return 2 * self.operand_width_bits
