"""Configuration cache and configuration words.

In the paper's template a configuration cache is attached to every PE
(unlike Morphosys' SIMD broadcast) so each PE can follow its own control
stream — this is what enables loop-pipelining execution.  The compile-time
mapping of operations to shared multipliers is "annotated to the
configuration instructions" (paper Section 3.1); at run time the control
signal from the configuration cache steers the bus switch.

:class:`ConfigurationWord` is the per-PE, per-cycle control word produced
by the mapper; :class:`ConfigurationContext` is the complete context for a
kernel (one word per PE per cycle) and is what the functional simulator
executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.ir.dfg import OpType


@dataclass(frozen=True)
class ConfigurationWord:
    """Control word for one PE in one cycle.

    Attributes
    ----------
    opcode:
        Operation the PE issues this cycle, or ``None`` for an idle cycle.
    operation_name:
        Name of the DFG operation (for traceability).
    operands:
        Names of the producing operations whose results feed this operation.
    uses_shared_resource:
        True when the operation is routed through the bus switch to a
        shared resource.
    shared_resource_id:
        Identifier of the shared resource used (``("row", r, j)`` or
        ``("col", c, j)``), when applicable.
    immediate:
        Constant operand stored in the configuration word.
    array / index:
        Memory access target for load/store words.
    """

    opcode: Optional[OpType] = None
    operation_name: Optional[str] = None
    operands: Tuple[str, ...] = ()
    uses_shared_resource: bool = False
    shared_resource_id: Optional[Tuple[str, int, int]] = None
    immediate: Optional[int] = None
    array: Optional[str] = None
    index: Optional[int] = None

    @property
    def is_idle(self) -> bool:
        """True when the PE does nothing this cycle."""
        return self.opcode is None

    def __post_init__(self) -> None:
        if self.uses_shared_resource and self.shared_resource_id is None:
            raise ConfigurationError(
                "configuration word marked as using a shared resource must "
                "name the shared resource"
            )


IDLE_WORD = ConfigurationWord()


class ConfigurationContext:
    """The full configuration context of a mapped kernel.

    The context is indexed by cycle and PE position; missing entries are
    idle.  The paper calls the pre-RSP version the *initial configuration
    context* and the post-rearrangement version the *RSP configuration
    context*.
    """

    def __init__(self, rows: int, cols: int, name: str = "context") -> None:
        if rows <= 0 or cols <= 0:
            raise ConfigurationError("context dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.name = name
        self._words: Dict[Tuple[int, int, int], ConfigurationWord] = {}
        self._num_cycles = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def set_word(self, cycle: int, row: int, col: int, word: ConfigurationWord) -> None:
        """Install ``word`` for PE ``(row, col)`` at ``cycle``."""
        self._check_position(row, col)
        if cycle < 0:
            raise ConfigurationError(f"cycle must be non-negative, got {cycle}")
        key = (cycle, row, col)
        if key in self._words and not self._words[key].is_idle and not word.is_idle:
            raise ConfigurationError(
                f"PE ({row},{col}) already has an operation at cycle {cycle}"
            )
        self._words[key] = word
        self._num_cycles = max(self._num_cycles, cycle + 1)

    def _check_position(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ConfigurationError(
                f"PE position ({row},{col}) outside {self.rows}x{self.cols} array"
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_cycles(self) -> int:
        """Number of cycles the context spans."""
        return self._num_cycles

    def word(self, cycle: int, row: int, col: int) -> ConfigurationWord:
        """The configuration word for PE ``(row, col)`` at ``cycle``."""
        self._check_position(row, col)
        return self._words.get((cycle, row, col), IDLE_WORD)

    def words_at(self, cycle: int) -> List[Tuple[Tuple[int, int], ConfigurationWord]]:
        """All non-idle words issued at ``cycle`` as ((row, col), word) pairs."""
        result = []
        for (word_cycle, row, col), word in sorted(self._words.items()):
            if word_cycle == cycle and not word.is_idle:
                result.append(((row, col), word))
        return result

    def active_words(self) -> Iterator[Tuple[int, Tuple[int, int], ConfigurationWord]]:
        """Iterate over (cycle, (row, col), word) for all non-idle words."""
        for (cycle, row, col), word in sorted(self._words.items()):
            if not word.is_idle:
                yield cycle, (row, col), word

    def active_word_count(self) -> int:
        """Number of non-idle configuration words."""
        return sum(1 for word in self._words.values() if not word.is_idle)

    def utilisation(self) -> float:
        """Fraction of PE-cycles that issue an operation."""
        total = self.num_cycles * self.rows * self.cols
        if total == 0:
            return 0.0
        return self.active_word_count() / total

    def storage_bits(self, bits_per_word: int = 32) -> int:
        """Estimated configuration storage for the whole context."""
        return self.num_cycles * self.rows * self.cols * bits_per_word

    def renamed(self, name: str) -> "ConfigurationContext":
        """Shallow copy of this context under a different name.

        The immutable configuration words are shared; only the container
        is rebuilt (used when a cached context is served for a structurally
        identical design point with a different name).
        """
        clone = ConfigurationContext(self.rows, self.cols, name=name)
        clone._words = dict(self._words)
        clone._num_cycles = self._num_cycles
        return clone


@dataclass
class ConfigurationCacheSpec:
    """Per-PE configuration cache dimensioning.

    Attributes
    ----------
    depth:
        Number of configuration words the cache can hold.
    word_bits:
        Width of a configuration word.
    """

    depth: int = 32
    word_bits: int = 32

    def __post_init__(self) -> None:
        if self.depth <= 0 or self.word_bits <= 0:
            raise ConfigurationError("configuration cache dimensions must be positive")

    @property
    def size_bits(self) -> int:
        """Total storage of one PE's configuration cache."""
        return self.depth * self.word_bits

    def fits(self, context: ConfigurationContext) -> bool:
        """True when the context fits in the per-PE cache depth."""
        return context.num_cycles <= self.depth
