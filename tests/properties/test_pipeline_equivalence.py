"""Pipeline ↔ seed-mapper equivalence across all four kernel suites.

The staged pipeline (and therefore the :class:`RSPMapper` facade over it)
must be a pure refactor: for every kernel and design point it has to
produce a :class:`MappingResult` bit-identical to the seed's monolithic
``RSPMapper.map_kernel`` — same cycle counts, same stalls, same schedule
entries, same configuration context — both with a cold artifact store and
with a warm one (where every stage is fetched instead of computed).

``SeedRSPMapper`` below is a literal port of the seed implementation so
the reference stays fixed even as the production mapper evolves.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch import base_architecture, rs_architecture, rsp_architecture
from repro.arch.template import ArchitectureSpec, PipeliningSpec, SharingTopology
from repro.engine.artifacts import ArtifactStore
from repro.engine.jobs import SUITE_NAMES, suite_kernels
from repro.kernels import get_kernel
from repro.mapping import MappingPipeline, MappingResult
from repro.mapping.context_gen import generate_context
from repro.mapping.loop_pipelining import LoopPipeliningScheduler
from repro.mapping.rearrange import (
    RearrangementResult,
    evaluate_rearrangement,
    rearrange_schedule,
)


class SeedRSPMapper:
    """The seed's monolithic mapper, ported verbatim as the reference."""

    def __init__(self, base=None, generate_contexts=False):
        self.base = base or base_architecture()
        self.generate_contexts = generate_contexts
        self._dfg_cache = {}
        self._base_schedule_cache = {}

    def build_dfg(self, kernel, iterations=None):
        key = f"{kernel.name}@{iterations or kernel.iterations}"
        if key not in self._dfg_cache:
            self._dfg_cache[key] = kernel.build(iterations)
        return self._dfg_cache[key]

    def base_schedule(self, kernel, iterations=None):
        key = f"{kernel.name}@{iterations or kernel.iterations}"
        if key not in self._base_schedule_cache:
            dfg = self.build_dfg(kernel, iterations)
            scheduler = LoopPipeliningScheduler(self.base)
            self._base_schedule_cache[key] = scheduler.schedule(dfg, kernel_name=kernel.name)
        return self._base_schedule_cache[key]

    def map_kernel(self, kernel, architecture=None, iterations=None):
        target = architecture or self.base
        dfg = self.build_dfg(kernel, iterations)
        base_schedule = self.base_schedule(kernel, iterations)
        if target.is_base:
            schedule = base_schedule
            summary = RearrangementResult(
                kernel=kernel.name,
                architecture=target.name,
                base_cycles=base_schedule.length,
                stall_free_cycles=base_schedule.length,
                cycles=base_schedule.length,
            )
        else:
            schedule = rearrange_schedule(base_schedule, dfg, target)
            summary = evaluate_rearrangement(base_schedule, dfg, target)
        context = generate_context(schedule, dfg) if self.generate_contexts else None
        return MappingResult(
            kernel=kernel.name,
            architecture=target,
            dfg=dfg,
            base_schedule=base_schedule,
            schedule=schedule,
            cycles=summary.cycles,
            stall_cycles=summary.stall_cycles,
            base_cycles=summary.base_cycles,
            context=context,
        )


def schedule_signature(schedule):
    return [
        (
            entry.name,
            entry.cycle,
            entry.row,
            entry.col,
            entry.latency,
            entry.pe_occupancy,
            entry.shared_unit,
        )
        for entry in schedule.operations()
    ]


def assert_results_identical(expected: MappingResult, actual: MappingResult) -> None:
    assert actual.kernel == expected.kernel
    assert actual.cycles == expected.cycles
    assert actual.stall_cycles == expected.stall_cycles
    assert actual.base_cycles == expected.base_cycles
    assert schedule_signature(actual.base_schedule) == schedule_signature(expected.base_schedule)
    assert schedule_signature(actual.schedule) == schedule_signature(expected.schedule)
    if expected.context is None:
        assert actual.context is None
    else:
        assert list(actual.context.active_words()) == list(expected.context.active_words())
        assert actual.context.num_cycles == expected.context.num_cycles


@pytest.mark.parametrize("suite", SUITE_NAMES)
def test_pipeline_matches_seed_mapper_cold_and_warm(suite, tmp_path_factory):
    """Every suite kernel, on base and RSP#2, cold store then warm store."""
    store_dir = tmp_path_factory.mktemp(f"artifacts_{suite}")
    seed = SeedRSPMapper(generate_contexts=True)
    cold = MappingPipeline(store=ArtifactStore(store_dir), generate_contexts=True)
    warm = MappingPipeline(store=ArtifactStore(store_dir), generate_contexts=True)

    architectures = (base_architecture(), rsp_architecture(2))
    for kernel in suite_kernels(suite):
        for architecture in architectures:
            expected = seed.map_kernel(kernel, architecture)
            assert_results_identical(expected, cold.run(kernel, architecture))
            assert_results_identical(expected, warm.run(kernel, architecture))

    # The warm pipeline was served entirely from the cold run's artifacts.
    for stage in ("base_schedule", "rearrange", "generate_context"):
        assert warm.stats.timing(stage).misses == 0
        assert warm.stats.timing(stage).hits > 0
    assert warm.store.stats.misses == 0


@st.composite
def design_points(draw):
    rows_shared = draw(st.integers(min_value=0, max_value=3))
    cols_shared = draw(st.integers(min_value=0, max_value=2))
    stages = draw(st.integers(min_value=1, max_value=3))
    if rows_shared == 0 and cols_shared == 0:
        # No sharing: either the base point or a pipelined-only (RP) design.
        return ArchitectureSpec(
            name="candidate",
            array=base_architecture().array,
            pipelining=PipeliningSpec(stages=stages),
        )
    return ArchitectureSpec(
        name="candidate",
        array=base_architecture().array,
        sharing=SharingTopology(rows_shared=rows_shared, cols_shared=cols_shared),
        pipelining=PipeliningSpec(stages=stages),
    )


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    kernel_name=st.sampled_from(["MVM", "Hydro", "SAD", "Inner product"]),
    architecture=design_points(),
    iterations=st.integers(min_value=2, max_value=8),
)
def test_pipeline_matches_seed_mapper_on_random_points(kernel_name, architecture, iterations):
    kernel = get_kernel(kernel_name)
    expected = SeedRSPMapper(generate_contexts=True).map_kernel(
        kernel, architecture, iterations=iterations
    )
    pipeline = MappingPipeline(generate_contexts=True)
    assert_results_identical(expected, pipeline.run(kernel, architecture, iterations=iterations))
    # A second run of the same pipeline is memoised and still identical.
    assert_results_identical(expected, pipeline.run(kernel, architecture, iterations=iterations))
