"""Property tests: vectorized evaluation ≡ scalar models, bulk ≡ sequential frontier.

The scalar explorer is the oracle.  Over random schedule profiles and
random (valid) RSP parameter grids, the :class:`BatchEvaluator` must
produce *equal* ``DesignPointEvaluation`` objects — same architecture
specs, bitwise-identical floats, same stall dictionaries — because every
arithmetic operation is ordered exactly as in the scalar models.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import BatchEvaluator
from repro.core.exploration import RSPDesignSpaceExplorer
from repro.core.rsp_params import RSPParameters
from repro.core.stalls import CriticalOpIssue, ScheduleProfile
from repro.engine.frontier import ParetoFrontier

pytest.importorskip("numpy")


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def schedule_profile(draw, kernel: str):
    issues = draw(
        st.lists(
            st.builds(
                CriticalOpIssue,
                cycle=st.integers(min_value=0, max_value=6),
                row=st.integers(min_value=0, max_value=3),
                col=st.integers(min_value=0, max_value=3),
                iteration=st.integers(min_value=0, max_value=9),
                has_immediate_dependent=st.booleans(),
            ),
            max_size=24,
        )
    )
    max_cycle = max((issue.cycle for issue in issues), default=0)
    length = draw(st.integers(min_value=max_cycle + 1, max_value=max_cycle + 8))
    return ScheduleProfile(
        kernel=kernel, length=length, critical_issues=tuple(issues), rows=4, cols=4
    )


@st.composite
def profile_set(draw):
    count = draw(st.integers(min_value=1, max_value=3))
    return {
        f"k{index}": draw(schedule_profile(f"k{index}")) for index in range(count)
    }


@st.composite
def rsp_candidate(draw):
    kind = draw(st.sampled_from(["base", "rs", "rp", "rsp"]))
    if kind == "base":
        return RSPParameters()
    if kind == "rp":
        return RSPParameters(
            pipelined_resources=("array_multiplier",),
            pipeline_stages=draw(st.integers(min_value=2, max_value=4)),
        )
    shr = draw(st.integers(min_value=0, max_value=4))
    shc = draw(st.integers(min_value=0 if shr else 1, max_value=4))
    if kind == "rs":
        return RSPParameters(
            shared_resources=("array_multiplier",), rows_shared=shr, cols_shared=shc
        )
    return RSPParameters(
        shared_resources=("array_multiplier",),
        pipelined_resources=("array_multiplier",),
        pipeline_stages=draw(st.integers(min_value=2, max_value=4)),
        rows_shared=shr,
        cols_shared=shc,
    )


candidate_grid = st.lists(rsp_candidate(), min_size=1, max_size=12)


# ----------------------------------------------------------------------
# Vectorized ≡ scalar
# ----------------------------------------------------------------------
@given(profiles=profile_set(), grid=candidate_grid)
@settings(max_examples=40, deadline=None)
def test_vectorized_equals_scalar(profiles, grid):
    explorer = RSPDesignSpaceExplorer(profiles)
    evaluator = BatchEvaluator.from_explorer(explorer)
    assert evaluator is not None
    vectorized = evaluator.evaluate(grid)
    scalar = [explorer.evaluate(candidate) for candidate in grid]
    assert vectorized == scalar
    for expected, actual in zip(scalar, vectorized):
        assert actual.area_slices == expected.area_slices
        assert actual.critical_path_ns == expected.critical_path_ns
        assert actual.total_stall_cycles == expected.total_stall_cycles
        assert actual.total_execution_time_ns == expected.total_execution_time_ns


# ----------------------------------------------------------------------
# Bulk frontier insertion ≡ sequential insertion
# ----------------------------------------------------------------------
vector2 = st.tuples(
    st.integers(min_value=0, max_value=12), st.integers(min_value=0, max_value=12)
)
vector3 = st.tuples(
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=6),
)


@given(existing=st.lists(vector2, max_size=12), incoming=st.lists(vector2, max_size=12))
@settings(max_examples=80, deadline=None)
def test_add_many_matches_sequential_adds_2d(existing, incoming):
    sequential = ParetoFrontier(num_objectives=2)
    bulk = ParetoFrontier(num_objectives=2)
    for vector in existing:
        sequential.add(vector)
        bulk.add(vector)
    for vector in incoming:
        sequential.add(vector)
    bulk.add_many(incoming)
    assert bulk.vectors() == sequential.vectors()


@given(existing=st.lists(vector3, max_size=10), incoming=st.lists(vector3, max_size=10))
@settings(max_examples=60, deadline=None)
def test_add_many_matches_sequential_adds_3d(existing, incoming):
    sequential = ParetoFrontier(num_objectives=3)
    bulk = ParetoFrontier(num_objectives=3)
    for vector in existing:
        sequential.add(vector)
        bulk.add(vector)
    for vector in incoming:
        sequential.add(vector)
    bulk.add_many(incoming)
    assert sorted(bulk.vectors()) == sorted(sequential.vectors())


@given(incoming=st.lists(vector2, max_size=12))
@settings(max_examples=60, deadline=None)
def test_add_many_count_equals_surviving_new_entries(incoming):
    frontier = ParetoFrontier(num_objectives=2)
    frontier.add((6, 6))
    before = frontier.vectors()
    added = frontier.add_many(incoming)
    after = frontier.vectors()
    # Every reported addition is present, and the survivors of the old
    # front account for the rest.
    kept_old = sum(1 for vector in before if vector in after)
    assert added == len(after) - kept_old
