"""Property-based tests on the cost/timing models and the design space."""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.arch import (
    ArchitectureSpec,
    PipeliningSpec,
    SharingTopology,
    base_architecture,
    default_array_spec,
)
from repro.core import HardwareCostModel, TimingModel
from repro.core.rsp_params import RSPParameters

cost_model = HardwareCostModel()
timing_model = TimingModel()


@st.composite
def sharing_design(draw):
    """A random sharing/pipelining design point on the 8x8 array."""
    rows_shared = draw(st.integers(min_value=0, max_value=3))
    cols_shared = draw(st.integers(min_value=0, max_value=3))
    assume(rows_shared + cols_shared > 0)
    stages = draw(st.integers(min_value=1, max_value=4))
    return ArchitectureSpec(
        name=f"gen(shr={rows_shared},shc={cols_shared},st={stages})",
        array=default_array_spec(),
        sharing=SharingTopology(rows_shared=rows_shared, cols_shared=cols_shared),
        pipelining=PipeliningSpec(stages=stages),
    )


@given(sharing_design())
@settings(max_examples=60, deadline=None)
def test_area_breakdown_components_sum_to_total(spec):
    breakdown = cost_model.breakdown(spec)
    assert breakdown.array_total > 0
    assert breakdown.array_total == (
        breakdown.pe_total
        + breakdown.switch_total
        + breakdown.register_total
        + breakdown.shared_total
    )


@given(sharing_design())
@settings(max_examples=60, deadline=None)
def test_shared_pe_is_smaller_than_full_pe(spec):
    assert cost_model.shared_pe_area(spec) < cost_model.full_pe_area()


@given(sharing_design())
@settings(max_examples=60, deadline=None)
def test_critical_path_is_positive_and_bounded(spec):
    period = timing_model.critical_path_ns(spec)
    assert 0 < period < 100
    # A pipelined design never has a longer critical path than its
    # combinational counterpart with the same sharing topology.
    combinational = ArchitectureSpec(
        name="comb",
        array=spec.array,
        sharing=spec.sharing,
        pipelining=PipeliningSpec(stages=1),
    )
    if spec.pipelining.is_pipelined:
        assert period <= timing_model.critical_path_ns(combinational) + 1e-9


@given(sharing_design())
@settings(max_examples=60, deadline=None)
def test_adding_shared_resources_adds_area(spec):
    richer = ArchitectureSpec(
        name="richer",
        array=spec.array,
        sharing=SharingTopology(
            rows_shared=spec.sharing.rows_shared + 1, cols_shared=spec.sharing.cols_shared
        ),
        pipelining=spec.pipelining,
    )
    assert cost_model.array_area(richer) > cost_model.array_area(spec)


@given(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_rsp_parameters_round_trip_through_architecture(rows_shared, cols_shared, stages):
    assume(rows_shared + cols_shared > 0)
    parameters = RSPParameters(
        shared_resources=("array_multiplier",),
        pipelined_resources=("array_multiplier",) if stages > 1 else (),
        pipeline_stages=stages,
        rows_shared=rows_shared,
        cols_shared=cols_shared,
    )
    spec = parameters.to_architecture()
    assert spec.sharing.rows_shared == rows_shared
    assert spec.sharing.cols_shared == cols_shared
    assert spec.multiplier_latency == (stages if stages > 1 else 1)
    assert spec.kind == parameters.kind


@given(sharing_design())
@settings(max_examples=40, deadline=None)
def test_area_reduction_consistent_with_absolute_areas(spec):
    base = base_architecture()
    reduction = cost_model.area_reduction_percent(spec, base)
    smaller = cost_model.array_area(spec) < cost_model.array_area(base)
    assert (reduction > 0) == smaller
