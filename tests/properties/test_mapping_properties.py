"""Property-based tests on the mapper and rearrangement invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import base_architecture, rs_architecture, rsp_architecture
from repro.ir import DFGBuilder, OpType
from repro.mapping.loop_pipelining import LoopPipeliningScheduler
from repro.mapping.rearrange import evaluate_rearrangement, rearrange_schedule
from repro.sim import ArraySimulator, DataMemory


@st.composite
def random_kernel_dfg(draw):
    """A random multi-iteration kernel: loads feed a random expression tree."""
    builder = DFGBuilder("random_kernel")
    iterations = draw(st.integers(min_value=1, max_value=6))
    optypes = [OpType.ADD, OpType.SUB, OpType.MUL, OpType.MUL]  # bias towards mults
    for iteration in range(iterations):
        builder.set_iteration(iteration)
        values = [
            builder.load("x", iteration * 8 + index)
            for index in range(draw(st.integers(min_value=2, max_value=5)))
        ]
        for _ in range(draw(st.integers(min_value=1, max_value=6))):
            left = draw(st.sampled_from(values))
            right = draw(st.sampled_from(values))
            values.append(builder.binary(draw(st.sampled_from(optypes)), left, right))
        builder.store("out", iteration, values[-1])
    return builder.build()


architectures = st.sampled_from(
    [
        base_architecture(),
        rs_architecture(1),
        rs_architecture(2),
        rs_architecture(3),
        rs_architecture(4),
        rsp_architecture(1),
        rsp_architecture(2),
        rsp_architecture(4),
        rsp_architecture(2, stages=3),
    ]
)


@given(random_kernel_dfg(), architectures)
@settings(max_examples=25, deadline=None)
def test_scheduler_always_produces_valid_schedules(dfg, architecture):
    schedule = LoopPipeliningScheduler(architecture).schedule(dfg)
    schedule.validate(dfg)
    scheduled_count = sum(
        1 for op in dfg.operations() if op.optype not in (OpType.CONST, OpType.NOP)
    )
    assert len(schedule) == scheduled_count
    assert schedule.length >= dfg.depth()


@given(random_kernel_dfg(), architectures)
@settings(max_examples=20, deadline=None)
def test_rearrangement_is_valid_and_never_faster_than_base(dfg, target):
    base_schedule = LoopPipeliningScheduler(base_architecture()).schedule(dfg)
    rearranged = rearrange_schedule(base_schedule, dfg, target)
    rearranged.validate(dfg)
    assert rearranged.length >= base_schedule.length
    for entry in base_schedule.operations():
        assert rearranged.get(entry.name).position == entry.position
        assert rearranged.get(entry.name).cycle >= entry.cycle


@given(random_kernel_dfg(), architectures)
@settings(max_examples=20, deadline=None)
def test_stall_accounting_is_non_negative_and_additive(dfg, target):
    base_schedule = LoopPipeliningScheduler(base_architecture()).schedule(dfg)
    result = evaluate_rearrangement(base_schedule, dfg, target)
    assert result.stall_cycles >= 0
    assert result.pipeline_overhead_cycles >= 0
    assert result.cycles == result.base_cycles + result.pipeline_overhead_cycles + result.stall_cycles


@given(random_kernel_dfg())
@settings(max_examples=15, deadline=None)
def test_simulation_results_are_architecture_independent(dfg):
    """Sharing/pipelining changes timing, never the computed values."""
    memory_values = {"x": list(range(1, 64))}
    reference = None
    for architecture in (base_architecture(), rs_architecture(1), rsp_architecture(2)):
        schedule = LoopPipeliningScheduler(architecture).schedule(dfg)
        simulation = ArraySimulator().run(schedule, dfg, DataMemory(memory_values))
        values = simulation.memory.as_list("out")
        if reference is None:
            reference = values
        assert values == reference


@given(random_kernel_dfg(), st.integers(min_value=2, max_value=4))
@settings(max_examples=15, deadline=None)
def test_deeper_pipelines_never_shorten_the_schedule(dfg, stages):
    shallow = LoopPipeliningScheduler(rsp_architecture(4, stages=2)).schedule(dfg)
    deep = LoopPipeliningScheduler(rsp_architecture(4, stages=stages)).schedule(dfg)
    if stages >= 2:
        assert deep.length >= shallow.length or stages == 2
