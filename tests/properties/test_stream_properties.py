"""Property tests for the streaming layer: frontier checkpoints, event logs.

Two invariants the resume machinery leans on:

* frontier checkpoint/restore — snapshotting a :class:`ParetoFrontier`
  and restoring it (optionally continuing with more points) is exactly
  equivalent to building one frontier from the full point list.  This is
  what lets a resumed campaign rebuild its dominance state from the
  checkpoint instead of replaying every evaluation.
* event-log round trip — every emitted event parses back bit-identically
  under strict reading, and a well-formed emission order always replays
  (sequence numbers monotonic, wave bracketing intact, per-suite counts
  reproduced).
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.frontier import ParetoFrontier
from repro.engine.stream import EventLog, replay_events


@pytest.fixture()
def event_log_dir(tmp_path):
    """A per-test directory; each hypothesis example gets a fresh file."""
    return tmp_path

# Small coordinates with repeats so duplicate vectors and dominance ties
# actually occur; floats join in to cover mixed numeric payloads.
coordinates = st.one_of(
    st.integers(min_value=0, max_value=8),
    st.floats(min_value=0.0, max_value=8.0, allow_nan=False, width=32),
)
points = st.lists(st.tuples(coordinates, coordinates), max_size=60)


def full_rebuild(vectors) -> ParetoFrontier:
    frontier = ParetoFrontier(num_objectives=2)
    for vector in vectors:
        frontier.add(vector)
    return frontier


@given(points=points)
def test_frontier_restore_equals_full_rebuild(points):
    reference = full_rebuild(points)
    restored = ParetoFrontier.restore(reference.snapshot())
    assert restored.vectors() == reference.vectors()
    # The restored frontier answers dominance queries identically.
    for probe in points:
        assert restored.dominated(probe) == reference.dominated(probe)


@given(points=points, split=st.integers(min_value=0, max_value=60))
def test_checkpointed_frontier_continues_like_an_uninterrupted_one(points, split):
    """Snapshot mid-stream, restore, feed the rest: same frontier as one
    pass over the full list — the resume path's exact access pattern."""
    split = min(split, len(points))
    interrupted = full_rebuild(points[:split])
    resumed = ParetoFrontier.restore(interrupted.snapshot())
    for vector in points[split:]:
        resumed.add(vector)
    assert resumed.vectors() == full_rebuild(points).vectors()


@given(points=points)
def test_snapshot_is_json_shaped(points):
    snapshot = full_rebuild(points).snapshot()
    assert all(isinstance(vector, list) and len(vector) == 2 for vector in snapshot)


# ----------------------------------------------------------------------
# Event-log round trip
# ----------------------------------------------------------------------
suite_names = st.sampled_from(["paper", "livermore", "dsp", "h264"])
payload_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
#: Per-wave synthetic activity: (suite, results, frontier updates).
waves = st.lists(
    st.tuples(
        suite_names,
        st.integers(min_value=0, max_value=4),
        st.lists(st.tuples(coordinates, coordinates), max_size=3),
    ),
    max_size=12,
)


@settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(waves=waves, extra=st.dictionaries(st.text(max_size=10), payload_values, max_size=4))
def test_emitted_events_parse_and_replay(event_log_dir, waves, extra):
    path = Path(event_log_dir) / "events.jsonl"
    path.unlink(missing_ok=True)
    emitted = []
    with EventLog(path) as log:
        emitted.append(log.emit("campaign_start", campaign="prop", **extra))
        for wave_index, (suite, results, vectors) in enumerate(waves):
            emitted.append(log.emit("wave_start", suite=suite, wave=wave_index, jobs=results))
            for result_index in range(results):
                emitted.append(
                    log.emit(
                        "result",
                        suite=suite,
                        wave=wave_index,
                        key=f"k{wave_index}-{result_index}",
                        label=f"cand-{result_index}",
                        source="computed",
                        feasible=True,
                        area_slices=float(result_index),
                        execution_time_ns=float(wave_index),
                    )
                )
            for vector in vectors:
                emitted.append(
                    log.emit(
                        "frontier_update",
                        suite=suite,
                        key="k",
                        vector=[float(vector[0]), float(vector[1])],
                        size=1,
                    )
                )
            emitted.append(
                log.emit("wave_end", suite=suite, wave=wave_index, results=results, rejected=0)
            )
        emitted.append(log.emit("campaign_end", campaign="prop"))

    parsed = EventLog.read(path, strict=True)
    assert parsed == emitted  # bit-identical round trip, order preserved

    replay = replay_events(parsed)
    assert replay.events == len(emitted)
    assert replay.campaigns == 1
    assert replay.completed_campaigns == 1
    expected_waves: dict = {}
    expected_results: dict = {}
    expected_frontiers: dict = {}
    for suite, results, vectors in waves:
        expected_waves[suite] = expected_waves.get(suite, 0) + 1
        if results:
            expected_results[suite] = expected_results.get(suite, 0) + results
        for vector in vectors:
            frontier = expected_frontiers.setdefault(suite, ParetoFrontier())
            frontier.add((float(vector[0]), float(vector[1])))
    assert replay.waves_completed == expected_waves
    assert replay.results == expected_results
    for suite, frontier in expected_frontiers.items():
        assert replay.frontier_vectors(suite) == frontier.snapshot()
