"""Property tests for the unified storage layer.

Three store invariants, each checked for every backend:

* round trip — a stored payload is returned intact by ``get``,
* shard assignment stability — a persisted key is found again by a fresh
  backend regardless of interpreter restarts or shard-count changes,
* GC safety — a key that was just read is never evicted by an age sweep,
  no matter how old its original write is.

The remote and tiered backends get the same round-trip treatment against
one live :class:`~repro.service.StoreServer` (module-scoped; each
example writes into a fresh namespace), in both the per-key and the
batch code paths.
"""

from __future__ import annotations

import hashlib
import itertools
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service import StoreServer
from repro.store import (
    MemoryBackend,
    PickleDirBackend,
    RemoteBackend,
    ShardedJsonlBackend,
    StoreJanitor,
    TieredBackend,
    shard_index,
)

BACKEND_KINDS = ("memory", "jsonl", "pickle")
PERSISTENT_KINDS = ("jsonl", "pickle")


class FakeClock:
    def __init__(self) -> None:
        self.now = time.time()

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def hex_key(index: int) -> str:
    return hashlib.sha256(str(index).encode()).hexdigest()


def make_backend(kind: str, root: Path, clock=None, num_shards: int = 1):
    clock = clock or time.time
    if kind == "memory":
        return MemoryBackend(clock=clock)
    if kind == "jsonl":
        return ShardedJsonlBackend(root / "records.jsonl", num_shards=num_shards, clock=clock)
    return PickleDirBackend(root / "pickles", num_shards=num_shards, clock=clock)


# Field names avoid the backend-reserved "key"/"ns"/"ts" by alphabet.
scalars = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.booleans(),
    st.text(max_size=16),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)
payloads = st.dictionaries(
    st.text(alphabet="abcdef", min_size=1, max_size=8), scalars, max_size=5
)
key_ids = st.sets(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=12)
shard_counts = st.integers(min_value=1, max_value=8)


# ----------------------------------------------------------------------
# Round trip
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", BACKEND_KINDS)
@given(ids=key_ids, payload=payloads, shards=shard_counts)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_round_trip(kind, ids, payload, shards):
    with tempfile.TemporaryDirectory() as root:
        backend = make_backend(kind, Path(root), num_shards=shards)
        for index in ids:
            backend.put("ns", hex_key(index), dict(payload))
        for index in ids:
            hit, value = backend.get("ns", hex_key(index))
            assert hit
            # JSONL returns the record with its reserved bookkeeping
            # fields added; the payload itself must be intact.
            assert {name: value[name] for name in payload} == payload


@pytest.mark.parametrize("kind", BACKEND_KINDS)
@given(ids=key_ids, payload=payloads, shards=shard_counts)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_round_trip_survives_compaction(kind, ids, payload, shards):
    with tempfile.TemporaryDirectory() as root:
        backend = make_backend(kind, Path(root), num_shards=shards)
        for index in ids:
            backend.put("ns", hex_key(index), dict(payload))
        report = backend.compact()
        assert report.entries_kept == len(ids)
        for index in ids:
            hit, value = backend.get("ns", hex_key(index))
            assert hit
            assert {name: value[name] for name in payload} == payload


# ----------------------------------------------------------------------
# Round trip over the wire (remote + tiered backends)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def live_server(tmp_path_factory):
    root = tmp_path_factory.mktemp("service-store")
    with StoreServer(PickleDirBackend(root)) as server:
        yield server


#: Fresh namespace per hypothesis example so examples never collide on
#: the module-scoped server.
_namespace_ids = itertools.count()


@given(ids=key_ids, payload=payloads)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_remote_round_trip(live_server, ids, payload):
    namespace = f"prop-{next(_namespace_ids)}"
    client = RemoteBackend(live_server.url, strict=True)
    try:
        for index in ids:
            client.put(namespace, hex_key(index), dict(payload))
        for index in ids:
            hit, value = client.get(namespace, hex_key(index))
            assert hit
            assert value == payload
    finally:
        client.close()


@given(ids=key_ids, payload=payloads)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_remote_batch_round_trip(live_server, ids, payload):
    namespace = f"prop-{next(_namespace_ids)}"
    client = RemoteBackend(live_server.url, strict=True)
    try:
        records = {hex_key(index): dict(payload) for index in ids}
        assert client.put_many(namespace, records) == len(records)
        found = client.get_many(namespace, list(records))
        assert found == records
    finally:
        client.close()


@given(ids=key_ids, payload=payloads)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_tiered_round_trip_survives_the_flush(live_server, ids, payload):
    """What the write-behind tier buffers is what a fresh reader gets."""
    namespace = f"prop-{next(_namespace_ids)}"
    writer = TieredBackend(RemoteBackend(live_server.url, strict=True), auto_flush=False)
    try:
        for index in ids:
            writer.put(namespace, hex_key(index), dict(payload))
        for index in ids:  # served from the front, pre-flush
            hit, value = writer.get(namespace, hex_key(index))
            assert hit and value == payload
        writer.flush()
    finally:
        writer.close()
    reader = TieredBackend(RemoteBackend(live_server.url, strict=True), auto_flush=False)
    try:
        found = reader.get_many(namespace, [hex_key(index) for index in ids])
        assert found == {hex_key(index): payload for index in ids}
    finally:
        reader.close()


# ----------------------------------------------------------------------
# Shard assignment stability
# ----------------------------------------------------------------------
@given(ids=key_ids, shards=shard_counts)
@settings(max_examples=30, deadline=None)
def test_shard_index_is_a_pure_function(ids, shards):
    for index in ids:
        first = shard_index(hex_key(index), shards)
        assert 0 <= first < shards
        assert first == shard_index(hex_key(index), shards)


@pytest.mark.parametrize("kind", PERSISTENT_KINDS)
@given(ids=key_ids, shards=shard_counts)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_reopen_with_same_shards_finds_every_key(kind, ids, shards):
    with tempfile.TemporaryDirectory() as root:
        writer = make_backend(kind, Path(root), num_shards=shards)
        for index in ids:
            writer.put("ns", hex_key(index), {"v": index})
        reader = make_backend(kind, Path(root), num_shards=shards)
        for index in ids:
            assert reader.contains("ns", hex_key(index))
        assert getattr(reader, "corrupt_lines", 0) == 0


@pytest.mark.parametrize("kind", PERSISTENT_KINDS)
@given(ids=key_ids, write_shards=shard_counts, read_shards=shard_counts)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_reopen_with_different_shards_finds_every_key(kind, ids, write_shards, read_shards):
    """Shard-count changes (including legacy 1-shard dirs) stay warm."""
    with tempfile.TemporaryDirectory() as root:
        writer = make_backend(kind, Path(root), num_shards=write_shards)
        for index in ids:
            writer.put("ns", hex_key(index), {"v": index})
        reader = make_backend(kind, Path(root), num_shards=read_shards)
        for index in ids:
            hit, value = reader.get("ns", hex_key(index))
            assert hit and value["v"] == index


# ----------------------------------------------------------------------
# GC safety
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", BACKEND_KINDS)
@given(
    ids=st.sets(st.integers(min_value=0, max_value=10**6), min_size=2, max_size=12),
    read_mask=st.integers(min_value=1),
    age=st.floats(min_value=10.0, max_value=10**6),
    shards=shard_counts,
)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_gc_never_evicts_a_key_that_was_just_read(kind, ids, read_mask, age, shards):
    ordered = sorted(ids)
    read = {index for position, index in enumerate(ordered) if read_mask >> position & 1}
    with tempfile.TemporaryDirectory() as root:
        clock = FakeClock()
        backend = make_backend(kind, Path(root), clock=clock, num_shards=shards)
        for index in ordered:
            backend.put("ns", hex_key(index), {"v": index})
        clock.advance(age)
        for index in read:
            assert backend.get("ns", hex_key(index))[0]

        StoreJanitor(backend, max_age_seconds=age / 2).sweep()
        for index in ordered:
            if index in read:
                assert backend.contains("ns", hex_key(index)), (
                    "GC evicted a key that was read after the age cutoff"
                )
            else:
                assert not backend.contains("ns", hex_key(index))
