"""Property tests for the trace layer: EventLog backfill round-trips.

The backfill importer promises that a campaign journal and its trace-DB
backfill agree on the counts the dashboard reports: every emitted wave
becomes exactly one wave span and one ``wave.count`` increment, every
``result`` event one ``result.count`` increment (with its source and
feasibility mirrored), every ``frontier_update`` one ``frontier.updates``
increment — regardless of how waves, results and suites interleave.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.stream import EventLog
from repro.trace.collect import import_event_log

suite_names = st.sampled_from(["paper", "livermore", "dsp", "h264"])
sources = st.sampled_from(["computed", "cache", "checkpoint"])

#: One synthetic wave: (suite, [(source, feasible)...], frontier updates).
waves = st.lists(
    st.tuples(
        suite_names,
        st.lists(st.tuples(sources, st.booleans()), max_size=5),
        st.integers(min_value=0, max_value=3),
    ),
    max_size=10,
)


@pytest.fixture()
def journal_dir(tmp_path):
    return tmp_path


@settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(waves=waves, complete=st.booleans())
def test_backfill_round_trips_wave_and_result_counts(journal_dir, waves, complete):
    path = Path(journal_dir) / "events.jsonl"
    path.unlink(missing_ok=True)

    expected_counters: dict = {}

    def bump(name, value=1.0):
        expected_counters[name] = expected_counters.get(name, 0.0) + value

    with EventLog(path) as log:
        log.emit("campaign_start", campaign="prop", suites=sorted({w[0] for w in waves}))
        for wave_index, (suite, results, frontier_updates) in enumerate(waves):
            log.emit("wave_start", suite=suite, wave=wave_index, jobs=len(results))
            for result_index, (source, feasible) in enumerate(results):
                log.emit(
                    "result",
                    suite=suite,
                    wave=wave_index,
                    key=f"k{wave_index}-{result_index}",
                    label=f"cand-{result_index}",
                    source=source,
                    feasible=feasible,
                    area_slices=float(result_index),
                    execution_time_ns=float(wave_index),
                )
                bump("result.count")
                bump(f"result.source.{source}")
                if feasible:
                    bump("result.feasible")
            for update in range(frontier_updates):
                log.emit(
                    "frontier_update",
                    suite=suite,
                    key=f"k{wave_index}-{update}",
                    vector=[float(update), float(wave_index)],
                    size=update + 1,
                )
                bump("frontier.updates")
            log.emit(
                "wave_end",
                suite=suite,
                wave=wave_index,
                results=len(results),
                rejected=0,
                frontier_size=frontier_updates,
            )
            bump("wave.count")
        if complete:
            log.emit("campaign_end", campaign="prop", waves=len(waves))

    db, facts = import_event_log(path)
    try:
        assert facts["waves"] == len(waves)
        assert facts["results"] == sum(len(results) for _, results, _ in waves)
        # Every wave becomes exactly one span; the campaign span only
        # exists when the journal saw the campaign complete.
        assert db.span_count("wave") == len(waves)
        assert db.span_count("campaign") == (1 if complete else 0)
        assert facts["spans"] == len(waves) + (1 if complete else 0)
        assert db.counters() == expected_counters
        # Per-suite wave timelines partition the wave spans.
        suites = {suite for suite, _, _ in waves}
        assert sum(len(db.wave_timeline(suite)) for suite in suites) == len(waves)
        for suite in suites:
            timeline = db.wave_timeline(suite)
            expected_jobs = {
                index: len(results)
                for index, (s, results, _) in enumerate(waves)
                if s == suite
            }
            # Keyed by wave index — journal timestamps may tie, so the
            # start-order of near-simultaneous waves is not asserted.
            assert {
                span["attrs"]["wave"]: span["attrs"]["jobs"] for span in timeline
            } == expected_jobs
            assert all(
                span["attrs"]["results"] == span["attrs"]["jobs"] for span in timeline
            )
    finally:
        db.close()


@settings(max_examples=20, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(waves=waves)
def test_backfill_durations_are_nonnegative_and_ordered(journal_dir, waves):
    path = Path(journal_dir) / "events.jsonl"
    path.unlink(missing_ok=True)
    with EventLog(path) as log:
        log.emit("campaign_start", campaign="prop", suites=["dsp"])
        for wave_index, (suite, results, _) in enumerate(waves):
            log.emit("wave_start", suite=suite, wave=wave_index, jobs=len(results))
            log.emit(
                "wave_end", suite=suite, wave=wave_index, results=len(results), rejected=0
            )
        log.emit("campaign_end", campaign="prop")

    db, _ = import_event_log(path)
    try:
        spans = db.spans()
        assert all(span["duration_s"] >= 0.0 for span in spans)
        starts = [span["start_ts"] for span in db.spans(kind="wave")]
        assert starts == sorted(starts)
    finally:
        db.close()
