"""Property tests: the edge-expression DSL round-trips through its renderer.

Strategy: generate *canonical* ASTs — the shapes the parser itself
produces (no single-element chains or alternatives, no nested chains
inside chains) — render them, and require the parse of the rendering to
reproduce the AST exactly.  Canonical rendering is what flow configs are
persisted and diffed as, so ``parse ∘ render = id`` is a real contract,
not a curiosity.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.flowgraph.dsl import (
    Alt,
    Chain,
    Ref,
    parse_edges,
    parse_expression,
    render_edges,
    render_expression,
)

NAMES = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,5}", fullmatch=True)

REFS = st.builds(Ref, NAMES)

#: A branch of an alternative: a plain node or a chain of plain nodes
#: ("a >> (b >> c | d) >> e").
BRANCHES = REFS | st.lists(REFS, min_size=2, max_size=3).map(lambda items: Chain(tuple(items)))

ALTS = st.lists(BRANCHES, min_size=2, max_size=3).map(lambda items: Alt(tuple(items)))

#: A chain element: a plain node or a parenthesised alternative.
GROUPS = REFS | ALTS

CHAINS = st.lists(GROUPS, min_size=2, max_size=4).map(lambda items: Chain(tuple(items)))

EXPRESSIONS = REFS | ALTS | CHAINS


@given(EXPRESSIONS)
def test_parse_inverts_render(expression):
    assert parse_expression(render_expression(expression)) == expression


@given(EXPRESSIONS)
def test_rendering_is_a_fixed_point(expression):
    rendered = render_expression(expression)
    assert render_expression(parse_expression(rendered)) == rendered


@given(st.lists(EXPRESSIONS, min_size=1, max_size=3))
def test_edge_graphs_round_trip_through_their_expressions(expressions):
    graph = parse_edges([render_expression(e) for e in expressions])
    reparsed = parse_edges(render_edges(graph))
    assert reparsed.nodes == graph.nodes
    assert reparsed.edges == graph.edges
    assert reparsed.groups == graph.groups
    assert reparsed.expressions == graph.expressions


@given(st.lists(EXPRESSIONS, min_size=1, max_size=3))
def test_edges_never_duplicate_across_merged_expressions(expressions):
    graph = parse_edges([render_expression(e) for e in expressions])
    assert len(graph.edges) == len(set(graph.edges))
    assert len(graph.nodes) == len(set(graph.nodes))
