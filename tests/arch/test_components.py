"""Tests for the pre-synthesised component library."""

from __future__ import annotations

import pytest

from repro.arch.components import (
    Component,
    ComponentKind,
    ComponentLibrary,
    default_component_library,
)
from repro.errors import ComponentError


def test_default_library_matches_paper_table1(library):
    assert library.multiplexer.area_slices == 58
    assert library.multiplexer.delay_ns == pytest.approx(1.3)
    assert library.alu.area_slices == 253
    assert library.alu.delay_ns == pytest.approx(11.5)
    assert library.multiplier.area_slices == 416
    assert library.multiplier.delay_ns == pytest.approx(19.7)
    assert library.shifter.area_slices == 156
    assert library.shifter.delay_ns == pytest.approx(2.5)


def test_component_rejects_negative_values():
    with pytest.raises(ComponentError):
        Component("bad", ComponentKind.ALU, area_slices=-1, delay_ns=1)
    with pytest.raises(ComponentError):
        Component("bad", ComponentKind.ALU, area_slices=1, delay_ns=-1)


def test_duplicate_component_rejected():
    library = ComponentLibrary()
    library.add(Component("a", ComponentKind.ALU, 1, 1))
    with pytest.raises(ComponentError):
        library.add(Component("a", ComponentKind.ALU, 2, 2))


def test_unknown_component_lookup():
    with pytest.raises(ComponentError):
        ComponentLibrary().get("ghost")


def test_of_kind_filters(library):
    multipliers = library.of_kind(ComponentKind.MULTIPLIER)
    assert [component.name for component in multipliers] == ["array_multiplier"]


def test_bus_switch_calibrated_variants(library):
    assert library.bus_switch(1).area_slices == 10
    assert library.bus_switch(1).delay_ns == pytest.approx(0.7)
    assert library.bus_switch(2).area_slices == 34
    assert library.bus_switch(3).area_slices == 55
    assert library.bus_switch(4).area_slices == 68
    assert library.bus_switch(4).delay_ns == pytest.approx(2.0)


def test_bus_switch_extrapolates_beyond_calibration(library):
    five_port = library.bus_switch(5)
    assert five_port.area_slices > library.bus_switch(4).area_slices
    assert five_port.delay_ns >= library.bus_switch(4).delay_ns
    six_port = library.bus_switch(6)
    assert six_port.area_slices > five_port.area_slices


def test_bus_switch_requires_positive_ports(library):
    with pytest.raises(ComponentError):
        library.bus_switch(0)


def test_bus_switch_extrapolation_requires_calibration_points():
    library = ComponentLibrary()
    with pytest.raises(ComponentError):
        library.bus_switch(5)


def test_library_len_and_contains(library):
    assert "alu" in library
    assert "ghost" not in library
    assert len(library) >= 10


def test_fresh_default_library_is_independent():
    first = default_component_library()
    second = default_component_library()
    assert first is not second
    assert first.alu.area_slices == second.alu.area_slices
