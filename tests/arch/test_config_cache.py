"""Tests for configuration words, contexts and the per-PE cache."""

from __future__ import annotations

import pytest

from repro.arch.config_cache import (
    ConfigurationCacheSpec,
    ConfigurationContext,
    ConfigurationWord,
    IDLE_WORD,
)
from repro.errors import ConfigurationError
from repro.ir import OpType


def make_word(opcode=OpType.ADD, **kwargs) -> ConfigurationWord:
    return ConfigurationWord(opcode=opcode, operation_name="op", **kwargs)


class TestConfigurationWord:
    def test_idle_word(self):
        assert IDLE_WORD.is_idle
        assert not make_word().is_idle

    def test_shared_resource_requires_id(self):
        with pytest.raises(ConfigurationError):
            ConfigurationWord(opcode=OpType.MUL, uses_shared_resource=True)

    def test_shared_resource_with_id(self):
        word = ConfigurationWord(
            opcode=OpType.MUL,
            uses_shared_resource=True,
            shared_resource_id=("row", 1, 0),
        )
        assert word.shared_resource_id == ("row", 1, 0)


class TestConfigurationContext:
    def test_dimensions_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ConfigurationContext(rows=0, cols=4)

    def test_set_and_get_word(self):
        context = ConfigurationContext(rows=2, cols=2)
        context.set_word(3, 1, 1, make_word())
        assert context.num_cycles == 4
        assert not context.word(3, 1, 1).is_idle
        assert context.word(0, 0, 0).is_idle

    def test_out_of_range_position_rejected(self):
        context = ConfigurationContext(rows=2, cols=2)
        with pytest.raises(ConfigurationError):
            context.set_word(0, 2, 0, make_word())
        with pytest.raises(ConfigurationError):
            context.word(0, 0, 5)

    def test_negative_cycle_rejected(self):
        context = ConfigurationContext(rows=2, cols=2)
        with pytest.raises(ConfigurationError):
            context.set_word(-1, 0, 0, make_word())

    def test_double_booking_rejected(self):
        context = ConfigurationContext(rows=2, cols=2)
        context.set_word(0, 0, 0, make_word())
        with pytest.raises(ConfigurationError):
            context.set_word(0, 0, 0, make_word(opcode=OpType.SUB))

    def test_words_at_and_active_iteration(self):
        context = ConfigurationContext(rows=2, cols=2)
        context.set_word(0, 0, 0, make_word())
        context.set_word(0, 1, 1, make_word(opcode=OpType.MUL))
        context.set_word(2, 0, 1, make_word(opcode=OpType.LOAD))
        assert len(context.words_at(0)) == 2
        assert len(context.words_at(1)) == 0
        active = list(context.active_words())
        assert len(active) == 3
        assert context.active_word_count() == 3

    def test_utilisation_and_storage(self):
        context = ConfigurationContext(rows=2, cols=2)
        context.set_word(0, 0, 0, make_word())
        # one active word out of 4 PEs x 1 cycle
        assert context.utilisation() == pytest.approx(0.25)
        assert context.storage_bits(bits_per_word=32) == 1 * 4 * 32

    def test_empty_context_utilisation_zero(self):
        assert ConfigurationContext(rows=2, cols=2).utilisation() == 0.0


class TestConfigurationCacheSpec:
    def test_size_and_fit(self):
        cache = ConfigurationCacheSpec(depth=8, word_bits=32)
        assert cache.size_bits == 256
        context = ConfigurationContext(rows=1, cols=1)
        context.set_word(7, 0, 0, make_word())
        assert cache.fits(context)
        context.set_word(8, 0, 0, make_word())
        assert not cache.fits(context)

    def test_positive_dimensions_required(self):
        with pytest.raises(ConfigurationError):
            ConfigurationCacheSpec(depth=0)
