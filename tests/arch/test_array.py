"""Tests for the array structural model and shared-unit reachability."""

from __future__ import annotations

import pytest

from repro.arch.array import ArraySpec, ReconfigurableArray, SharedResourceUnit
from repro.arch.bus import RowBusSpec
from repro.arch.pe import PEConfig
from repro.errors import ArchitectureError


class TestArraySpec:
    def test_defaults_match_paper_base(self):
        spec = ArraySpec()
        assert spec.rows == 8
        assert spec.cols == 8
        assert spec.num_pes == 64
        assert spec.loads_per_cycle == 16
        assert spec.stores_per_cycle == 8
        assert spec.data_width_bits == 16

    def test_positions_row_major(self):
        spec = ArraySpec(rows=2, cols=3)
        assert spec.positions() == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_contains(self):
        spec = ArraySpec(rows=2, cols=2)
        assert spec.contains(1, 1)
        assert not spec.contains(2, 0)
        assert not spec.contains(0, -1)

    def test_invalid_dimensions(self):
        with pytest.raises(ArchitectureError):
            ArraySpec(rows=0, cols=4)


class TestSharedResourceUnit:
    def test_properties(self):
        unit = SharedResourceUnit(("row", 3, 1), pipeline_stages=2)
        assert unit.scope == "row"
        assert unit.line_index == 3
        assert unit.is_pipelined
        assert "row 3" in unit.name

    def test_invalid_scope(self):
        with pytest.raises(ArchitectureError):
            SharedResourceUnit(("diag", 0, 0))

    def test_invalid_stage_count(self):
        with pytest.raises(ArchitectureError):
            SharedResourceUnit(("row", 0, 0), pipeline_stages=0)


class TestReconfigurableArray:
    def make_array(self, rows_shared=1, cols_shared=1):
        spec = ArraySpec(rows=4, cols=4, row_buses=RowBusSpec())
        units = [SharedResourceUnit(("row", row, 0)) for row in range(4)]
        if cols_shared:
            units += [SharedResourceUnit(("col", col, 0)) for col in range(4)]
        return ReconfigurableArray(spec, PEConfig(has_multiplier=False), units)

    def test_pe_lookup(self):
        array = self.make_array()
        assert array.pe_at(1, 2).position == (1, 2)
        with pytest.raises(ArchitectureError):
            array.pe_at(9, 0)
        assert len(array.processing_elements()) == 16

    def test_reachability_row_and_column(self):
        array = self.make_array()
        reachable = array.reachable_shared_units(2, 3)
        scopes = {(unit.scope, unit.line_index) for unit in reachable}
        assert scopes == {("row", 2), ("col", 3)}

    def test_reachability_out_of_range(self):
        with pytest.raises(ArchitectureError):
            self.make_array().reachable_shared_units(10, 0)

    def test_bus_switch_ports(self):
        array = self.make_array()
        switch = array.bus_switch_spec()
        assert switch is not None
        assert switch.ports == 2

    def test_no_sharing_has_no_switch(self):
        spec = ArraySpec(rows=2, cols=2)
        array = ReconfigurableArray(spec)
        assert array.bus_switch_spec() is None
        assert not array.has_shared_resources
        assert array.multiplier_issue_slots_per_cycle == 4

    def test_issue_slots_with_sharing(self):
        array = self.make_array()
        assert array.multiplier_issue_slots_per_cycle == 8

    def test_duplicate_unit_rejected(self):
        spec = ArraySpec(rows=2, cols=2)
        units = [SharedResourceUnit(("row", 0, 0)), SharedResourceUnit(("row", 0, 0))]
        with pytest.raises(ArchitectureError):
            ReconfigurableArray(spec, PEConfig(has_multiplier=False), units)

    def test_unit_attached_to_missing_row_rejected(self):
        spec = ArraySpec(rows=2, cols=2)
        units = [SharedResourceUnit(("row", 5, 0))]
        with pytest.raises(ArchitectureError):
            ReconfigurableArray(spec, PEConfig(has_multiplier=False), units)
