"""Tests for the architecture template and the paper's design points."""

from __future__ import annotations

import pytest

from repro.arch.template import (
    ArchitectureSpec,
    PipeliningSpec,
    SharingTopology,
    architecture_by_name,
    base_architecture,
    paper_architectures,
    rs_architecture,
    rsp_architecture,
)
from repro.errors import ArchitectureError


class TestSharingTopology:
    def test_totals_for_paper_designs(self):
        # Design #1: one multiplier per row -> 8 on an 8x8 array.
        assert SharingTopology(1, 0).total_shared_units(8, 8) == 8
        assert SharingTopology(2, 0).total_shared_units(8, 8) == 16
        assert SharingTopology(2, 1).total_shared_units(8, 8) == 24
        assert SharingTopology(2, 2).total_shared_units(8, 8) == 32

    def test_ports_per_pe(self):
        assert SharingTopology(1, 0).ports_per_pe() == 1
        assert SharingTopology(2, 2).ports_per_pe() == 4

    def test_units_materialisation(self):
        units = SharingTopology(1, 1).units_for(rows=2, cols=3, pipeline_stages=2)
        assert len(units) == 2 + 3
        assert all(unit.pipeline_stages == 2 for unit in units)

    def test_negative_counts_rejected(self):
        with pytest.raises(ArchitectureError):
            SharingTopology(-1, 0)


class TestPipeliningSpec:
    def test_stage_properties(self):
        assert not PipeliningSpec(1).is_pipelined
        assert PipeliningSpec(2).is_pipelined
        assert PipeliningSpec(3).registers_inserted == 2

    def test_zero_stages_rejected(self):
        with pytest.raises(ArchitectureError):
            PipeliningSpec(0)


class TestArchitectureSpec:
    def test_base_classification(self, base_arch):
        assert base_arch.is_base
        assert base_arch.kind == "base"
        assert not base_arch.uses_sharing
        assert not base_arch.uses_pipelining
        assert base_arch.multiplier_latency == 1
        assert base_arch.total_shared_units == 0
        assert base_arch.switch_ports_per_pe == 0

    def test_rs_classification(self, rs2_arch):
        assert rs2_arch.kind == "rs"
        assert rs2_arch.uses_sharing
        assert not rs2_arch.uses_pipelining
        assert rs2_arch.total_shared_units == 16
        assert rs2_arch.multiplier_latency == 1

    def test_rsp_classification(self, rsp2_arch):
        assert rsp2_arch.kind == "rsp"
        assert rsp2_arch.uses_sharing
        assert rsp2_arch.uses_pipelining
        assert rsp2_arch.multiplier_latency == 2

    def test_pe_config_reflects_sharing_and_pipelining(self, base_arch, rs2_arch, rsp2_arch):
        assert base_arch.pe_config().has_multiplier
        assert not rs2_arch.pe_config().has_multiplier
        assert rsp2_arch.pe_config().has_pipeline_registers

    def test_build_array_unit_counts(self):
        array = rsp_architecture(3).build_array()
        assert array.num_shared_units == 24
        assert all(unit.is_pipelined for unit in array.shared_units)
        assert array.bus_switch_spec().ports == 3

    def test_with_name(self, base_arch):
        renamed = base_arch.with_name("Baseline")
        assert renamed.name == "Baseline"
        assert renamed.array == base_arch.array

    def test_empty_name_rejected(self):
        with pytest.raises(ArchitectureError):
            ArchitectureSpec(name="")


class TestPaperPresets:
    def test_nine_architectures_in_order(self, all_paper_archs):
        names = [spec.name for spec in all_paper_archs]
        assert names == [
            "Base",
            "RS#1", "RS#2", "RS#3", "RS#4",
            "RSP#1", "RSP#2", "RSP#3", "RSP#4",
        ]

    def test_rs_designs_match_figure8(self):
        assert rs_architecture(1).sharing == SharingTopology(1, 0)
        assert rs_architecture(2).sharing == SharingTopology(2, 0)
        assert rs_architecture(3).sharing == SharingTopology(2, 1)
        assert rs_architecture(4).sharing == SharingTopology(2, 2)

    def test_rsp_designs_are_two_stage(self):
        for design in range(1, 5):
            assert rsp_architecture(design).pipelining.stages == 2

    def test_invalid_design_index(self):
        with pytest.raises(ArchitectureError):
            rs_architecture(5)
        with pytest.raises(ArchitectureError):
            rsp_architecture(0)

    def test_architecture_by_name(self):
        assert architecture_by_name("rsp#2").name == "RSP#2"
        with pytest.raises(ArchitectureError):
            architecture_by_name("RSP#9")

    def test_custom_dimensions(self):
        small = rs_architecture(1, rows=4, cols=4)
        assert small.array.rows == 4
        assert small.total_shared_units == 4
