"""Tests for the row-bus, bus-switch and processing-element models."""

from __future__ import annotations

import pytest

from repro.arch.bus import BusSwitchSpec, RowBusSpec
from repro.arch.pe import PEConfig, ProcessingElement
from repro.errors import ArchitectureError
from repro.ir import OpType


class TestRowBusSpec:
    def test_defaults_match_paper(self):
        buses = RowBusSpec()
        assert buses.read_buses == 2
        assert buses.write_buses == 1
        assert buses.width_bits == 16
        assert buses.total_buses == 3

    def test_negative_counts_rejected(self):
        with pytest.raises(ArchitectureError):
            RowBusSpec(read_buses=-1)
        with pytest.raises(ArchitectureError):
            RowBusSpec(write_buses=-1)

    def test_zero_width_rejected(self):
        with pytest.raises(ArchitectureError):
            RowBusSpec(width_bits=0)


class TestBusSwitchSpec:
    def test_result_is_double_width(self):
        switch = BusSwitchSpec(ports=2, operand_width_bits=16)
        assert switch.result_width_bits == 32

    def test_negative_ports_rejected(self):
        with pytest.raises(ArchitectureError):
            BusSwitchSpec(ports=-1)


class TestPEConfig:
    def test_base_pe_has_all_units(self):
        config = PEConfig()
        assert config.local_unit_names() == [
            "multiplexer",
            "alu",
            "array_multiplier",
            "shift_logic",
        ]

    def test_shared_pe_drops_multiplier(self):
        config = PEConfig(has_multiplier=False, has_pipeline_registers=True)
        names = config.local_unit_names()
        assert "array_multiplier" not in names
        assert "pipeline_register" in names

    def test_supports_locally(self):
        base = PEConfig()
        shared = PEConfig(has_multiplier=False)
        assert base.supports_locally(OpType.MUL)
        assert not shared.supports_locally(OpType.MUL)
        assert shared.supports_locally(OpType.ADD)
        assert shared.supports_locally(OpType.SHIFT)
        assert shared.supports_locally(OpType.LOAD)
        assert not shared.supports_locally(OpType.CONST) or shared.supports_locally(OpType.CONST)


class TestProcessingElement:
    def test_position_and_name(self):
        pe = ProcessingElement(row=2, col=5)
        assert pe.position == (2, 5)
        assert pe.name == "PE[2][5]"

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ArchitectureError):
            ProcessingElement(row=-1, col=0)
