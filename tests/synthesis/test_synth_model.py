"""Tests for the analytical synthesis surrogate (Table 2 regeneration)."""

from __future__ import annotations

import pytest

from repro.arch import base_architecture, rs_architecture, rsp_architecture
from repro.synthesis.synth_model import SynthesisEstimate, SynthesisSurrogate


def test_estimates_cover_all_nine_designs(surrogate):
    estimates = surrogate.estimate_paper_designs()
    assert [estimate.architecture for estimate in estimates] == [
        "Base", "RS#1", "RS#2", "RS#3", "RS#4", "RSP#1", "RSP#2", "RSP#3", "RSP#4",
    ]
    assert all(estimate.paper is not None for estimate in estimates)


def test_estimates_by_name_lookup(surrogate):
    by_name = surrogate.estimates_by_name()
    assert by_name["RSP#2"].architecture == "RSP#2"
    assert len(by_name) == 9


def test_area_errors_within_fifteen_percent(surrogate):
    for estimate in surrogate.estimate_paper_designs():
        assert estimate.area_error_percent is not None
        assert abs(estimate.area_error_percent) < 15.0, estimate.architecture


def test_delay_errors_within_ten_percent(surrogate):
    for estimate in surrogate.estimate_paper_designs():
        assert abs(estimate.delay_error_percent) < 10.0, estimate.architecture


def test_reduction_orderings_match_paper(surrogate):
    """Whoever wins in the paper wins in the model too."""
    by_name = surrogate.estimates_by_name()
    # Area: RS#1 < RS#2 < ... and RSP#k slightly above RS#k.
    for design in range(1, 4):
        assert by_name[f"RS#{design}"].array_area_slices < by_name[f"RS#{design + 1}"].array_area_slices
        assert by_name[f"RSP#{design}"].array_area_slices < by_name[f"RSP#{design + 1}"].array_area_slices
    for design in range(1, 5):
        assert by_name[f"RS#{design}"].array_area_slices < by_name[f"RSP#{design}"].array_area_slices
    # Delay: every RSP design beats the base, every RS design is slower.
    base_delay = by_name["Base"].array_delay_ns
    for design in range(1, 5):
        assert by_name[f"RS#{design}"].array_delay_ns > base_delay
        assert by_name[f"RSP#{design}"].array_delay_ns < base_delay


def test_base_estimate_has_no_switch(surrogate):
    base = surrogate.estimate(base_architecture())
    assert base.switch_area_slices == 0.0
    assert base.switch_delay_ns == 0.0
    assert base.area_reduction_percent == pytest.approx(0.0)
    assert base.delay_reduction_percent == pytest.approx(0.0)


def test_estimate_without_paper_reference():
    surrogate = SynthesisSurrogate()
    custom = rs_architecture(2, rows=4, cols=4).with_name("RS-4x4")
    estimate = surrogate.estimate(custom, base=base_architecture(4, 4))
    assert estimate.paper is None
    assert estimate.area_error_percent is None
    assert estimate.array_area_slices > 0


def test_pipelined_pe_delay_reported_for_rsp(surrogate):
    estimate = surrogate.estimate(rsp_architecture(1))
    assert estimate.pe_delay_ns == pytest.approx(15.3)
    rs_estimate = surrogate.estimate(rs_architecture(1))
    assert rs_estimate.pe_delay_ns == pytest.approx(25.6)
